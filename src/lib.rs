//! # pbo — pseudo-Boolean optimization with effective lower bounding
//!
//! A from-scratch Rust reproduction of *Manquinho & Marques-Silva,
//! "Effective Lower Bounding Techniques for Pseudo-Boolean Optimization",
//! DATE 2005*: a SAT-based branch-and-bound PBO solver (*bsolo*) whose
//! search is pruned by pluggable lower-bound estimators — greedy
//! independent-set (MIS), Lagrangian relaxation (LGR) and
//! linear-programming relaxation (LPR) — with *bound-conflict learning*
//! for non-chronological backtracking, plus the baselines the paper
//! evaluates against (SAT linear search and MILP branch-and-bound).
//!
//! ## Quick start
//!
//! ```
//! use pbo::{InstanceBuilder, solve};
//!
//! // minimize 2 x1 + 3 x2 + 2 x3
//! // subject to x1 + x2 >= 1 and x2 + x3 >= 1
//! let mut b = InstanceBuilder::new();
//! let v = b.new_vars(3);
//! b.add_clause([v[0].positive(), v[1].positive()]);
//! b.add_clause([v[1].positive(), v[2].positive()]);
//! b.minimize([(2, v[0].positive()), (3, v[1].positive()), (2, v[2].positive())]);
//!
//! let result = solve(&b.build()?);
//! assert!(result.is_optimal());
//! assert_eq!(result.best_cost, Some(3)); // pick x2
//! # Ok::<(), pbo::BuildError>(())
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`pbo_core`] (re-exported here) | literals, normalized constraints, objectives, instances, OPB I/O |
//! | [`pbo_engine`] | CDCL engine: propagation, clause learning, VSIDS, bound-conflict entry point |
//! | [`pbo_lp`] | warm-started bounded-variable dual simplex |
//! | [`pbo_bounds`] | the MIS / LGR / LPR lower bounds with `omega_pl` explanations |
//! | [`pbo_ls`] | stochastic local search (WalkSAT/DLS-style) incumbent engine |
//! | [`pbo_trace`] | structured telemetry: typed events, JSONL/Chrome exporters, metrics |
//! | [`pbo_solver`] | bsolo + the LS/B&B portfolio + PBS-like, Galena-like and MILP baselines |
//! | [`pbo_benchgen`] | seeded generators for the four Table 1 benchmark families |
//!
//! See `DESIGN.md` for the paper-to-code inventory and `EXPERIMENTS.md`
//! for the reproduced evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pbo_bounds::{LagrangianBound, LbOutcome, LowerBound, LprBound, MisBound, Subproblem};
pub use pbo_core::{
    brute_force, normalize, parse_opb, write_opb, Assignment, BruteForceResult, BuildError,
    ConstraintClass, ConstraintState, Instance, InstanceBuilder, Lit, NormalizeError, Objective,
    ParseOpbError, PbConstraint, PbTerm, RelOp, Value, Var,
};
pub use pbo_solver::{
    Branching, Bsolo, BsoloOptions, Budget, IncumbentCell, LbMethod, LinearSearch, LocalSearch,
    LsOptions, MilpSolver, Portfolio, PortfolioOptions, SolveResult, SolveStatus, SolveStrategy,
    SolverStats,
};

// The underlying crates, for users needing full access.
pub use pbo_benchgen;
pub use pbo_bounds;
pub use pbo_core;
pub use pbo_engine;
pub use pbo_lp;
pub use pbo_ls;
pub use pbo_solver;
pub use pbo_trace;

/// Solves an instance with the paper's strongest configuration
/// (bsolo + LP-relaxation lower bounding, LP-guided branching, cost
/// cuts, probing) and no resource limit.
///
/// # Examples
///
/// ```
/// use pbo::{parse_opb, solve};
///
/// let inst = parse_opb("min: +1 x1 +2 x2 ;\n+1 x1 +1 x2 >= 1 ;\n")?;
/// assert_eq!(solve(&inst).best_cost, Some(1));
/// # Ok::<(), pbo::ParseOpbError>(())
/// ```
pub fn solve(instance: &Instance) -> SolveResult {
    Bsolo::with_lb(LbMethod::Lpr).solve(instance)
}

/// Solves an instance with explicit options.
///
/// # Examples
///
/// ```
/// use pbo::{solve_with, BsoloOptions, Budget, InstanceBuilder, LbMethod};
/// use std::time::Duration;
///
/// let mut b = InstanceBuilder::new();
/// let x = b.new_var();
/// b.add_clause([x.positive()]);
/// b.minimize([(5, x.positive())]);
/// let inst = b.build()?;
///
/// let opts = BsoloOptions::with_lb(LbMethod::Mis)
///     .budget(Budget::time_limit(Duration::from_secs(1)));
/// assert_eq!(solve_with(&inst, opts).best_cost, Some(5));
/// # Ok::<(), pbo::BuildError>(())
/// ```
pub fn solve_with(instance: &Instance, options: BsoloOptions) -> SolveResult {
    Bsolo::new(options).solve(instance)
}

/// Solves an instance in *anytime* mode under a wall-clock budget: the
/// stochastic local search seeds the upper bound, then branch-and-bound
/// spends the remaining time proving optimality or improving. The result
/// is the best **verified** solution found either way
/// ([`SolveStatus::Feasible`] when the budget ran out before the proof).
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use pbo::{solve_anytime, InstanceBuilder};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(3);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// b.add_clause([v[1].positive(), v[2].positive()]);
/// b.minimize([(2, v[0].positive()), (3, v[1].positive()), (2, v[2].positive())]);
/// let inst = b.build()?;
///
/// let result = solve_anytime(&inst, Duration::from_secs(2));
/// assert_eq!(result.best_cost, Some(3));
/// # Ok::<(), pbo::BuildError>(())
/// ```
pub fn solve_anytime(instance: &Instance, budget: std::time::Duration) -> SolveResult {
    let options = PortfolioOptions {
        strategy: SolveStrategy::LsSeeded,
        bsolo: BsoloOptions::default().budget(Budget::time_limit(budget)),
        ..PortfolioOptions::default()
    };
    Portfolio::new(options).solve(instance)
}

/// Parses an OPB document and solves it with the default configuration.
///
/// # Errors
///
/// Returns [`ParseOpbError`] when the text is not valid OPB.
///
/// # Examples
///
/// ```
/// let result = pbo::solve_opb("min: +3 x1 ;\n+1 x1 +1 x2 >= 1 ;\n")?;
/// assert_eq!(result.best_cost, Some(0)); // satisfy via x2
/// # Ok::<(), pbo::ParseOpbError>(())
/// ```
pub fn solve_opb(text: &str) -> Result<SolveResult, ParseOpbError> {
    Ok(solve(&parse_opb(text)?))
}
