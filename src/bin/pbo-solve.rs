//! Command-line PBO solver over OPB files.
//!
//! ```text
//! pbo-solve [--lb plain|mis|lgr|lpr|adaptive] [--strategy exact|ls-seeded|concurrent]
//!           [--ls-threads N|auto] [--bb-threads N|auto] [--deterministic]
//!           [--timeout-ms N] [--stats] [--stats-json]
//!           [--trace FILE] [--trace-format jsonl|chrome] [--metrics] <file.opb>
//! cargo run --release --bin pbo-solve -- --strategy ls-seeded instance.opb
//! ```
//!
//! `--strategy ls-seeded` / `--strategy concurrent` run the portfolio
//! (stochastic local search seeding or racing the exact solver): under a
//! `--timeout-ms` budget this is the anytime mode — a good verified
//! solution fast, then proof effort with whatever time remains.
//! `--ls-threads N` (concurrent mode) races a ParLS-style pool of N
//! diversified local-search workers — per-worker seeds are derived
//! deterministically from the base seed — against the exact solver.
//! `--bb-threads N` runs the exact side as a cube-split parallel
//! branch-and-bound: the root is split into decision-literal cubes and
//! N workers solve the subtrees over the shared term arena, racing
//! incumbents (and eq. 10–13 cost cuts) through the shared cell; with
//! `--strategy exact` this is pure parallel B&B, and `--bb-threads 1`
//! (the default) is bit-identical to the sequential solver. Both thread
//! flags accept `auto` (or `0`): the count resolves to the machine's
//! available parallelism, and the resolved values are reported in
//! `--stats-json`. Workers re-split long-running cubes back to the
//! work-stealing scheduler and share cube-independent learned clauses
//! through a pool sharded into per-worker lanes; `--deterministic`
//! trades that racing for reproducibility (fixed re-split schedule, no
//! sharing or stealing, cube-ordered join) so repeated runs report
//! identical status, cost, model and counters.
//!
//! Output follows the pseudo-Boolean competition conventions:
//! `s OPTIMUM FOUND` / `s SATISFIABLE` / `s UNSATISFIABLE` /
//! `s UNKNOWN`, `o <cost>` for the objective and `v <literals>` for the
//! model.
//!
//! Observability: `--trace FILE` records the structured event stream
//! (decisions, conflicts, bound calls, incumbents, cube lifecycle) of
//! every worker and writes it at exit — one JSON object per line by
//! default, or a Chrome `trace_event` file (`--trace-format chrome`,
//! open in Perfetto / `chrome://tracing`, one lane per worker).
//! `--metrics` prints event-derived counters and duration histograms as
//! `c`-prefixed comment lines; `--stats-json` prints the merged
//! [`pbo::SolverStats`] as one JSON object on stdout (machine-readable
//! companion of `--stats`), extended with a `status` field (`optimal` /
//! `infeasible` / `feasible_budget` / `feasible_degraded` / `cancelled`
//! / `unknown`) and a `degraded` flag (true when any worker was lost or
//! any cube quarantined) so service callers never parse the human text.
//!
//! Exit codes follow the PB-competition convention: 30 optimum found,
//! 10 satisfiable (feasible but unproven — budget, degradation or
//! cancellation), 20 unsatisfiable, 0 unknown, 2 usage or input error.

use std::process::ExitCode;
use std::time::Duration;

use pbo::pbo_trace::{write_chrome, write_jsonl, MetricsRegistry};
use pbo::{
    parse_opb, solve_with, BsoloOptions, Budget, LbMethod, Portfolio, PortfolioOptions,
    SolveStatus, SolveStrategy,
};

fn usage() -> ! {
    eprintln!(
        "usage: pbo-solve [--lb plain|mis|lgr|lpr|adaptive] [--strategy exact|ls-seeded|concurrent] \
         [--ls-threads N|auto] [--bb-threads N|auto] [--deterministic] [--timeout-ms N] [--stats] \
         [--stats-json] [--trace FILE] [--trace-format jsonl|chrome] [--metrics] <file.opb>"
    );
    std::process::exit(2);
}

/// `N` (≥ 1) taken as-is, `auto` or `0` as the auto sentinel (resolved
/// through [`PortfolioOptions::resolve_threads`] after parsing).
fn parse_threads(v: String) -> Option<usize> {
    if v == "auto" {
        return Some(0);
    }
    v.parse().ok()
}

/// Trace export format selected by `--trace-format`.
#[derive(Copy, Clone, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

fn main() -> ExitCode {
    let mut lb = LbMethod::Lpr;
    let mut strategy = SolveStrategy::Exact;
    let mut ls_threads = 1usize;
    let mut bb_threads = 1usize;
    let mut deterministic = false;
    let mut timeout: Option<u64> = None;
    let mut stats = false;
    let mut stats_json = false;
    let mut trace_path: Option<String> = None;
    let mut trace_format = TraceFormat::Jsonl;
    let mut metrics = false;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ls-threads" => {
                ls_threads = args.next().and_then(parse_threads).unwrap_or_else(|| usage())
            }
            "--bb-threads" => {
                bb_threads = args.next().and_then(parse_threads).unwrap_or_else(|| usage())
            }
            "--lb" => {
                lb = match args.next().as_deref() {
                    Some("plain") => LbMethod::None,
                    Some("mis") => LbMethod::Mis,
                    Some("lgr") => LbMethod::Lagrangian,
                    Some("lpr") => LbMethod::Lpr,
                    Some("adaptive") => LbMethod::Adaptive,
                    _ => usage(),
                }
            }
            "--strategy" => {
                strategy = match args.next().as_deref() {
                    Some("exact") => SolveStrategy::Exact,
                    Some("ls-seeded") => SolveStrategy::LsSeeded,
                    Some("concurrent") => SolveStrategy::Concurrent,
                    _ => usage(),
                }
            }
            "--timeout-ms" => {
                timeout = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--deterministic" => deterministic = true,
            "--stats" => stats = true,
            "--stats-json" => stats_json = true,
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-format" => {
                trace_format = match args.next().as_deref() {
                    Some("jsonl") => TraceFormat::Jsonl,
                    Some("chrome") => TraceFormat::Chrome,
                    _ => usage(),
                }
            }
            "--metrics" => metrics = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    // Resolve `auto` (0) once, up front, so the banner, the fast-path
    // check and `--stats-json` all report the same concrete counts.
    let ls_threads = PortfolioOptions::resolve_threads(ls_threads);
    let bb_threads = PortfolioOptions::resolve_threads(bb_threads);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let instance = match parse_opb(&text) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "c {} vars, {} constraints, lb={}, strategy={}{}",
        instance.num_vars(),
        instance.num_constraints(),
        lb.name(),
        strategy.name(),
        if bb_threads > 1 { format!(", bb-threads={bb_threads}") } else { String::new() }
    );
    let mut options = BsoloOptions::with_lb(lb);
    options.deterministic_join = deterministic;
    // Metrics are derived from the event stream, so either flag turns
    // the per-worker buffers on.
    options.trace = trace_path.is_some() || metrics;
    if let Some(ms) = timeout {
        options = options.budget(Budget::time_limit(Duration::from_millis(ms)));
    }
    let result = if strategy == SolveStrategy::Exact && bb_threads == 1 {
        solve_with(&instance, options)
    } else {
        let portfolio = PortfolioOptions {
            strategy,
            bsolo: options,
            ls_threads,
            bb_threads,
            ..PortfolioOptions::default()
        };
        Portfolio::new(portfolio).solve(&instance)
    };
    match result.status {
        SolveStatus::Optimal if instance.is_optimization() => println!("s OPTIMUM FOUND"),
        SolveStatus::Optimal => println!("s SATISFIABLE"),
        SolveStatus::Infeasible => println!("s UNSATISFIABLE"),
        SolveStatus::Feasible => println!("s SATISFIABLE"),
        SolveStatus::Unknown => println!("s UNKNOWN"),
    }
    if let Some(cost) = result.best_cost {
        if instance.is_optimization() {
            println!("o {cost}");
        }
    }
    if let Some(model) = &result.best_assignment {
        let mut line = String::from("v");
        for (i, &value) in model.iter().enumerate() {
            line.push(' ');
            if !value {
                line.push('-');
            }
            line.push('x');
            line.push_str(&(i + 1).to_string());
        }
        println!("{line}");
    }
    if stats {
        let s = &result.stats;
        println!(
            "c decisions={} conflicts={} bound_conflicts={} lb_calls={} lb_time={:.3}s time={:.3}s",
            s.decisions,
            s.conflicts,
            s.bound_conflicts,
            s.lb_calls,
            s.lb_time_total.as_secs_f64(),
            s.solve_time.as_secs_f64()
        );
        if bb_threads > 1 {
            println!(
                "c resplits={} depth_truncated={} clauses_shared={} clauses_imported={} \
                 queue_wait={:.3}s",
                s.resplits,
                s.split_depth_truncated,
                s.clauses_shared,
                s.clauses_imported,
                s.queue_wait_total.as_secs_f64()
            );
        }
        if s.nodes_per_worker.len() > 1 {
            let per: Vec<String> = s.nodes_per_worker.iter().map(u64::to_string).collect();
            println!("c nodes_per_worker={}", per.join(","));
        }
    }
    if metrics {
        for line in MetricsRegistry::from_events(&result.stats.trace).render().lines() {
            println!("c {line}");
        }
    }
    if let Some(out) = &trace_path {
        // Buffers are merged per worker at join; interleave by timestamp
        // for the export (lane is the tiebreak, so equal stamps are
        // stable across runs).
        let mut events = result.stats.trace.clone();
        events.sort_by_key(|e| (e.t_ns, e.lane));
        let text = match trace_format {
            TraceFormat::Jsonl => write_jsonl(&events),
            TraceFormat::Chrome => write_chrome(&events),
        };
        if let Err(e) = std::fs::write(out, text) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::from(2);
        }
        println!("c trace: {} events written to {out}", events.len());
    }
    if stats_json {
        // Splice the resolved thread counts into the stats object —
        // they are a solve-level fact the merged stats cannot know
        // (especially under `auto`).
        let mut json = result.stats.to_json();
        debug_assert!(json.ends_with('}'));
        json.pop();
        json.push_str(&format!(
            ",\"ls_threads\":{ls_threads},\"bb_threads\":{bb_threads},\"status\":\"{}\",\
             \"degraded\":{}}}",
            result.service_status(),
            result.degraded()
        ));
        println!("{json}");
    }
    // PB-competition exit codes (see module docs): feasible-but-unproven
    // outcomes — budget exhaustion, degradation after a lost worker, or
    // cancellation — all land on 10, with the JSON `status` field
    // carrying the finer distinction.
    ExitCode::from(match result.status {
        SolveStatus::Optimal => 30,
        SolveStatus::Feasible => 10,
        SolveStatus::Infeasible => 20,
        SolveStatus::Unknown => 0,
    })
}
