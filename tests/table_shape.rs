//! The reproduction's headline claims, pinned as tests: the qualitative
//! *shape* of Table 1 must hold on scaled-down instances with scaled-down
//! budgets. These are the assertions EXPERIMENTS.md reports at full
//! scale.

use std::time::Duration;

use pbo::pbo_benchgen::{AccSchedParams, GroutParams};
use pbo::{Bsolo, BsoloOptions, Budget, LbMethod, LinearSearch, MilpSolver, SolveStatus};

fn small_grout(seed: u64) -> pbo::Instance {
    GroutParams { width: 5, height: 5, nets: 14, paths_per_net: 5, capacity: 3, bend_penalty: 2 }
        .generate(seed)
}

/// The paper's central claim: on cost-dominated instances, lower
/// bounding dominates plain SAT-based search.
#[test]
fn lower_bounding_beats_plain_on_routing() {
    let budget = Budget::conflict_limit(20_000);
    let mut lpr_wins = 0;
    for seed in [7, 11, 13] {
        let inst = small_grout(seed);
        let lpr = Bsolo::new(BsoloOptions::with_lb(LbMethod::Lpr).budget(budget)).solve(&inst);
        let plain = Bsolo::new(BsoloOptions::with_lb(LbMethod::None).budget(budget)).solve(&inst);
        // LPR must solve; plain may time out. When both solve, LPR may
        // not need more decisions.
        assert_eq!(lpr.status, SolveStatus::Optimal, "seed {seed}: LPR must finish");
        match plain.status {
            SolveStatus::Optimal => {
                assert_eq!(plain.best_cost, lpr.best_cost, "seed {seed}");
                if lpr.stats.decisions <= plain.stats.decisions {
                    lpr_wins += 1;
                }
            }
            _ => lpr_wins += 1, // plain exhausted its budget: LPR wins outright
        }
    }
    assert!(lpr_wins >= 2, "LPR should dominate plain on most routing seeds");
}

/// The bound-quality ordering of sec. 3, measured through pruning power:
/// MIS never prunes more than the exact LP bound on the same tree
/// search... asserted via solved-status dominance on a budget.
#[test]
fn bound_strength_ordering_on_routing() {
    let budget = Budget::conflict_limit(20_000);
    let inst = small_grout(21);
    let mut solved = Vec::new();
    for lb in [LbMethod::None, LbMethod::Mis, LbMethod::Lagrangian, LbMethod::Lpr] {
        let r = Bsolo::new(BsoloOptions::with_lb(lb).budget(budget)).solve(&inst);
        solved.push((lb, r.status == SolveStatus::Optimal, r.stats.decisions));
    }
    // Every method that solved must agree; and if plain solved within the
    // budget, so must LPR (pruning only removes work).
    let lpr_solved = solved[3].1;
    if solved[0].1 {
        assert!(lpr_solved, "plain solved but LPR did not: {solved:?}");
    }
}

/// Footnote (a): with no objective, every bsolo configuration is the
/// same solver.
#[test]
fn satisfaction_makes_all_bounds_identical() {
    let inst = AccSchedParams { teams: 6, home_away: true }.generate(3);
    let mut outcomes = Vec::new();
    for lb in [LbMethod::None, LbMethod::Mis, LbMethod::Lagrangian, LbMethod::Lpr] {
        let r = Bsolo::with_lb(lb).solve(&inst);
        assert_eq!(r.stats.lb_calls, 0, "{lb:?}: the bound must never run");
        outcomes.push((r.status, r.stats.decisions, r.stats.conflicts));
    }
    // Identical search trees: same decisions and conflicts everywhere.
    assert!(
        outcomes.windows(2).all(|w| w[0] == w[1]),
        "bsolo configurations diverged on a pure-SAT instance: {outcomes:?}"
    );
}

/// The solver-class split on satisfaction: SAT search finishes, the
/// MILP baseline (whose LP has a zero objective) does not.
#[test]
fn sat_solvers_beat_milp_on_scheduling() {
    let inst = AccSchedParams { teams: 8, home_away: true }.generate(2);
    let budget = Budget::time_limit(Duration::from_millis(1_500));
    let pbs = LinearSearch::pbs_like(budget).solve(&inst);
    assert_eq!(pbs.status, SolveStatus::Optimal, "SAT search must schedule 8 teams");
    let milp = MilpSolver::new(budget).solve(&inst);
    assert_ne!(
        milp.status,
        SolveStatus::Optimal,
        "the LP-guided MILP baseline should not crack the tight schedule in 1.5s"
    );
}

/// Bound conflicts must actually fire and prune on optimization
/// instances with an incumbent.
#[test]
fn bound_conflicts_fire_on_routing() {
    let inst = small_grout(33);
    let r = Bsolo::with_lb(LbMethod::Lpr).solve(&inst);
    assert_eq!(r.status, SolveStatus::Optimal);
    assert!(
        r.stats.bound_conflicts > 0,
        "expected eq. 7 prunings, got none (decisions: {})",
        r.stats.decisions
    );
    assert!(r.stats.lb_calls >= r.stats.bound_conflicts);
}
