//! Property-based validation of the local-search incumbent engine and
//! the portfolio driver: on arbitrary small instances, LS incumbents
//! must always verify, LS can never beat the true optimum, the portfolio
//! must agree with plain bsolo and exhaustive enumeration in every
//! strategy, and equal seeds must give identical LS runs.

use proptest::prelude::*;

use pbo::pbo_ls::{LocalSearch, LsOptions};
use pbo::{brute_force, Bsolo, InstanceBuilder, LbMethod, Lit, Portfolio, RelOp, SolveStrategy};
use pbo_core::verify_solution;

/// Strategy: a small random PBO instance described as data, materialized
/// through the builder (mirrors `cross_solver.rs`).
#[derive(Clone, Debug)]
#[allow(clippy::type_complexity)]
struct RawInstance {
    num_vars: usize,
    constraints: Vec<(Vec<(i64, usize, bool)>, u8, i64)>,
    costs: Vec<i64>,
}

fn raw_instance() -> impl Strategy<Value = RawInstance> {
    (2usize..7)
        .prop_flat_map(|n| {
            let term = (1i64..4, 0..n, any::<bool>());
            let constraint = (proptest::collection::vec(term, 1..4), 0u8..3, 1i64..6);
            (
                Just(n),
                proptest::collection::vec(constraint, 1..6),
                proptest::collection::vec(0i64..6, n),
            )
        })
        .prop_map(|(num_vars, constraints, costs)| RawInstance { num_vars, constraints, costs })
}

fn materialize(raw: &RawInstance) -> pbo::Instance {
    let mut b = InstanceBuilder::with_vars(raw.num_vars);
    for (terms, op, rhs) in &raw.constraints {
        let op = match op % 3 {
            0 => RelOp::Ge,
            1 => RelOp::Le,
            _ => RelOp::Eq,
        };
        let terms: Vec<(i64, Lit)> =
            terms.iter().map(|&(c, v, pos)| (c, Lit::new(v % raw.num_vars, pos))).collect();
        b.add_linear(terms, op, *rhs);
    }
    b.minimize(raw.costs.iter().enumerate().map(|(i, &c)| (c, Lit::new(i, true))));
    b.build().expect("raw instances are buildable")
}

fn short_ls() -> LsOptions {
    LsOptions { max_steps: 4_000, time_limit: None, ..LsOptions::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every incumbent LS returns verifies against the instance at
    /// exactly its reported cost, and can never beat the enumerated
    /// optimum.
    #[test]
    fn ls_incumbents_verify_and_respect_the_optimum(raw in raw_instance()) {
        let inst = materialize(&raw);
        let optimum = brute_force(&inst).cost();
        let result = LocalSearch::new(&inst, short_ls()).run(None, None);
        prop_assert_eq!(result.stats.verify_rejects, 0);
        match (result.best_cost, result.best_model) {
            (Some(cost), Some(model)) => {
                prop_assert_eq!(verify_solution(&inst, &model), Ok(cost));
                let opt = optimum.expect("LS found a solution, so the instance is feasible");
                prop_assert!(cost >= opt, "LS cost {} beats the optimum {}", cost, opt);
            }
            (None, None) => {
                // LS is incomplete: allowed to find nothing, feasible or
                // not. Nothing further to check.
            }
            other => prop_assert!(false, "cost/model mismatch: {:?}", other),
        }
    }

    /// The portfolio returns the same optimum as plain bsolo and the
    /// brute-force oracle, in every strategy.
    #[test]
    fn portfolio_matches_bsolo_and_enumeration(raw in raw_instance()) {
        let inst = materialize(&raw);
        let expected = brute_force(&inst).cost();
        let exact = Bsolo::with_lb(LbMethod::Lpr).solve(&inst);
        prop_assert!(exact.is_optimal() || expected.is_none());
        prop_assert_eq!(exact.best_cost, expected);
        for strategy in [SolveStrategy::LsSeeded, SolveStrategy::Concurrent] {
            let result = Portfolio::with_strategy(strategy).solve(&inst);
            prop_assert_eq!(
                result.best_cost, expected,
                "{:?} disagrees with enumeration", strategy
            );
            if let Some(model) = &result.best_assignment {
                prop_assert_eq!(verify_solution(&inst, model), Ok(result.best_cost.unwrap()));
            }
        }
    }

    /// Equal seeds give bit-identical LS runs; the run is a pure
    /// function of (instance, options).
    #[test]
    fn ls_is_deterministic_per_seed(input in (raw_instance(), 0u64..1000)) {
        let (raw, seed) = input;
        let inst = materialize(&raw);
        let options = LsOptions { seed, ..short_ls() };
        let a = LocalSearch::new(&inst, options.clone()).run(None, None);
        let b = LocalSearch::new(&inst, options).run(None, None);
        prop_assert_eq!(a.best_cost, b.best_cost);
        prop_assert_eq!(a.best_model, b.best_model);
        prop_assert_eq!(a.stats.steps, b.stats.steps);
        prop_assert_eq!(a.stats.flips, b.stats.flips);
        prop_assert_eq!(a.stats.restarts, b.stats.restarts);
        prop_assert_eq!(a.stats.incumbents, b.stats.incumbents);
    }
}

/// The warm start must pay off where it matters: on a Table-1-style
/// synthesis instance, seeding B&B with the LS incumbent must not
/// explore more nodes than the cold search.
#[test]
fn warm_start_shrinks_the_tree_on_synthesis() {
    use pbo::pbo_benchgen::SynthesisParams;
    let inst = SynthesisParams {
        primes: 40,
        minterms: 60,
        cover_density: 4.0,
        exclusions: 6,
        ..SynthesisParams::default()
    }
    .generate(3);
    let cold = Bsolo::with_lb(LbMethod::Lpr).solve(&inst);
    let warm = Portfolio::with_strategy(SolveStrategy::LsSeeded).solve(&inst);
    assert!(cold.is_optimal() && warm.is_optimal());
    assert_eq!(cold.best_cost, warm.best_cost);
    assert!(
        warm.stats.decisions <= cold.stats.decisions,
        "warm start explored more nodes ({}) than cold ({})",
        warm.stats.decisions,
        cold.stats.decisions
    );
}
