//! Property tests of the lower-bound procedures' core contracts:
//!
//! * every bound is `<=` the true optimum of any feasible completion of
//!   the current partial assignment (validity of eq. 7 pruning);
//! * the explanation literals are all false under the assignment (a
//!   well-formed conflicting clause);
//! * the bound-conflict clause `omega_bc = omega_pp ∪ omega_pl` never
//!   excludes an assignment strictly better than the claimed bound —
//!   soundness of the learning step of sec. 4.

use proptest::prelude::*;

use pbo::{
    Assignment, InstanceBuilder, LagrangianBound, Lit, LowerBound, LprBound, MisBound, RelOp,
    Subproblem, Value, Var,
};

#[derive(Clone, Debug)]
#[allow(clippy::type_complexity)]
struct Scenario {
    num_vars: usize,
    constraints: Vec<(Vec<(i64, usize, bool)>, i64)>,
    costs: Vec<i64>,
    /// Partial assignment: var -> Option<bool>.
    fixed: Vec<Option<bool>>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (3usize..7)
        .prop_flat_map(|n| {
            let term = (1i64..4, 0..n, any::<bool>());
            let constraint = (proptest::collection::vec(term, 1..4), 1i64..6);
            (
                Just(n),
                proptest::collection::vec(constraint, 1..5),
                proptest::collection::vec(0i64..6, n),
                proptest::collection::vec(proptest::option::weighted(0.35, any::<bool>()), n),
            )
        })
        .prop_map(|(num_vars, constraints, costs, fixed)| Scenario {
            num_vars,
            constraints,
            costs,
            fixed,
        })
}

struct Built {
    instance: pbo::Instance,
    assignment: Assignment,
}

fn build(s: &Scenario) -> Built {
    let mut b = InstanceBuilder::with_vars(s.num_vars);
    for (terms, rhs) in &s.constraints {
        let terms: Vec<(i64, Lit)> =
            terms.iter().map(|&(c, v, pos)| (c, Lit::new(v % s.num_vars, pos))).collect();
        b.add_linear(terms, RelOp::Ge, *rhs);
    }
    b.minimize(s.costs.iter().enumerate().map(|(i, &c)| (c, Lit::new(i, true))));
    let instance = b.build().expect("buildable");
    let mut assignment = Assignment::new(s.num_vars);
    for (i, v) in s.fixed.iter().enumerate() {
        if let Some(val) = v {
            assignment.assign(Var::new(i), *val);
        }
    }
    Built { instance, assignment }
}

/// Minimum cost over all feasible completions of the partial assignment,
/// or None when no completion is feasible.
fn best_completion(b: &Built) -> Option<i64> {
    let n = b.instance.num_vars();
    let mut best = None;
    for mask in 0u64..(1 << n) {
        let vals: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
        let respects = (0..n).all(|i| match b.assignment.value(Var::new(i)) {
            Value::Unassigned => true,
            Value::True => vals[i],
            Value::False => !vals[i],
        });
        if respects && b.instance.is_feasible(&vals) {
            let c = b.instance.cost_of(&vals);
            best = Some(best.map_or(c, |x: i64| x.min(c)));
        }
    }
    best
}

fn check_method(built: &Built, name: &str, outcome: pbo::LbOutcome) -> Result<(), TestCaseError> {
    let completion = best_completion(built);
    // 1. Explanations are well-formed conflicting-clause material.
    for &l in &outcome.explanation {
        prop_assert_eq!(
            built.assignment.lit_value(l),
            Value::False,
            "{}: explanation literal {:?} is not false",
            name,
            l
        );
    }
    match completion {
        Some(opt) => {
            prop_assert!(
                !outcome.infeasible,
                "{}: claimed infeasible but completion of cost {} exists",
                name,
                opt
            );
            // 2. Bound validity.
            prop_assert!(
                outcome.bound <= opt,
                "{}: bound {} exceeds best completion {}",
                name,
                outcome.bound,
                opt
            );
        }
        None => { /* any bound is vacuously valid */ }
    }
    // 3. omega_bc soundness: any assignment that keeps every omega_bc
    // literal false costs at least the bound.
    let n = built.instance.num_vars();
    let mut omega_bc = outcome.explanation.clone();
    if let Some(obj) = built.instance.objective() {
        for &(c, l) in obj.terms() {
            if c > 0 && built.assignment.lit_value(l) == Value::True {
                omega_bc.push(!l);
            }
        }
    }
    if !outcome.infeasible {
        for mask in 0u64..(1 << n) {
            let vals: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
            let violates_clause = omega_bc.iter().all(|&l| {
                let v = vals[l.var().index()];
                let lit_true = if l.is_positive() { v } else { !v };
                !lit_true
            });
            if violates_clause && built.instance.is_feasible(&vals) {
                let c = built.instance.cost_of(&vals);
                prop_assert!(
                    c >= outcome.bound,
                    "{}: omega_bc excludes feasible assignment of cost {} < bound {}",
                    name,
                    c,
                    outcome.bound
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn mis_bound_contract(s in scenario()) {
        let built = build(&s);
        let sub = Subproblem::new(&built.instance, &built.assignment);
        let out = MisBound::new().lower_bound(&sub, None);
        check_method(&built, "mis", out)?;
    }

    #[test]
    fn lagrangian_bound_contract(s in scenario()) {
        let built = build(&s);
        let sub = Subproblem::new(&built.instance, &built.assignment);
        let out = LagrangianBound::new(built.instance.num_constraints())
            .lower_bound(&sub, None);
        check_method(&built, "lgr", out)?;
    }

    #[test]
    fn lpr_bound_contract(s in scenario()) {
        let built = build(&s);
        let sub = Subproblem::new(&built.instance, &built.assignment);
        let out = LprBound::new(&built.instance).lower_bound(&sub, None);
        check_method(&built, "lpr", out)?;
    }
}
