//! Property-based cross-validation: on arbitrary small instances, every
//! solver and every bsolo configuration must agree with exhaustive
//! enumeration.

use proptest::prelude::*;

use pbo::{
    brute_force, Bsolo, BsoloOptions, Budget, InstanceBuilder, LbMethod, LinearSearch, Lit,
    MilpSolver, RelOp, SolveStatus,
};

/// Strategy: a small random PBO instance described as data (so shrinking
/// works), materialized through the builder.
#[derive(Clone, Debug)]
#[allow(clippy::type_complexity)]
struct RawInstance {
    num_vars: usize,
    constraints: Vec<(Vec<(i64, usize, bool)>, u8, i64)>,
    costs: Vec<i64>,
}

fn raw_instance() -> impl Strategy<Value = RawInstance> {
    (2usize..7)
        .prop_flat_map(|n| {
            let term = (1i64..4, 0..n, any::<bool>());
            let constraint = (proptest::collection::vec(term, 1..4), 0u8..3, 1i64..6);
            (
                Just(n),
                proptest::collection::vec(constraint, 1..6),
                proptest::collection::vec(0i64..6, n),
            )
        })
        .prop_map(|(num_vars, constraints, costs)| RawInstance { num_vars, constraints, costs })
}

fn materialize(raw: &RawInstance) -> pbo::Instance {
    let mut b = InstanceBuilder::with_vars(raw.num_vars);
    for (terms, op, rhs) in &raw.constraints {
        let op = match op % 3 {
            0 => RelOp::Ge,
            1 => RelOp::Le,
            _ => RelOp::Eq,
        };
        let terms: Vec<(i64, Lit)> =
            terms.iter().map(|&(c, v, pos)| (c, Lit::new(v % raw.num_vars, pos))).collect();
        b.add_linear(terms, op, *rhs);
    }
    b.minimize(raw.costs.iter().enumerate().map(|(i, &c)| (c, Lit::new(i, true))));
    b.build().expect("raw instances are buildable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_bsolo_configs_match_enumeration(raw in raw_instance()) {
        let inst = materialize(&raw);
        let expected = brute_force(&inst).cost();
        for lb in [LbMethod::None, LbMethod::Mis, LbMethod::Lagrangian, LbMethod::Lpr] {
            let got = Bsolo::with_lb(lb).solve(&inst);
            prop_assert_eq!(got.best_cost, expected, "method {:?}", lb);
            if let Some(model) = &got.best_assignment {
                prop_assert!(inst.is_feasible(model));
                prop_assert_eq!(Some(inst.cost_of(model)), expected);
            }
        }
    }

    #[test]
    fn baselines_match_enumeration(raw in raw_instance()) {
        let inst = materialize(&raw);
        let expected = brute_force(&inst).cost();
        let pbs = LinearSearch::pbs_like(Budget::unlimited()).solve(&inst);
        prop_assert_eq!(pbs.best_cost, expected);
        let galena = LinearSearch::galena_like(Budget::unlimited()).solve(&inst);
        prop_assert_eq!(galena.best_cost, expected);
        let milp = MilpSolver::new(Budget::unlimited()).solve(&inst);
        prop_assert_eq!(milp.best_cost, expected);
        match expected {
            Some(_) => prop_assert_eq!(milp.status, SolveStatus::Optimal),
            None => prop_assert_eq!(milp.status, SolveStatus::Infeasible),
        }
    }

    #[test]
    fn ablations_match_enumeration(raw in raw_instance()) {
        let inst = materialize(&raw);
        let expected = brute_force(&inst).cost();
        let configs = [
            BsoloOptions {
                bound_conflict_learning: false,
                ..BsoloOptions::with_lb(LbMethod::Lpr)
            },
            BsoloOptions {
                knapsack_cuts: false,
                cardinality_cuts: false,
                probing: false,
                ..BsoloOptions::with_lb(LbMethod::Mis)
            },
            BsoloOptions { lb_frequency: 3, ..BsoloOptions::with_lb(LbMethod::Lagrangian) },
        ];
        for (i, opts) in configs.into_iter().enumerate() {
            let got = Bsolo::new(opts).solve(&inst);
            prop_assert_eq!(got.best_cost, expected, "config {}", i);
        }
    }
}
