//! End-to-end integration tests through the `pbo` facade: every
//! generator family solved and cross-checked, OPB round trips, budget
//! semantics.

use std::time::Duration;

use pbo::pbo_benchgen::{
    AccSchedParams, GroutParams, PtlCmosParams, RandomParams, SynthesisParams,
};
use pbo::{
    brute_force, parse_opb, solve, solve_opb, solve_with, write_opb, BsoloOptions, Budget,
    LbMethod, SolveStatus,
};

#[test]
fn facade_solve_matches_brute_force_on_small_grout() {
    let params = GroutParams {
        width: 3,
        height: 3,
        nets: 4,
        paths_per_net: 2,
        capacity: 2,
        bend_penalty: 1,
    };
    for seed in 0..4 {
        let inst = params.generate(seed);
        assert!(inst.num_vars() <= 12);
        let expected = brute_force(&inst);
        let got = solve(&inst);
        assert_eq!(got.best_cost, expected.cost(), "seed {seed}");
    }
}

#[test]
fn facade_solve_matches_brute_force_on_small_ptlcmos() {
    let params = PtlCmosParams { gates: 8, fanin: 1.0, ..PtlCmosParams::default() };
    for seed in 0..4 {
        let inst = params.generate(seed);
        if inst.num_vars() > 22 {
            continue; // keep enumeration tractable
        }
        let expected = brute_force(&inst);
        let got = solve(&inst);
        assert_eq!(got.best_cost, expected.cost(), "seed {seed}");
    }
}

#[test]
fn facade_solve_matches_brute_force_on_small_synthesis() {
    let params = SynthesisParams {
        primes: 12,
        minterms: 10,
        cover_density: 3.0,
        exclusions: 2,
        cost: (1, 9),
    };
    for seed in 0..4 {
        let inst = params.generate(seed);
        let expected = brute_force(&inst);
        let got = solve(&inst);
        assert_eq!(got.best_cost, expected.cost(), "seed {seed}");
    }
}

#[test]
fn scheduling_instances_are_satisfiable() {
    for teams in [4, 6] {
        let inst = AccSchedParams { teams, home_away: true }.generate(0);
        let got = solve(&inst);
        assert_eq!(got.status, SolveStatus::Optimal, "teams={teams}");
        let model = got.best_assignment.expect("model");
        assert!(inst.is_feasible(&model));
    }
}

#[test]
fn all_lb_methods_agree_through_the_facade() {
    let params = RandomParams { vars: 10, constraints: 12, ..RandomParams::default() };
    for seed in 0..8 {
        let inst = params.generate(seed);
        let reference = solve(&inst);
        for lb in [LbMethod::None, LbMethod::Mis, LbMethod::Lagrangian] {
            let got = solve_with(&inst, BsoloOptions::with_lb(lb));
            assert_eq!(got.status, reference.status, "seed {seed} {lb:?}");
            assert_eq!(got.best_cost, reference.best_cost, "seed {seed} {lb:?}");
        }
    }
}

#[test]
fn opb_round_trip_through_facade() {
    let inst = GroutParams {
        width: 3,
        height: 3,
        nets: 3,
        paths_per_net: 3,
        capacity: 2,
        bend_penalty: 1,
    }
    .generate(9);
    let text = write_opb(&inst);
    let parsed = parse_opb(&text).expect("round trip parses");
    assert_eq!(parsed.constraints(), inst.constraints());
    assert_eq!(
        parsed.objective().map(|o| o.terms().to_vec()),
        inst.objective().map(|o| o.terms().to_vec())
    );
    // Solving the round-tripped instance gives the same optimum.
    assert_eq!(solve(&parsed).best_cost, solve(&inst).best_cost);
}

#[test]
fn solve_opb_end_to_end() {
    let result = solve_opb("min: +2 x1 +1 x2 ;\n+1 x1 +1 x2 >= 1 ;\n+1 x1 +1 ~x2 >= 1 ;\n")
        .expect("valid OPB");
    // x2=1 violates second row unless x1; cheapest: x2 alone fails, so
    // either x1 (cost 2) or x2 with x1... enumerate: (0,0): row1 fails.
    // (0,1): row2 fails. (1,0): ok cost 2. (1,1): ok cost 3.
    assert_eq!(result.best_cost, Some(2));
}

#[test]
fn budget_is_honoured_through_the_facade() {
    // A hard-enough instance with a microscopic time budget must return
    // quickly and without claiming optimality.
    let inst = GroutParams {
        width: 6,
        height: 6,
        nets: 24,
        paths_per_net: 6,
        capacity: 3,
        bend_penalty: 2,
    }
    .generate(0);
    let opts =
        BsoloOptions::with_lb(LbMethod::None).budget(Budget::time_limit(Duration::from_millis(30)));
    let start = std::time::Instant::now();
    let got = solve_with(&inst, opts);
    assert!(start.elapsed() < Duration::from_secs(5), "budget overrun");
    assert!(
        matches!(got.status, SolveStatus::Feasible | SolveStatus::Unknown),
        "tiny budget cannot prove optimality, got {:?}",
        got.status
    );
}

#[test]
fn stats_are_populated() {
    let inst = SynthesisParams {
        primes: 15,
        minterms: 14,
        cover_density: 3.0,
        exclusions: 2,
        cost: (1, 5),
    }
    .generate(1);
    let got = solve(&inst);
    assert!(got.is_optimal());
    assert!(got.stats.solve_time > Duration::ZERO);
    assert!(got.stats.propagations > 0);
    // LPR ran at least once if a second solution had to be proven optimal.
    if got.stats.solutions_found > 1 {
        assert!(got.stats.lb_calls > 0);
    }
}
