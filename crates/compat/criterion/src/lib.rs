//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! keeps the workspace's `benches/` compiling and running under
//! `cargo bench`. It mimics the subset of the criterion API the benches
//! use (`benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros) but performs no statistical analysis: each
//! benchmark runs `sample_size` iterations and reports min / mean / max
//! wall time to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }
}

/// A named benchmark with an attached parameter, like criterion's.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), iters: self.sample_size };
        f(&mut bencher);
        bencher.report(&self.name, &id.name);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), iters: self.sample_size };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.name);
        self
    }

    /// Ends the group (formatting only).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.samples.clear();
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "  {group}/{id}: mean {:?} (min {:?}, max {:?}, n={})",
            mean,
            min,
            max,
            self.samples.len()
        );
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
