//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range / tuple / [`Just`] / [`collection::vec`] / [`option::weighted`]
//! strategies, `any::<bool>()`, the `proptest!` test macro and the
//! `prop_assert!` family. Inputs are generated from a per-test seeded
//! generator, so failures are reproducible; there is **no shrinking** —
//! a failing case reports its full `Debug` representation instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one named test case, seeded from the
    /// test path and case index so every test gets a distinct but
    /// reproducible stream.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h ^ ((case as u64) << 32) ^ 0x9e37_79b9 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn uniform_below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        (self.next_u64() as u128) % span
    }
}

/// Error carried by failing `prop_assert!`s through a test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Test-run configuration (case count only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.uniform_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.uniform_below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for an [`Arbitrary`] type; see [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact `usize` or a half-open
    /// range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128;
            let len = self.size.lo + rng.uniform_below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for vectors of `element` values with lengths from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`weighted`].
    pub struct WeightedOption<S> {
        probability_some: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.probability_some {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// Strategy producing `Some(inner)` with the given probability.
    pub fn weighted<S: Strategy>(probability_some: f64, inner: S) -> WeightedOption<S> {
        WeightedOption { probability_some, inner }
    }
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{}: both `{:?}`", format!($($fmt)+), l, r);
    }};
}

/// Declares property tests: each `fn name(pattern in strategy) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($arg:ident in $strat:expr) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = $strat;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let $arg = $crate::Strategy::sample(&strategy, &mut rng);
                    let input_repr = format!("{:?}", $arg);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninput: {}",
                            case + 1,
                            config.cases,
                            err,
                            input_repr,
                        );
                    }
                }
            }
        )*
    };
    ($($(#[$attr:meta])* fn $name:ident($arg:ident in $strat:expr) $body:block)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default())
            $($(#[$attr])* fn $name($arg in $strat) $body)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections_compose(v in crate::collection::vec((1i64..4, any::<bool>()), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (c, _) in &v {
                prop_assert!((1..4).contains(c), "coefficient {} out of range", c);
            }
        }

        #[test]
        fn flat_map_respects_dependency(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }
    }
}
