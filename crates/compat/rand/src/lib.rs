//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-tree
//! crate provides the (small) subset of the `rand 0.8` API the workspace
//! actually uses: [`Rng::gen_range`] over integer and float ranges,
//! [`Rng::gen_bool`], and [`SeedableRng::seed_from_u64`]. Distributions
//! are uniform and deterministic per seed but make no attempt to be
//! bit-compatible with upstream `rand` — nothing in the workspace pins
//! golden values to upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + (end - start) * unit_f64(rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// SplitMix64: the seed expander used by [`SeedableRng::seed_from_u64`]
/// implementations (and a serviceable small generator in its own right).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..9);
            assert!((3..9).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&c));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
