//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator behind the
//! [`ChaCha8Rng`] name so seeded benchmark generators get high-quality,
//! platform-independent, deterministic streams. The key schedule used by
//! [`seed_from_u64`](rand::SeedableRng::seed_from_u64) expands the seed
//! with SplitMix64 and is *not* bit-compatible with upstream
//! `rand_chacha` — nothing in the workspace depends on upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// Re-exports matching `rand_chacha`'s public `rand_core` facade.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 means "exhausted".
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Creates a generator from a 32-byte key (nonce and counter zero).
    pub fn from_key(key: [u32; 8]) -> ChaCha8Rng {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        ChaCha8Rng { state, buf: [0; 16], idx: 16 }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buf.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        let mut sm = rand::SplitMix64::new(seed);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = sm.next_u64();
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha_known_answer_zero_key() {
        // ChaCha8 keystream, all-zero key/nonce/counter: the ECRYPT test
        // vector stream begins 3e 00 ef 2f ..., i.e. 0x2fef003e as a
        // little-endian word.
        let mut rng = ChaCha8Rng::from_key([0; 8]);
        let first = rng.next_u32();
        assert_eq!(first, 0x2fef_003e);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
            seen.insert(v);
        }
        assert!(seen.len() >= 8, "stream should cover the range: {seen:?}");
    }
}
