//! Structured solver telemetry for the bsolo reproduction.
//!
//! The solver runs N-way parallel branch-and-bound plus a local-search
//! pool; the flat `SolverStats` counters merged at join say *how much*
//! happened but not *when* or *where*. This crate adds the missing event
//! stream without touching hot-path cost when disabled:
//!
//! * [`TraceSink`] — the recording abstraction. [`NoopSink`] is the
//!   zero-cost default; [`BufferSink`] appends to a plain `Vec`.
//! * [`Tracer`] — the handle the solver threads through engine, bound
//!   pipeline, search state, and LS. It enum-dispatches over "off" and
//!   "buffered": the off path is a single branch, allocation-free, and
//!   `#[inline]`. Each worker owns its buffer behind an `Rc` (the handle
//!   is deliberately `!Send`), so the hot path never takes a lock; the
//!   drained `Vec<Event>` is what crosses threads at join.
//! * [`TraceEvent`] — the typed vocabulary: engine decisions, conflicts
//!   and restarts, bound calls with method/outcome/margin, incumbent
//!   publications and adoptions, LS restarts and cut installs, and the
//!   cube lifecycle (dequeue wait, dive, re-split, close, clause
//!   publish/import, scheduler steals and injector traffic).
//! * Exporters: [`write_jsonl`] (one event per line, stable schema) and
//!   [`write_chrome`] (Chrome `trace_event` JSON that opens in
//!   `chrome://tracing` / Perfetto with one lane per worker).
//! * [`MetricsRegistry`] — an aggregation pass over a drained event
//!   stream: per-kind counters plus fixed-bucket duration histograms for
//!   bound-call time, queue wait, and dive length.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// Outcome of one lower-bound pipeline call, as seen by the search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundOutcome {
    /// The bound pruned the current node (`lb >= upper`).
    Pruned,
    /// The residual subproblem was proven infeasible.
    Infeasible,
    /// The node stayed open; the search keeps branching.
    Open,
}

impl BoundOutcome {
    /// Stable lower-case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            BoundOutcome::Pruned => "pruned",
            BoundOutcome::Infeasible => "infeasible",
            BoundOutcome::Open => "open",
        }
    }
}

/// The typed event vocabulary.
///
/// Payload fields that are durations (`dur_ns`, `wait_ns`) are wall-time
/// measurements and therefore vary run to run; [`Event::stable_key`]
/// excludes them so deterministic-join event sequences can be compared
/// across runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// One engine branching decision (`Engine::decide`).
    Decision,
    /// One engine conflict (propagation or ad-hoc bound conflict).
    Conflict,
    /// One engine restart (Luby cadence).
    Restart,
    /// One lower-bound pipeline call.
    Bound {
        /// Bounding method (`plain`, `mis`, `lgr`, `lpr`).
        method: &'static str,
        /// Ladder position of this call: `fixed` for the classic
        /// single-method pipeline, `cheap` for the adaptive ladder's
        /// first rung, `escalated` for an LPR call the ladder promoted
        /// to after the cheap rung left the node open.
        stage: &'static str,
        /// What the bound did to the node.
        outcome: BoundOutcome,
        /// `lb - path_cost` at the call (0 when infeasible).
        margin: i64,
        /// Time spent inside the bound kernel.
        dur_ns: u64,
    },
    /// The adaptive bound ladder decided to escalate the current node
    /// from its cheap rung to the LP relaxation. Always followed by a
    /// [`TraceEvent::Bound`] with `stage: "escalated"` on the same lane
    /// (unless the escalated call panicked under fault injection).
    Escalate {
        /// Escalation window the cheap margin was compared against.
        window: i64,
        /// `upper - (path_cost + cheap_lb)` — how far the cheap bound
        /// landed below the incumbent.
        slack: i64,
    },
    /// This worker found a new incumbent (counted in `solutions_found`).
    Solution {
        /// Objective value of the incumbent.
        cost: i64,
    },
    /// This worker adopted an incumbent published by another worker.
    Adopt {
        /// Objective value of the adopted incumbent.
        cost: i64,
    },
    /// Local-search restart (cut-adoption cadence).
    LsRestart,
    /// Local search installed shared cost cuts into its evaluation.
    CutsInstalled {
        /// Number of cuts installed.
        n: u64,
    },
    /// A worker dequeued a cube and started its subtree search.
    CubeStart {
        /// Number of decision literals fixed by the cube.
        depth: u32,
    },
    /// A worker finished a cube subtree.
    CubeEnd {
        /// Cube depth, mirrored from the matching [`TraceEvent::CubeStart`].
        depth: u32,
        /// `true` when the subtree was closed (refuted or exhausted),
        /// `false` when the cube was re-split and re-queued.
        closed: bool,
        /// Wall time from dequeue to finish.
        dur_ns: u64,
    },
    /// A cube was re-split into child cubes that went back on the queue.
    Resplit {
        /// Number of child cubes produced.
        arms: u32,
    },
    /// Published learned clauses to the shared pool.
    ClausesShared {
        /// Number of clauses published by this call.
        n: u64,
    },
    /// Imported learned clauses from the shared pool.
    ClausesImported {
        /// Number of clauses imported by this call.
        n: u64,
    },
    /// Time a worker spent blocked on the cube queue.
    QueueWait {
        /// Wall time spent waiting.
        wait_ns: u64,
    },
    /// A primal dive finished.
    DiveEnd {
        /// Number of dive decisions taken.
        len: u32,
        /// `true` when the dive ended in an unrecoverable conflict.
        refuted: bool,
        /// Wall time spent diving.
        dur_ns: u64,
    },
    /// Decisions consumed by the deterministic cube splitter, recorded
    /// in bulk on the driver lane so event totals reconcile with
    /// `SolverStats::decisions`.
    SplitterDecisions {
        /// Number of splitter lookahead decisions.
        n: u64,
    },
    /// A worker stole one cube from another worker's deque (recorded on
    /// the thief's lane; counted in `SolverStats::steals`).
    Steal {
        /// Lane of the worker whose deque lost the cube.
        victim: u32,
    },
    /// Cubes entered the global injector (recorded in bulk: the driver
    /// seeds the initial frontier, a worker spills deque overflow;
    /// counted in `SolverStats::injections`).
    Inject {
        /// Number of cubes injected by this call.
        n: u64,
    },
    /// A worker thread died (panicked) and was contained; the solve
    /// continues with the survivors (counted in
    /// `SolverStats::workers_lost`).
    WorkerLost,
    /// A dying worker's in-flight cube was quarantined — left unexplored
    /// but accounted for, so the final status degrades honestly (counted
    /// in `SolverStats::cubes_quarantined`).
    CubeQuarantined {
        /// Number of decision literals fixed by the quarantined cube.
        depth: u32,
    },
}

impl TraceEvent {
    /// Stable lower-snake-case kind name used by the exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Decision => "decision",
            TraceEvent::Conflict => "conflict",
            TraceEvent::Restart => "restart",
            TraceEvent::Bound { .. } => "bound",
            TraceEvent::Escalate { .. } => "escalate",
            TraceEvent::Solution { .. } => "solution",
            TraceEvent::Adopt { .. } => "adopt",
            TraceEvent::LsRestart => "ls_restart",
            TraceEvent::CutsInstalled { .. } => "cuts_installed",
            TraceEvent::CubeStart { .. } => "cube_start",
            TraceEvent::CubeEnd { .. } => "cube_end",
            TraceEvent::Resplit { .. } => "resplit",
            TraceEvent::ClausesShared { .. } => "clauses_shared",
            TraceEvent::ClausesImported { .. } => "clauses_imported",
            TraceEvent::QueueWait { .. } => "queue_wait",
            TraceEvent::DiveEnd { .. } => "dive_end",
            TraceEvent::SplitterDecisions { .. } => "splitter_decisions",
            TraceEvent::Steal { .. } => "steal",
            TraceEvent::Inject { .. } => "inject",
            TraceEvent::WorkerLost => "worker_lost",
            TraceEvent::CubeQuarantined { .. } => "cube_quarantined",
        }
    }
}

/// One recorded event: a timestamp relative to the run epoch, the lane
/// (0 = driver/sequential, 1..=N = B&B workers, 64+ = LS workers), and
/// the typed payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the tracer epoch (solve start).
    pub t_ns: u64,
    /// Worker lane the event was recorded on.
    pub lane: u32,
    /// Typed payload.
    pub data: TraceEvent,
}

impl Event {
    /// Run-to-run stable key: lane + kind + the deterministic payload
    /// fields, with all wall-time measurements (`t_ns`, `dur_ns`,
    /// `wait_ns`) excluded. Under `deterministic_join` two runs must
    /// produce identical `stable_key` sequences.
    pub fn stable_key(&self) -> String {
        let mut s = format!("{}:{}", self.lane, self.data.kind());
        match &self.data {
            TraceEvent::Bound { method, stage, outcome, margin, .. } => {
                let _ = write!(s, ":{method}:{stage}:{}:{margin}", outcome.name());
            }
            TraceEvent::Escalate { window, slack } => {
                let _ = write!(s, ":{window}:{slack}");
            }
            TraceEvent::Solution { cost } | TraceEvent::Adopt { cost } => {
                let _ = write!(s, ":{cost}");
            }
            TraceEvent::CutsInstalled { n }
            | TraceEvent::ClausesShared { n }
            | TraceEvent::ClausesImported { n }
            | TraceEvent::SplitterDecisions { n }
            | TraceEvent::Inject { n } => {
                let _ = write!(s, ":{n}");
            }
            TraceEvent::Steal { victim } => {
                let _ = write!(s, ":{victim}");
            }
            TraceEvent::CubeStart { depth } | TraceEvent::CubeQuarantined { depth } => {
                let _ = write!(s, ":{depth}");
            }
            TraceEvent::CubeEnd { depth, closed, .. } => {
                let _ = write!(s, ":{depth}:{closed}");
            }
            TraceEvent::Resplit { arms } => {
                let _ = write!(s, ":{arms}");
            }
            TraceEvent::DiveEnd { len, refuted, .. } => {
                let _ = write!(s, ":{len}:{refuted}");
            }
            TraceEvent::Decision
            | TraceEvent::Conflict
            | TraceEvent::Restart
            | TraceEvent::LsRestart
            | TraceEvent::WorkerLost
            | TraceEvent::QueueWait { .. } => {}
        }
        s
    }
}

/// Recording abstraction. The solver is wired against [`Tracer`], which
/// enum-dispatches between [`NoopSink`] semantics (off) and a buffered
/// sink; the trait exists so exporters and tests can capture events from
/// any source.
pub trait TraceSink {
    /// Record one event.
    fn record(&mut self, event: Event);
}

/// The zero-cost default sink: drops every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// A sink that appends events to an owned `Vec`.
#[derive(Debug, Default)]
pub struct BufferSink {
    /// Recorded events, in emission order.
    pub events: Vec<Event>,
}

impl TraceSink for BufferSink {
    #[inline]
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

/// The handle the solver threads through its layers.
///
/// Cloning shares the underlying buffer (engine, bound pipeline and
/// search state of one worker all append to the same lane). The handle
/// holds an `Rc` and is `!Send` on purpose: a buffer belongs to exactly
/// one worker thread, and only the drained `Vec<Event>` crosses threads.
#[derive(Clone, Debug)]
pub struct Tracer {
    buf: Option<Rc<RefCell<BufferSink>>>,
    epoch: Instant,
    lane: u32,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::off()
    }
}

impl Tracer {
    /// A disabled tracer: `emit` is a branch and nothing else.
    pub fn off() -> Self {
        Tracer { buf: None, epoch: Instant::now(), lane: 0 }
    }

    /// A buffered tracer for `lane`, timestamping relative to `epoch`.
    pub fn buffered(lane: u32, epoch: Instant) -> Self {
        Tracer { buf: Some(Rc::new(RefCell::new(BufferSink::default()))), epoch, lane }
    }

    /// Whether events are being recorded. Callers can use this to skip
    /// payload computation that only matters when tracing.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Lane this tracer records on.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Nanoseconds since the epoch (saturating at `u64::MAX`).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Record `data` at the current time. The disabled path is a single
    /// `None` check and never allocates.
    #[inline]
    pub fn emit(&self, data: TraceEvent) {
        if let Some(buf) = &self.buf {
            let t_ns = self.now_ns();
            buf.borrow_mut().record(Event { t_ns, lane: self.lane, data });
        }
    }

    /// Take the recorded events out of the shared buffer, leaving it
    /// empty. Call once per worker at join; the returned `Vec` is `Send`.
    pub fn drain(&self) -> Vec<Event> {
        match &self.buf {
            Some(buf) => std::mem::take(&mut buf.borrow_mut().events),
            None => Vec::new(),
        }
    }
}

fn sorted_by_time(events: &[Event]) -> Vec<&Event> {
    let mut ordered: Vec<&Event> = events.iter().collect();
    ordered.sort_by_key(|e| (e.t_ns, e.lane));
    ordered
}

/// Serialize events as JSONL: one JSON object per line with the stable
/// schema `{"t_ns":..,"lane":..,"kind":..,...payload}`. Events are
/// written in timestamp order regardless of merge order.
pub fn write_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in sorted_by_time(events) {
        let _ =
            write!(out, "{{\"t_ns\":{},\"lane\":{},\"kind\":\"{}\"", e.t_ns, e.lane, e.data.kind());
        match &e.data {
            TraceEvent::Bound { method, stage, outcome, margin, dur_ns } => {
                let _ = write!(
                    out,
                    ",\"method\":\"{method}\",\"stage\":\"{stage}\",\"outcome\":\"{}\",\"margin\":{margin},\"dur_ns\":{dur_ns}",
                    outcome.name()
                );
            }
            TraceEvent::Escalate { window, slack } => {
                let _ = write!(out, ",\"window\":{window},\"slack\":{slack}");
            }
            TraceEvent::Solution { cost } | TraceEvent::Adopt { cost } => {
                let _ = write!(out, ",\"cost\":{cost}");
            }
            TraceEvent::CutsInstalled { n }
            | TraceEvent::ClausesShared { n }
            | TraceEvent::ClausesImported { n }
            | TraceEvent::SplitterDecisions { n }
            | TraceEvent::Inject { n } => {
                let _ = write!(out, ",\"n\":{n}");
            }
            TraceEvent::Steal { victim } => {
                let _ = write!(out, ",\"victim\":{victim}");
            }
            TraceEvent::CubeStart { depth } | TraceEvent::CubeQuarantined { depth } => {
                let _ = write!(out, ",\"depth\":{depth}");
            }
            TraceEvent::CubeEnd { depth, closed, dur_ns } => {
                let _ = write!(out, ",\"depth\":{depth},\"closed\":{closed},\"dur_ns\":{dur_ns}");
            }
            TraceEvent::Resplit { arms } => {
                let _ = write!(out, ",\"arms\":{arms}");
            }
            TraceEvent::QueueWait { wait_ns } => {
                let _ = write!(out, ",\"wait_ns\":{wait_ns}");
            }
            TraceEvent::DiveEnd { len, refuted, dur_ns } => {
                let _ = write!(out, ",\"len\":{len},\"refuted\":{refuted},\"dur_ns\":{dur_ns}");
            }
            TraceEvent::Decision
            | TraceEvent::Conflict
            | TraceEvent::Restart
            | TraceEvent::LsRestart
            | TraceEvent::WorkerLost => {}
        }
        out.push_str("}\n");
    }
    out
}

fn chrome_us(t_ns: u64) -> f64 {
    t_ns as f64 / 1000.0
}

fn push_chrome(out: &mut String, first: &mut bool, entry: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  ");
    out.push_str(entry);
}

/// Serialize events in Chrome `trace_event` format (JSON array form).
///
/// The file opens directly in `chrome://tracing` or Perfetto with one
/// lane (`tid`) per worker: cube subtrees, queue waits and dives render
/// as duration spans; incumbents, adoptions, re-splits, restarts and
/// clause traffic render as instant markers. High-frequency per-node
/// events (decisions, conflicts, bound calls) are deliberately left to
/// the JSONL exporter — a trace viewer does not need millions of
/// sub-microsecond instants.
pub fn write_chrome(events: &[Event]) -> String {
    let mut lanes: Vec<u32> = events.iter().map(|e| e.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    let mut out = String::from("[\n");
    let mut first = true;
    for lane in &lanes {
        let name = lane_name(*lane);
        push_chrome(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
    }
    for e in sorted_by_time(events) {
        let lane = e.lane;
        let entry = match &e.data {
            TraceEvent::CubeEnd { depth, closed, dur_ns } => Some(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{lane},\"ts\":{:.3},\"dur\":{:.3},\
                 \"name\":\"cube\",\"args\":{{\"depth\":{depth},\"closed\":{closed}}}}}",
                chrome_us(e.t_ns.saturating_sub(*dur_ns)),
                chrome_us(*dur_ns),
            )),
            TraceEvent::QueueWait { wait_ns } => Some(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{lane},\"ts\":{:.3},\"dur\":{:.3},\
                 \"name\":\"queue-wait\",\"args\":{{}}}}",
                chrome_us(e.t_ns.saturating_sub(*wait_ns)),
                chrome_us(*wait_ns),
            )),
            TraceEvent::DiveEnd { len, refuted, dur_ns } => Some(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{lane},\"ts\":{:.3},\"dur\":{:.3},\
                 \"name\":\"dive\",\"args\":{{\"len\":{len},\"refuted\":{refuted}}}}}",
                chrome_us(e.t_ns.saturating_sub(*dur_ns)),
                chrome_us(*dur_ns),
            )),
            TraceEvent::Solution { cost } => {
                Some(instant(lane, e.t_ns, "incumbent", &format!("\"cost\":{cost}")))
            }
            TraceEvent::Adopt { cost } => {
                Some(instant(lane, e.t_ns, "adopt", &format!("\"cost\":{cost}")))
            }
            TraceEvent::Resplit { arms } => {
                Some(instant(lane, e.t_ns, "resplit", &format!("\"arms\":{arms}")))
            }
            TraceEvent::Restart => Some(instant(lane, e.t_ns, "restart", "")),
            TraceEvent::LsRestart => Some(instant(lane, e.t_ns, "ls-restart", "")),
            TraceEvent::CutsInstalled { n } => {
                Some(instant(lane, e.t_ns, "cuts-installed", &format!("\"n\":{n}")))
            }
            TraceEvent::ClausesShared { n } => {
                Some(instant(lane, e.t_ns, "clauses-shared", &format!("\"n\":{n}")))
            }
            TraceEvent::ClausesImported { n } => {
                Some(instant(lane, e.t_ns, "clauses-imported", &format!("\"n\":{n}")))
            }
            TraceEvent::SplitterDecisions { n } => {
                Some(instant(lane, e.t_ns, "splitter-decisions", &format!("\"n\":{n}")))
            }
            TraceEvent::Steal { victim } => {
                Some(instant(lane, e.t_ns, "steal", &format!("\"victim\":{victim}")))
            }
            TraceEvent::Inject { n } => {
                Some(instant(lane, e.t_ns, "inject", &format!("\"n\":{n}")))
            }
            TraceEvent::WorkerLost => Some(instant(lane, e.t_ns, "worker-lost", "")),
            TraceEvent::CubeQuarantined { depth } => {
                Some(instant(lane, e.t_ns, "cube-quarantined", &format!("\"depth\":{depth}")))
            }
            TraceEvent::CubeStart { .. }
            | TraceEvent::Decision
            | TraceEvent::Conflict
            | TraceEvent::Bound { .. }
            | TraceEvent::Escalate { .. } => None,
        };
        if let Some(entry) = entry {
            push_chrome(&mut out, &mut first, &entry);
        }
    }
    out.push_str("\n]\n");
    out
}

fn lane_name(lane: u32) -> String {
    match lane {
        0 => "driver".to_string(),
        l if l >= LS_LANE_BASE => format!("ls-{}", l - LS_LANE_BASE),
        l => format!("bb-{}", l - 1),
    }
}

/// First lane used by local-search workers; B&B workers take `1..=N`.
pub const LS_LANE_BASE: u32 = 64;

fn instant(lane: u32, t_ns: u64, name: &str, args: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{lane},\"ts\":{:.3},\"s\":\"g\",\
         \"name\":\"{name}\",\"args\":{{{args}}}}}",
        chrome_us(t_ns),
    )
}

/// Upper bucket bounds (ns) for [`DurationHistogram`]: decade buckets
/// from 1 µs to 10 s plus an overflow bucket.
pub const HISTOGRAM_BOUNDS_NS: [u64; 8] =
    [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000];

/// Fixed-bucket duration histogram (decade buckets, see
/// [`HISTOGRAM_BOUNDS_NS`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DurationHistogram {
    /// `counts[i]` counts samples `<= HISTOGRAM_BOUNDS_NS[i]`; the final
    /// slot counts overflows.
    pub counts: [u64; HISTOGRAM_BOUNDS_NS.len() + 1],
    /// Total number of samples.
    pub samples: u64,
    /// Sum of all samples in nanoseconds.
    pub total_ns: u64,
}

impl DurationHistogram {
    /// Add one duration sample.
    pub fn observe(&mut self, dur_ns: u64) {
        let slot = HISTOGRAM_BOUNDS_NS
            .iter()
            .position(|&b| dur_ns <= b)
            .unwrap_or(HISTOGRAM_BOUNDS_NS.len());
        self.counts[slot] += 1;
        self.samples += 1;
        self.total_ns = self.total_ns.saturating_add(dur_ns);
    }

    fn bucket_label(i: usize) -> String {
        if i == HISTOGRAM_BOUNDS_NS.len() {
            ">10s".to_string()
        } else {
            let b = HISTOGRAM_BOUNDS_NS[i];
            if b < 1_000_000 {
                format!("<={}us", b / 1_000)
            } else if b < 1_000_000_000 {
                format!("<={}ms", b / 1_000_000)
            } else {
                format!("<={}s", b / 1_000_000_000)
            }
        }
    }
}

/// Aggregation pass over a drained event stream: per-kind counters,
/// weighted totals for bulk events, and duration histograms for bound
/// calls, queue waits and dives.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    /// Event counts per kind (one count per event, unweighted).
    pub counters: BTreeMap<&'static str, u64>,
    /// Weighted totals for bulk events (`clauses_shared` sums `n`, …).
    pub totals: BTreeMap<&'static str, u64>,
    /// Duration histograms keyed by metric name (`lb_time`,
    /// `queue_wait`, `dive`).
    pub histograms: BTreeMap<&'static str, DurationHistogram>,
}

impl MetricsRegistry {
    /// Build the registry from a drained event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut reg = MetricsRegistry::default();
        for e in events {
            *reg.counters.entry(e.data.kind()).or_insert(0) += 1;
            match &e.data {
                TraceEvent::Bound { dur_ns, .. } => {
                    reg.histograms.entry("lb_time").or_default().observe(*dur_ns);
                }
                TraceEvent::QueueWait { wait_ns } => {
                    reg.histograms.entry("queue_wait").or_default().observe(*wait_ns);
                }
                TraceEvent::DiveEnd { dur_ns, .. } => {
                    reg.histograms.entry("dive").or_default().observe(*dur_ns);
                }
                TraceEvent::CutsInstalled { n }
                | TraceEvent::ClausesShared { n }
                | TraceEvent::ClausesImported { n }
                | TraceEvent::SplitterDecisions { n }
                | TraceEvent::Inject { n } => {
                    *reg.totals.entry(e.data.kind()).or_insert(0) += n;
                }
                _ => {}
            }
        }
        reg
    }

    /// Render the registry as human-readable lines (one metric per
    /// line), suitable for prefixing with `c ` in competition output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (kind, count) in &self.counters {
            let _ = write!(out, "counter {kind} = {count}");
            if let Some(total) = self.totals.get(kind) {
                let _ = write!(out, " (total n = {total})");
            }
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name}: samples = {}, total = {:.3}ms",
                h.samples,
                h.total_ns as f64 / 1e6
            );
            for (i, c) in h.counts.iter().enumerate() {
                if *c > 0 {
                    let _ = writeln!(out, "  {:>8} : {c}", DurationHistogram::bucket_label(i));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, lane: u32, data: TraceEvent) -> Event {
        Event { t_ns, lane, data }
    }

    #[test]
    fn off_tracer_records_nothing() {
        let t = Tracer::off();
        assert!(!t.enabled());
        t.emit(TraceEvent::Decision);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn buffered_tracer_round_trips_and_clones_share_the_buffer() {
        let epoch = Instant::now();
        let t = Tracer::buffered(3, epoch);
        let t2 = t.clone();
        t.emit(TraceEvent::Decision);
        t2.emit(TraceEvent::Solution { cost: 7 });
        let events = t.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].lane, 3);
        assert_eq!(events[1].data, TraceEvent::Solution { cost: 7 });
        assert!(t2.drain().is_empty(), "drain empties the shared buffer");
    }

    #[test]
    fn stable_key_ignores_wall_time() {
        let a = ev(10, 1, TraceEvent::CubeEnd { depth: 2, closed: true, dur_ns: 100 });
        let b = ev(99, 1, TraceEvent::CubeEnd { depth: 2, closed: true, dur_ns: 777 });
        assert_eq!(a.stable_key(), b.stable_key());
        let c = ev(10, 1, TraceEvent::CubeEnd { depth: 3, closed: true, dur_ns: 100 });
        assert_ne!(a.stable_key(), c.stable_key());
    }

    #[test]
    fn jsonl_is_one_sorted_line_per_event() {
        let events = vec![
            ev(20, 1, TraceEvent::Conflict),
            ev(
                10,
                0,
                TraceEvent::Bound {
                    method: "mis",
                    stage: "fixed",
                    outcome: BoundOutcome::Pruned,
                    margin: 4,
                    dur_ns: 1234,
                },
            ),
            ev(30, 0, TraceEvent::Escalate { window: 9, slack: 5 }),
        ];
        let text = write_jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"t_ns\":10,\"lane\":0,\"kind\":\"bound\",\"method\":\"mis\",\
             \"stage\":\"fixed\",\"outcome\":\"pruned\",\"margin\":4,\"dur_ns\":1234}"
        );
        assert_eq!(lines[1], "{\"t_ns\":20,\"lane\":1,\"kind\":\"conflict\"}");
        assert_eq!(
            lines[2],
            "{\"t_ns\":30,\"lane\":0,\"kind\":\"escalate\",\"window\":9,\"slack\":5}"
        );
        assert_eq!(events[2].stable_key(), "0:escalate:9:5");
    }

    #[test]
    fn chrome_export_has_thread_names_spans_and_instants() {
        let events = vec![
            ev(5_000, 1, TraceEvent::Solution { cost: 3 }),
            ev(9_000, 1, TraceEvent::CubeEnd { depth: 1, closed: true, dur_ns: 8_000 }),
            ev(2_000, 2, TraceEvent::QueueWait { wait_ns: 2_000 }),
            ev(3_000, 0, TraceEvent::Decision),
        ];
        let text = write_chrome(&events);
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"name\":\"bb-0\""));
        assert!(text.contains("\"name\":\"cube\""));
        assert!(text.contains("\"name\":\"queue-wait\""));
        assert!(text.contains("\"name\":\"incumbent\""));
        assert!(!text.contains("decision"), "per-node events stay out of the viewer");
    }

    #[test]
    fn metrics_counts_and_buckets() {
        let events = vec![
            ev(1, 0, TraceEvent::Decision),
            ev(2, 0, TraceEvent::Decision),
            ev(
                3,
                0,
                TraceEvent::Bound {
                    method: "lgr",
                    stage: "fixed",
                    outcome: BoundOutcome::Open,
                    margin: 0,
                    dur_ns: 500,
                },
            ),
            ev(4, 1, TraceEvent::QueueWait { wait_ns: 2_000_000 }),
            ev(5, 1, TraceEvent::ClausesShared { n: 12 }),
        ];
        let reg = MetricsRegistry::from_events(&events);
        assert_eq!(reg.counters["decision"], 2);
        assert_eq!(reg.counters["clauses_shared"], 1);
        assert_eq!(reg.totals["clauses_shared"], 12);
        assert_eq!(reg.histograms["lb_time"].counts[0], 1);
        assert_eq!(reg.histograms["queue_wait"].counts[4], 1);
        let text = reg.render();
        assert!(text.contains("counter decision = 2"));
        assert!(text.contains("histogram lb_time"));
    }

    #[test]
    fn scheduler_events_round_trip_all_exporters() {
        let events = vec![
            ev(10, 0, TraceEvent::Inject { n: 8 }),
            ev(20, 2, TraceEvent::Steal { victim: 1 }),
        ];
        assert_eq!(events[0].stable_key(), "0:inject:8");
        assert_eq!(events[1].stable_key(), "2:steal:1");
        let jsonl = write_jsonl(&events);
        assert!(jsonl.contains("\"kind\":\"inject\",\"n\":8"));
        assert!(jsonl.contains("\"kind\":\"steal\",\"victim\":1"));
        let chrome = write_chrome(&events);
        assert!(chrome.contains("\"name\":\"steal\""));
        assert!(chrome.contains("\"name\":\"inject\""));
        let reg = MetricsRegistry::from_events(&events);
        assert_eq!(reg.counters["steal"], 1);
        assert_eq!(reg.totals["inject"], 8);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = DurationHistogram::default();
        h.observe(20_000_000_000);
        assert_eq!(h.counts[HISTOGRAM_BOUNDS_NS.len()], 1);
    }
}
