//! Synthetic global-routing instances (the `grout-*` family of Table 1).
//!
//! The original `grout` benchmarks encode global routing as 0-1 ILP
//! (Aloul et al.). This generator reproduces the structure: a routing
//! grid with channel capacities, a set of two-pin nets, and a small menu
//! of candidate paths per net (the two L-shapes plus Z-shaped detours).
//! Selecting exactly one path per net is a one-hot constraint; channel
//! capacities give `<=` cardinality rows over the paths crossing each
//! grid edge; the objective minimizes total wirelength plus a bend
//! penalty. The instances are lightly constrained and cost-dominated —
//! the regime where lower bounding is decisive.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use pbo_core::{Instance, InstanceBuilder, Var};

/// Parameters of the routing grid generator.
#[derive(Clone, Debug)]
pub struct GroutParams {
    /// Grid width (columns of cells).
    pub width: usize,
    /// Grid height (rows of cells).
    pub height: usize,
    /// Number of two-pin nets to route.
    pub nets: usize,
    /// Candidate paths per net (2 L-shapes + detours), at least 2.
    pub paths_per_net: usize,
    /// Capacity of every grid edge (channel width).
    pub capacity: i64,
    /// Extra cost per bend (vias).
    pub bend_penalty: i64,
}

impl Default for GroutParams {
    fn default() -> GroutParams {
        GroutParams { width: 4, height: 4, nets: 8, paths_per_net: 4, capacity: 3, bend_penalty: 2 }
    }
}

/// Id of the horizontal edge between cells `(x, y)` and `(x+1, y)`.
/// Horizontal edges are numbered first; vertical edges follow with an
/// offset of `(width - 1) * height`.
fn h_edge_id(width: usize, x: usize, y: usize) -> usize {
    y * (width - 1) + x
}

/// Expands a monotone staircase path through `corners` (inclusive cell
/// coordinates) into edge ids, returning `(edges, bends)`.
fn trace_path(width: usize, height: usize, corners: &[(usize, usize)]) -> (Vec<usize>, usize) {
    let h_edges = (width - 1) * height;
    let mut edges = Vec::new();
    let mut bends = 0usize;
    let mut last_dir: Option<bool> = None; // true = horizontal
    for w in corners.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x0 != x1 {
            let (a, b) = (x0.min(x1), x0.max(x1));
            for x in a..b {
                edges.push(h_edge_id(width, x, y0));
            }
            if last_dir == Some(false) {
                bends += 1;
            }
            last_dir = Some(true);
        }
        if y0 != y1 {
            let (a, b) = (y0.min(y1), y0.max(y1));
            for y in a..b {
                // Vertical edge between (x1, y) and (x1, y+1).
                edges.push(h_edges + y * width + x1);
            }
            if last_dir == Some(true) {
                bends += 1;
            }
            last_dir = Some(false);
        }
    }
    (edges, bends)
}

impl GroutParams {
    /// Generates a seeded instance.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 2x2 or there are fewer than 2
    /// candidate paths per net.
    pub fn generate(&self, seed: u64) -> Instance {
        assert!(self.width >= 2 && self.height >= 2, "grid too small");
        assert!(self.paths_per_net >= 2, "need at least the two L-shapes");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6e07);
        let mut b = InstanceBuilder::new();

        let h_edges = (self.width - 1) * self.height;
        let v_edges = self.width * (self.height - 1);
        let num_edges = h_edges + v_edges;
        // paths_using[edge] = selection variables of paths crossing it.
        let mut paths_using: Vec<Vec<Var>> = vec![Vec::new(); num_edges];
        let mut objective: Vec<(i64, pbo_core::Lit)> = Vec::new();

        for _ in 0..self.nets {
            // Random distinct terminals with both coordinates differing so
            // the two L-shapes are distinct.
            let (sx, sy, tx, ty) = loop {
                let sx = rng.gen_range(0..self.width);
                let sy = rng.gen_range(0..self.height);
                let tx = rng.gen_range(0..self.width);
                let ty = rng.gen_range(0..self.height);
                if sx != tx && sy != ty {
                    break (sx, sy, tx, ty);
                }
            };
            let mut candidates: Vec<(Vec<usize>, usize)> = Vec::new();
            // Two L-shapes.
            candidates.push(trace_path(self.width, self.height, &[(sx, sy), (tx, sy), (tx, ty)]));
            candidates.push(trace_path(self.width, self.height, &[(sx, sy), (sx, ty), (tx, ty)]));
            // Z-shaped detours through a random intermediate column/row.
            while candidates.len() < self.paths_per_net {
                if rng.gen_bool(0.5) {
                    let mx = rng.gen_range(0..self.width);
                    candidates.push(trace_path(
                        self.width,
                        self.height,
                        &[(sx, sy), (mx, sy), (mx, ty), (tx, ty)],
                    ));
                } else {
                    let my = rng.gen_range(0..self.height);
                    candidates.push(trace_path(
                        self.width,
                        self.height,
                        &[(sx, sy), (sx, my), (tx, my), (tx, ty)],
                    ));
                }
            }
            // One selection variable per candidate; exactly one chosen.
            let vars = b.new_vars(candidates.len());
            b.add_exactly_one(vars.iter().map(|v| v.positive()));
            for (var, (edges, bends)) in vars.iter().zip(&candidates) {
                let cost = edges.len() as i64 + self.bend_penalty * *bends as i64;
                objective.push((cost.max(1), var.positive()));
                for &e in edges {
                    paths_using[e].push(*var);
                }
            }
        }
        // Channel capacities.
        for users in paths_using.iter().filter(|u| u.len() as i64 > self.capacity) {
            b.add_at_most(self.capacity, users.iter().map(|v| v.positive()));
        }
        b.minimize(objective);
        b.name(format!("grout-{}x{}-n{}-s{}", self.width, self.height, self.nets, seed));
        b.build().expect("grout generator produces valid instances")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = GroutParams::default();
        assert_eq!(p.generate(7), p.generate(7));
        assert_ne!(p.generate(7), p.generate(8));
    }

    #[test]
    fn structure_is_one_hot_plus_capacity() {
        let p = GroutParams { nets: 5, ..GroutParams::default() };
        let inst = p.generate(1);
        assert!(inst.is_optimization());
        assert_eq!(inst.num_vars(), 5 * p.paths_per_net);
        // At least the 2 one-hot rows per net (>= and <=).
        assert!(inst.num_constraints() >= 2 * 5);
    }

    #[test]
    fn small_instances_are_satisfiable() {
        // Generous capacity: picking any path combination is feasible, so
        // the all-L-shape assignment must satisfy everything.
        let p = GroutParams {
            width: 3,
            height: 3,
            nets: 3,
            paths_per_net: 2,
            capacity: 3,
            bend_penalty: 1,
        };
        for seed in 0..5 {
            let inst = p.generate(seed);
            let res = pbo_core::brute_force(&inst);
            assert!(res.cost().is_some(), "seed {seed} infeasible");
        }
    }

    #[test]
    fn path_costs_reflect_length_and_bends() {
        let p = GroutParams::default();
        let inst = p.generate(3);
        let obj = inst.objective().unwrap();
        // Every path has positive cost (length >= 2 plus bends).
        assert!(obj.terms().iter().all(|(c, _)| *c >= 2));
    }

    #[test]
    fn trace_path_counts_edges() {
        // L-shape from (0,0) to (2,1) via (2,0): 2 horizontal + 1 vertical.
        let (edges, bends) = trace_path(3, 2, &[(0, 0), (2, 0), (2, 1)]);
        assert_eq!(edges.len(), 3);
        assert_eq!(bends, 1);
        // Degenerate single-corner path has no edges.
        let (edges, bends) = trace_path(3, 2, &[(1, 1)]);
        assert!(edges.is_empty());
        assert_eq!(bends, 0);
    }
}
