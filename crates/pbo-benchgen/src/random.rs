//! Unstructured random PB instances for tests, fuzzing and throughput
//! benchmarks.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use pbo_core::{Instance, InstanceBuilder, Lit, RelOp};

/// Parameters of the random-instance generator.
#[derive(Clone, Debug)]
pub struct RandomParams {
    /// Number of variables.
    pub vars: usize,
    /// Number of constraints.
    pub constraints: usize,
    /// Literals per constraint (inclusive range).
    pub arity: (usize, usize),
    /// Coefficient range (inclusive).
    pub coeff: (i64, i64),
    /// Probability that a literal is positive.
    pub positive_bias: f64,
    /// Generate an objective (`false` = pure satisfaction).
    pub optimization: bool,
    /// Objective cost range (inclusive; zero costs allowed).
    pub cost: (i64, i64),
}

impl Default for RandomParams {
    fn default() -> RandomParams {
        RandomParams {
            vars: 20,
            constraints: 30,
            arity: (2, 5),
            coeff: (1, 4),
            positive_bias: 0.7,
            optimization: true,
            cost: (0, 9),
        }
    }
}

impl RandomParams {
    /// Generates a seeded instance. The right-hand side of each
    /// constraint is drawn from `[1, coefficient sum]`, so constraints
    /// range from trivial to forcing.
    pub fn generate(&self, seed: u64) -> Instance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7a2d);
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(self.vars);
        for _ in 0..self.constraints {
            let k = rng.gen_range(self.arity.0..=self.arity.1.min(self.vars));
            let mut idxs: Vec<usize> = (0..self.vars).collect();
            for i in 0..k {
                let j = rng.gen_range(i..self.vars);
                idxs.swap(i, j);
            }
            let terms: Vec<(i64, Lit)> = idxs[..k]
                .iter()
                .map(|&i| {
                    (
                        rng.gen_range(self.coeff.0..=self.coeff.1),
                        vars[i].lit(rng.gen_bool(self.positive_bias)),
                    )
                })
                .collect();
            let maxw: i64 = terms.iter().map(|t| t.0).sum();
            let rhs = rng.gen_range(1..=maxw);
            b.add_linear(terms, RelOp::Ge, rhs);
        }
        if self.optimization {
            b.minimize(
                vars.iter().map(|v| (rng.gen_range(self.cost.0..=self.cost.1), v.positive())),
            );
        }
        b.name(format!("random-v{}-c{}-s{}", self.vars, self.constraints, seed));
        b.build().expect("random generator produces valid instances")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = RandomParams::default();
        assert_eq!(p.generate(2), p.generate(2));
        assert_ne!(p.generate(2), p.generate(3));
    }

    #[test]
    fn respects_sizes() {
        let p = RandomParams { vars: 12, constraints: 7, ..RandomParams::default() };
        let inst = p.generate(0);
        assert_eq!(inst.num_vars(), 12);
        assert!(inst.num_constraints() <= 7, "normalization may drop rows");
        assert!(inst.is_optimization() || inst.objective().is_none());
    }

    #[test]
    fn satisfaction_mode_has_no_objective() {
        let p = RandomParams { optimization: false, ..RandomParams::default() };
        assert!(p.generate(0).objective().is_none());
    }
}
