//! Deep-split scheduler stress instances: thousand-cube frontiers.
//!
//! The cube-split lookahead (`CubeSplitter` in `pbo-solver`) only
//! produces a frontier as large as the instance keeps branches *open*:
//! every unit implication or shallow refutation closes a subtree before
//! it can fan out. This generator is tuned for the opposite regime —
//! under-constrained short clauses (nothing propagates near the root,
//! so `d` lookahead levels yield close to `2^d` open cubes) over a
//! tie-heavy objective (a flat cost plateau the bound cannot prune, so
//! the exact solve keeps conflicting deep in the tree and, under an
//! aggressive `resplit_conflicts` quantum, keeps handing fresh arms to
//! the scheduler). It exists to stress the cube scheduler — the
//! `queue_contention` A/B and the scheduler-scaling row of
//! `BENCH_table1.json` drive it — not to model any Table 1 family.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use pbo_core::{Instance, InstanceBuilder, Lit};

/// Parameters of the deep-split stress generator.
#[derive(Clone, Debug)]
pub struct DeepSplitParams {
    /// Number of variables. Also bounds the reachable lookahead depth:
    /// a 1k+ frontier needs at least ~10 mostly-open levels, while the
    /// default stays small enough that each leaf cube solves in well
    /// under a millisecond — scheduler traffic, not per-cube search,
    /// must dominate the contention measurements.
    pub vars: usize,
    /// Number of clauses. Keep the ratio `clauses / vars` under ~1.5 so
    /// the shallow levels of the tree stay propagation-free.
    pub clauses: usize,
    /// Literals per clause (inclusive range; short clauses, but never
    /// unit — a unit clause closes a lookahead level outright).
    pub width: (usize, usize),
    /// Probability that a clause literal is positive. Mixed polarity
    /// keeps both lookahead branches of a variable open.
    pub positive_bias: f64,
    /// Objective cost range (inclusive). A narrow range (the default is
    /// `(1, 2)`) builds the tie plateau that defeats bound pruning.
    pub cost: (i64, i64),
}

impl Default for DeepSplitParams {
    fn default() -> DeepSplitParams {
        DeepSplitParams { vars: 48, clauses: 150, width: (3, 3), positive_bias: 0.5, cost: (1, 2) }
    }
}

impl DeepSplitParams {
    /// Generates a seeded instance.
    pub fn generate(&self, seed: u64) -> Instance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdee9);
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(self.vars);
        for _ in 0..self.clauses {
            let k = rng.gen_range(self.width.0.max(2)..=self.width.1.min(self.vars));
            let mut idxs: Vec<usize> = (0..self.vars).collect();
            for i in 0..k {
                let j = rng.gen_range(i..self.vars);
                idxs.swap(i, j);
            }
            let lits: Vec<Lit> =
                idxs[..k].iter().map(|&i| vars[i].lit(rng.gen_bool(self.positive_bias))).collect();
            b.add_clause(lits);
        }
        // Every variable carries a cost from the (narrow) range: the
        // plateau is flat enough that incumbent cuts prune little, deep
        // enough that proving optimality visits a wide tree.
        b.minimize(vars.iter().map(|v| (rng.gen_range(self.cost.0..=self.cost.1), v.positive())));
        b.name(format!("deepsplit-v{}-c{}-s{}", self.vars, self.clauses, seed));
        b.build().expect("deep-split generator produces valid instances")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = DeepSplitParams::default();
        assert_eq!(p.generate(7), p.generate(7));
        assert_ne!(p.generate(7), p.generate(8));
    }

    #[test]
    fn shape_is_clausal_and_tie_costed() {
        let p = DeepSplitParams::default();
        let inst = p.generate(0);
        assert!(inst.is_optimization());
        assert_eq!(inst.num_vars(), p.vars);
        assert!(inst.constraints().iter().all(|c| c.class() == pbo_core::ConstraintClass::Clause));
        let obj = inst.objective().unwrap();
        assert!(obj.terms().iter().all(|(c, _)| (p.cost.0..=p.cost.1).contains(c)));
    }

    #[test]
    fn downsized_instances_are_satisfiable() {
        // The full-size regime is too large to brute-force; the same
        // constrainedness at 12 vars must be (almost) always feasible —
        // under-constrained clauses rarely conflict.
        let p = DeepSplitParams { vars: 12, clauses: 15, ..DeepSplitParams::default() };
        let mut sat = 0;
        for seed in 0..6 {
            if pbo_core::brute_force(&p.generate(seed)).cost().is_some() {
                sat += 1;
            }
        }
        assert!(sat >= 5, "only {sat}/6 satisfiable");
    }

    #[test]
    fn clauses_respect_the_width_range() {
        let p = DeepSplitParams::default();
        let inst = p.generate(3);
        for c in inst.constraints() {
            let n = c.terms().len();
            assert!((p.width.0..=p.width.1).contains(&n), "clause width {n}");
        }
    }
}
