//! Seeded benchmark generators mirroring the four instance families of
//! the DATE'05 evaluation (Table 1).
//!
//! The original benchmark files are no longer retrievable (dead 2005
//! URLs, proprietary conversions), so — per the substitution policy in
//! `DESIGN.md` — each family is regenerated synthetically with the same
//! constraint *structure* and constrainedness regime:
//!
//! | Table 1 family | Generator | Character |
//! |---|---|---|
//! | `grout-4-3-*` (global routing) | [`GroutParams`] | one-hot path selection + channel capacities, cost-dominated |
//! | `9symml`, `C432`, ... (PTL/CMOS synthesis) | [`PtlCmosParams`] | binate implication chains, wide cost spread |
//! | `5xp1.b`, `9sym.b`, ... (MCNC two-level) | [`SynthesisParams`] | weighted (binate) covering |
//! | `acc-tight:*` (ACC scheduling) | [`AccSchedParams`] | pure PB satisfaction, tight round-robin rows |
//!
//! [`RandomParams`] adds unstructured instances for tests and
//! throughput benchmarks, and [`DeepSplitParams`] adds the deep-split
//! scheduler stress regime (thousand-cube lookahead frontiers over a
//! tie-heavy objective) behind the `queue_contention` A/B and the
//! scheduler-scaling row. All generators are deterministic per seed
//! (ChaCha8-based), so every table in `EXPERIMENTS.md` is reproducible.
//!
//! # Examples
//!
//! ```
//! use pbo_benchgen::GroutParams;
//!
//! let instance = GroutParams::default().generate(42);
//! assert!(instance.is_optimization());
//! assert_eq!(instance, GroutParams::default().generate(42)); // seeded
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acc_sched;
mod deep_split;
mod grout;
mod ptl_cmos;
mod random;
mod synthesis;

pub use acc_sched::AccSchedParams;
pub use deep_split::DeepSplitParams;
pub use grout::GroutParams;
pub use ptl_cmos::PtlCmosParams;
pub use random::RandomParams;
pub use synthesis::SynthesisParams;
