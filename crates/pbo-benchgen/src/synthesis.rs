//! Synthetic two-level minimization covering instances (the MCNC
//! `5xp1.b`, `9sym.b`, ... family of Table 1).
//!
//! Two-level logic minimization reduces to (binate) covering: choose a
//! minimum-cost subset of prime implicants such that every minterm is
//! covered, subject to exclusion rows between incompatible primes. This
//! generator emits exactly that shape: unate cover rows (clauses over
//! positive prime-selection literals), optional binate rows (exclusions,
//! from the "don't care"/complement structure), and per-prime costs
//! proportional to literal counts.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use pbo_core::{Instance, InstanceBuilder};

/// Parameters of the covering generator.
#[derive(Clone, Debug)]
pub struct SynthesisParams {
    /// Number of prime implicants (columns / variables).
    pub primes: usize,
    /// Number of minterms (cover rows).
    pub minterms: usize,
    /// Average number of primes covering each minterm.
    pub cover_density: f64,
    /// Number of binate exclusion rows (`~p \/ ~q`).
    pub exclusions: usize,
    /// Prime cost range (literal counts).
    pub cost: (i64, i64),
}

impl Default for SynthesisParams {
    fn default() -> SynthesisParams {
        SynthesisParams {
            primes: 20,
            minterms: 25,
            cover_density: 3.0,
            exclusions: 4,
            cost: (1, 9),
        }
    }
}

impl SynthesisParams {
    /// Generates a seeded instance.
    pub fn generate(&self, seed: u64) -> Instance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x575e);
        let mut b = InstanceBuilder::new();
        let primes = b.new_vars(self.primes);

        // Cover rows: every minterm covered by >= 1 chosen prime. Ensure
        // at least two covering primes per minterm so exclusions rarely
        // make the instance infeasible.
        for _ in 0..self.minterms {
            let mut covering = Vec::new();
            for p in &primes {
                if rng.gen_bool((self.cover_density / self.primes as f64).min(1.0)) {
                    covering.push(p.positive());
                }
            }
            while covering.len() < 2 {
                let p = primes[rng.gen_range(0..self.primes)].positive();
                if !covering.contains(&p) {
                    covering.push(p);
                }
            }
            b.add_clause(covering);
        }
        // Binate exclusion rows between random prime pairs.
        for _ in 0..self.exclusions {
            let i = rng.gen_range(0..self.primes);
            let mut j = rng.gen_range(0..self.primes);
            while j == i {
                j = rng.gen_range(0..self.primes);
            }
            b.add_clause([primes[i].negative(), primes[j].negative()]);
        }
        b.minimize(primes.iter().map(|p| (rng.gen_range(self.cost.0..=self.cost.1), p.positive())));
        b.name(format!("synth-p{}-m{}-s{}", self.primes, self.minterms, seed));
        b.build().expect("synthesis generator produces valid instances")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = SynthesisParams::default();
        assert_eq!(p.generate(5), p.generate(5));
        assert_ne!(p.generate(5), p.generate(6));
    }

    #[test]
    fn rows_are_covering_shaped() {
        let p = SynthesisParams::default();
        let inst = p.generate(0);
        assert!(inst.is_optimization());
        assert_eq!(inst.num_vars(), p.primes);
        // Every constraint is a clause (unate cover or binate exclusion).
        assert!(inst.constraints().iter().all(|c| c.class() == pbo_core::ConstraintClass::Clause));
    }

    #[test]
    fn small_instances_usually_satisfiable() {
        let p = SynthesisParams {
            primes: 10,
            minterms: 8,
            exclusions: 2,
            ..SynthesisParams::default()
        };
        let mut sat = 0;
        for seed in 0..6 {
            if pbo_core::brute_force(&p.generate(seed)).cost().is_some() {
                sat += 1;
            }
        }
        assert!(sat >= 5, "only {sat}/6 satisfiable");
    }

    #[test]
    fn costs_in_declared_range() {
        let p = SynthesisParams::default();
        let inst = p.generate(9);
        let obj = inst.objective().unwrap();
        assert!(obj.terms().iter().all(|(c, _)| (p.cost.0..=p.cost.1).contains(c)));
    }
}
