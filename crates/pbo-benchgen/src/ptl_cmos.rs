//! Synthetic mixed PTL/CMOS technology-mapping instances (the `9symml`,
//! `C432`, ... family of Table 1, originally from Zhu's mixed PTL/CMOS
//! synthesis benchmarks).
//!
//! Each gate of a random DAG netlist chooses between a pass-transistor
//! (PTL) and a static CMOS implementation. PTL cells are smaller but
//! degrade the signal: a PTL gate driving another PTL gate needs a
//! buffer, and some gates (primary outputs, high-fanout drivers) are
//! forced to CMOS. The objective minimizes total area. The instances are
//! binate (implication chains), lightly constrained, and have a wide
//! cost spread — the family where bsolo without good lower bounds times
//! out with enormous `ub` values in Table 1.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use pbo_core::{Instance, InstanceBuilder};

/// Parameters of the PTL/CMOS mapping generator.
#[derive(Clone, Debug)]
pub struct PtlCmosParams {
    /// Number of gates in the netlist DAG.
    pub gates: usize,
    /// Average fanin per gate (edges to earlier gates).
    pub fanin: f64,
    /// Fraction of gates forced to CMOS (outputs/drivers).
    pub forced_cmos_fraction: f64,
    /// CMOS area range (inclusive).
    pub cmos_area: (i64, i64),
    /// PTL area range (inclusive); keep below CMOS for tension.
    pub ptl_area: (i64, i64),
    /// Buffer area inserted on PTL->PTL edges.
    pub buffer_area: (i64, i64),
}

impl Default for PtlCmosParams {
    fn default() -> PtlCmosParams {
        PtlCmosParams {
            gates: 24,
            fanin: 1.8,
            forced_cmos_fraction: 0.15,
            cmos_area: (6, 18),
            ptl_area: (2, 8),
            buffer_area: (2, 6),
        }
    }
}

impl PtlCmosParams {
    /// Generates a seeded instance.
    ///
    /// Variables: `x_i` = gate `i` implemented in PTL (`~x_i` = CMOS),
    /// plus one buffer variable per PTL-sensitive edge.
    pub fn generate(&self, seed: u64) -> Instance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x971c);
        let mut b = InstanceBuilder::new();
        let gate = b.new_vars(self.gates);
        let mut objective: Vec<(i64, pbo_core::Lit)> = Vec::new();

        for g in &gate {
            let cmos = rng.gen_range(self.cmos_area.0..=self.cmos_area.1);
            let ptl = rng.gen_range(self.ptl_area.0..=self.ptl_area.1);
            // Area: ptl * x + cmos * ~x.
            objective.push((ptl, g.positive()));
            objective.push((cmos, g.negative()));
        }
        // Random DAG edges i -> j with i < j; PTL driving PTL needs a
        // buffer: x_i /\ x_j -> buf_ij.
        for j in 1..self.gates {
            let fanin = (rng.gen_range(0.0..2.0 * self.fanin)).round() as usize;
            for _ in 0..fanin.max(1) {
                let i = rng.gen_range(0..j);
                let buf = b.new_var();
                let area = rng.gen_range(self.buffer_area.0..=self.buffer_area.1);
                objective.push((area, buf.positive()));
                b.add_clause([gate[i].negative(), gate[j].negative(), buf.positive()]);
            }
        }
        // Forced CMOS gates.
        for g in &gate {
            if rng.gen_bool(self.forced_cmos_fraction) {
                b.add_clause([g.negative()]);
            }
        }
        // A few mutual-exclusion rows (electrical constraints): at most 2
        // PTL gates among small random groups.
        let groups = self.gates / 6;
        for _ in 0..groups {
            let mut members = Vec::new();
            for g in &gate {
                if rng.gen_bool(4.0 / self.gates as f64) {
                    members.push(g.positive());
                }
            }
            if members.len() > 2 {
                b.add_at_most(2, members);
            }
        }
        b.minimize(objective);
        b.name(format!("ptlcmos-g{}-s{}", self.gates, seed));
        b.build().expect("ptl/cmos generator produces valid instances")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = PtlCmosParams::default();
        assert_eq!(p.generate(3), p.generate(3));
        assert_ne!(p.generate(3), p.generate(4));
    }

    #[test]
    fn always_satisfiable_via_all_cmos() {
        // All gates CMOS, all buffers off satisfies every constraint.
        let p = PtlCmosParams { gates: 10, ..PtlCmosParams::default() };
        for seed in 0..5 {
            let inst = p.generate(seed);
            let all_cmos = vec![false; inst.num_vars()];
            assert!(inst.is_feasible(&all_cmos), "seed {seed}");
        }
    }

    #[test]
    fn optimum_beats_all_cmos_baseline() {
        let p = PtlCmosParams { gates: 7, fanin: 1.2, ..PtlCmosParams::default() };
        let inst = p.generate(11);
        assert!(inst.num_vars() <= 25, "keep brute force tractable");
        let all_cmos_cost = inst.cost_of(&vec![false; inst.num_vars()]);
        let opt = pbo_core::brute_force(&inst).cost().unwrap();
        assert!(opt <= all_cmos_cost);
    }

    #[test]
    fn objective_is_binate_area_model() {
        let inst = PtlCmosParams::default().generate(0);
        let obj = inst.objective().unwrap();
        // After normalization each variable appears once; the CMOS side
        // becomes an offset plus a cost on one polarity.
        assert!(obj.offset() > 0, "CMOS/PTL trade-off folds into an offset");
        assert!(!obj.terms().is_empty());
    }
}
