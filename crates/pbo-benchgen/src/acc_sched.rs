//! Synthetic tournament-scheduling satisfaction instances (the
//! `acc-tight:*` family of Table 1, originally Walser's ACC basketball
//! scheduling 0-1 models).
//!
//! Pure pseudo-Boolean **satisfaction**: there is no cost function, so —
//! as footnote (a) of Table 1 notes — the lower-bounding machinery is
//! inert and all bsolo configurations behave identically. SAT-based
//! solvers shine here; LP-driven branch-and-bound struggles because the
//! zero objective gives the relaxation nothing to prune with.
//!
//! The model is a single round robin: every pair of teams meets exactly
//! once, every team plays exactly once per round, plus optional
//! home/away balance rows (general PB constraints) for tightness.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use pbo_core::{Instance, InstanceBuilder, Var};

/// Parameters of the scheduling generator.
#[derive(Clone, Debug)]
pub struct AccSchedParams {
    /// Number of teams (must be even, at least 4).
    pub teams: usize,
    /// Add home/away balance constraints.
    pub home_away: bool,
}

impl Default for AccSchedParams {
    fn default() -> AccSchedParams {
        AccSchedParams { teams: 6, home_away: true }
    }
}

impl AccSchedParams {
    /// Generates a seeded instance.
    ///
    /// Variables `m[p][k]` = pair `p` (of `t*(t-1)/2`) meets in round `k`
    /// (of `t-1`), plus one home/away variable per pair when enabled.
    ///
    /// # Panics
    ///
    /// Panics if `teams` is odd or below 4.
    // Pair/round tables are inherently index-driven; iterator rewrites
    // would obscure the schedule construction.
    #[allow(clippy::needless_range_loop)]
    pub fn generate(&self, seed: u64) -> Instance {
        assert!(self.teams >= 4 && self.teams.is_multiple_of(2), "teams must be even and >= 4");
        let t = self.teams;
        let rounds = t - 1;
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xacc);
        let mut b = InstanceBuilder::new();

        // Pair index map.
        let mut pair_of = vec![vec![usize::MAX; t]; t];
        let mut pairs = Vec::new();
        for i in 0..t {
            for j in i + 1..t {
                pair_of[i][j] = pairs.len();
                pairs.push((i, j));
            }
        }
        // meet[p][k]
        let meet: Vec<Vec<Var>> = (0..pairs.len()).map(|_| b.new_vars(rounds)).collect();

        // Every pair meets exactly once.
        for row in &meet {
            b.add_exactly_one(row.iter().map(|v| v.positive()));
        }
        // Every team plays exactly once per round.
        for team in 0..t {
            for k in 0..rounds {
                let mut games = Vec::new();
                for other in 0..t {
                    if other == team {
                        continue;
                    }
                    let p = pair_of[team.min(other)][team.max(other)];
                    games.push(meet[p][k].positive());
                }
                b.add_exactly_one(games);
            }
        }
        if self.home_away {
            // h[i][k] = team i plays at home in round k (every team plays
            // every round, so the variable is always meaningful). This is
            // the structure that makes the original ACC instances tight:
            // home/away *patterns*, not just totals.
            let h: Vec<Vec<Var>> = (0..t).map(|_| b.new_vars(rounds)).collect();
            // When pair (i, j) meets in round k, exactly one is at home.
            for (p, &(i, j)) in pairs.iter().enumerate() {
                for k in 0..rounds {
                    b.add_clause([meet[p][k].negative(), h[i][k].positive(), h[j][k].positive()]);
                    b.add_clause([meet[p][k].negative(), h[i][k].negative(), h[j][k].negative()]);
                }
            }
            // Near-balance: each team hosts between floor(r/2) and
            // ceil(r/2) games over the tournament.
            for hi in &h {
                b.add_at_least((rounds / 2) as i64, hi.iter().map(|v| v.positive()));
                b.add_at_most(rounds.div_ceil(2) as i64, hi.iter().map(|v| v.positive()));
            }
            // No three consecutive home games and no three consecutive
            // away games (the classic ACC pattern constraints).
            for hi in &h {
                for w in hi.windows(3) {
                    b.add_at_most(2, w.iter().map(|v| v.positive()));
                    b.add_at_least(1, w.iter().map(|v| v.positive()));
                }
            }
            // A few random "fixed fixtures" constraints for variety.
            for _ in 0..t / 2 {
                let p = rng.gen_range(0..pairs.len());
                let k = rng.gen_range(0..rounds);
                // Pair p does NOT meet in round k.
                b.add_clause([meet[p][k].negative()]);
            }
        }
        b.name(format!("accsched-t{}-s{}", t, seed));
        b.build().expect("scheduling generator produces valid instances")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = AccSchedParams::default();
        assert_eq!(p.generate(1), p.generate(1));
    }

    #[test]
    fn is_pure_satisfaction() {
        let inst = AccSchedParams::default().generate(0);
        assert!(!inst.is_optimization());
        assert!(inst.objective().is_none());
    }

    #[test]
    fn round_robin_structure_counts() {
        let p = AccSchedParams { teams: 4, home_away: false };
        let inst = p.generate(0);
        // 6 pairs * 3 rounds = 18 vars.
        assert_eq!(inst.num_vars(), 18);
        // 6 pair rows + 12 team-round rows, each exactly-one = 2 constraints.
        assert_eq!(inst.num_constraints(), 2 * (6 + 12));
    }

    #[test]
    fn known_round_robin_is_feasible() {
        // The circle-method schedule for 4 teams satisfies the
        // home_away=false model.
        let p = AccSchedParams { teams: 4, home_away: false };
        let inst = p.generate(0);
        // Rounds: {01,23}, {02,13}, {03,12}; pair order: 01,02,03,12,13,23.
        let schedule: &[(usize, usize)] = &[(0, 0), (1, 1), (2, 2), (3, 2), (4, 1), (5, 0)];
        let mut vals = vec![false; inst.num_vars()];
        for &(pair, round) in schedule {
            vals[pair * 3 + round] = true;
        }
        assert!(inst.is_feasible(&vals));
    }

    #[test]
    #[should_panic]
    fn odd_team_count_panics() {
        let _ = AccSchedParams { teams: 5, home_away: false }.generate(0);
    }
}
