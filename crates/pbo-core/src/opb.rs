//! Reading and writing the OPB pseudo-Boolean exchange format.
//!
//! This is the format used by the pseudo-Boolean evaluation / competition
//! series and by the benchmark sets the paper evaluates on:
//!
//! ```text
//! * comment
//! min: +1 x1 +2 x2 ;
//! +1 x1 +1 x2 >= 1 ;
//! -2 x3 +1 x4 = 0 ;
//! ```
//!
//! Literals are `x<k>` (1-based) or `~x<k>` for the negation. Parsing goes
//! through [`InstanceBuilder`], so arbitrary coefficients and operators are
//! accepted and normalized.

use std::fmt;

use crate::instance::{BuildError, Instance, InstanceBuilder};
use crate::lit::Lit;
use crate::normalize::RelOp;

/// Error produced while parsing an OPB document.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseOpbError {
    /// Syntax error with line number (1-based) and message.
    Syntax {
        /// 1-based line number of the offending statement.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The parsed data failed instance construction.
    Build(BuildError),
}

impl fmt::Display for ParseOpbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseOpbError::Syntax { line, message } => {
                write!(f, "OPB syntax error on line {line}: {message}")
            }
            ParseOpbError::Build(e) => write!(f, "OPB instance error: {e}"),
        }
    }
}

impl std::error::Error for ParseOpbError {}

impl From<BuildError> for ParseOpbError {
    fn from(e: BuildError) -> ParseOpbError {
        ParseOpbError::Build(e)
    }
}

fn syntax(line: usize, message: impl Into<String>) -> ParseOpbError {
    ParseOpbError::Syntax { line, message: message.into() }
}

/// Largest variable index accepted by [`parse_opb`]. Variables are
/// declared implicitly by their highest mention, so without a ceiling a
/// single corrupt token (`x99999999999999`) would commit the parser to
/// allocating that many variables before any solver sees the instance.
/// The cap is far above every benchmark family this crate targets.
pub const MAX_OPB_VARS: usize = 10_000_000;

/// Parses an OPB document into an [`Instance`].
///
/// # Errors
///
/// Returns [`ParseOpbError`] on malformed input or if normalization fails.
/// A variable index above [`MAX_OPB_VARS`] is rejected as malformed
/// rather than allocated.
///
/// # Examples
///
/// ```
/// let text = "\
/// * tiny example
/// min: +1 x1 +2 x2 ;
/// +1 x1 +1 x2 >= 1 ;
/// ";
/// let inst = pbo_core::parse_opb(text)?;
/// assert_eq!(inst.num_vars(), 2);
/// assert!(inst.is_optimization());
/// # Ok::<(), pbo_core::ParseOpbError>(())
/// ```
pub fn parse_opb(text: &str) -> Result<Instance, ParseOpbError> {
    let mut builder = InstanceBuilder::new();
    let mut max_var = 0usize;
    let mut statements: Vec<(usize, Vec<String>)> = Vec::new();

    // Split into `;`-terminated statements, remembering line numbers.
    let mut current: Vec<String> = Vec::new();
    let mut current_line = 1usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        let cleaned = line.replace(';', " ; ");
        for tok in cleaned.split_whitespace() {
            if tok == ";" {
                if !current.is_empty() {
                    statements.push((current_line, std::mem::take(&mut current)));
                }
            } else {
                if current.is_empty() {
                    current_line = lineno + 1;
                }
                current.push(tok.to_string());
            }
        }
    }
    if !current.is_empty() {
        statements.push((current_line, current));
    }

    let mut parse_lit = |tok: &str, line: usize| -> Result<Lit, ParseOpbError> {
        let (neg, rest) = match tok.strip_prefix('~') {
            Some(r) => (true, r),
            None => (false, tok),
        };
        let rest = rest
            .strip_prefix('x')
            .ok_or_else(|| syntax(line, format!("expected literal, found `{tok}`")))?;
        let idx: usize =
            rest.parse().map_err(|_| syntax(line, format!("bad variable number in `{tok}`")))?;
        if idx == 0 {
            return Err(syntax(line, "variable numbers are 1-based"));
        }
        if idx > MAX_OPB_VARS {
            return Err(syntax(line, format!("variable number in `{tok}` exceeds {MAX_OPB_VARS}")));
        }
        max_var = max_var.max(idx);
        Ok(Lit::new(idx - 1, !neg))
    };

    let mut objective: Option<Vec<(i64, Lit)>> = None;
    let mut constraints: Vec<crate::normalize::RawConstraint> = Vec::new();

    for (line, toks) in statements {
        let (is_min, body) = if toks[0] == "min:" {
            (true, &toks[1..])
        } else if toks[0] == "min" && toks.len() > 1 && toks[1] == ":" {
            (true, &toks[2..])
        } else {
            (false, &toks[..])
        };
        if is_min {
            if objective.is_some() {
                return Err(syntax(line, "duplicate objective"));
            }
            let mut terms = Vec::new();
            let mut i = 0;
            while i < body.len() {
                let coeff: i64 = body[i].parse().map_err(|_| {
                    syntax(line, format!("expected coefficient, found `{}`", body[i]))
                })?;
                let lit = parse_lit(
                    body.get(i + 1)
                        .ok_or_else(|| syntax(line, "objective term missing literal"))?,
                    line,
                )?;
                terms.push((coeff, lit));
                i += 2;
            }
            objective = Some(terms);
        } else {
            // constraint: terms .. op rhs
            let op_pos = body
                .iter()
                .position(|t| t == ">=" || t == "<=" || t == "=")
                .ok_or_else(|| syntax(line, "constraint missing relational operator"))?;
            let op = match body[op_pos].as_str() {
                ">=" => RelOp::Ge,
                "<=" => RelOp::Le,
                _ => RelOp::Eq,
            };
            if op_pos + 2 != body.len() {
                return Err(syntax(line, "expected single right-hand side after operator"));
            }
            let rhs: i64 = body[op_pos + 1]
                .parse()
                .map_err(|_| syntax(line, format!("bad right-hand side `{}`", body[op_pos + 1])))?;
            let mut terms = Vec::new();
            let mut i = 0;
            while i < op_pos {
                let coeff: i64 = body[i].parse().map_err(|_| {
                    syntax(line, format!("expected coefficient, found `{}`", body[i]))
                })?;
                let lit = parse_lit(
                    body.get(i + 1)
                        .ok_or_else(|| syntax(line, "constraint term missing literal"))?,
                    line,
                )?;
                terms.push((coeff, lit));
                i += 2;
            }
            constraints.push((terms, op, rhs));
        }
    }

    // Declare variables, then feed everything through the builder.
    for _ in 0..max_var {
        builder.new_var();
    }
    for (terms, op, rhs) in constraints {
        builder.add_linear(terms, op, rhs);
    }
    if let Some(obj) = objective {
        builder.minimize(obj);
    }
    Ok(builder.build()?)
}

/// Serializes an [`Instance`] to OPB text. The output is normalized
/// (`>=`-only constraints with positive coefficients) and parses back to
/// an equal instance.
///
/// # Examples
///
/// ```
/// use pbo_core::{parse_opb, write_opb};
///
/// let inst = parse_opb("+2 x1 +1 x2 >= 2 ;\n")?;
/// let text = write_opb(&inst);
/// assert_eq!(parse_opb(&text)?, inst);
/// # Ok::<(), pbo_core::ParseOpbError>(())
/// ```
pub fn write_opb(instance: &Instance) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "* #variable= {} #constraint= {}",
        instance.num_vars(),
        instance.num_constraints()
    );
    let _ = writeln!(out, "* name: {}", instance.name());
    let fmt_lit = |l: Lit| {
        if l.is_positive() {
            format!("x{}", l.var().index() + 1)
        } else {
            format!("~x{}", l.var().index() + 1)
        }
    };
    if let Some(obj) = instance.objective() {
        let mut line = String::from("min:");
        for (c, l) in obj.terms() {
            let _ = write!(line, " +{} {}", c, fmt_lit(*l));
        }
        // The offset is not representable in OPB; it is emitted as a
        // comment and folded away (solution costs shift accordingly).
        if obj.offset() != 0 {
            let _ = writeln!(out, "* objective offset: {}", obj.offset());
        }
        let _ = writeln!(out, "{} ;", line);
    }
    for c in instance.constraints() {
        let mut line = String::new();
        for t in c.terms() {
            let _ = write!(line, "+{} {} ", t.coeff, fmt_lit(t.lit));
        }
        let _ = writeln!(out, "{}>= {} ;", line, c.rhs());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    #[test]
    fn parse_minimal() {
        let inst = parse_opb("+1 x1 +1 x2 >= 1 ;").unwrap();
        assert_eq!(inst.num_vars(), 2);
        assert_eq!(inst.num_constraints(), 1);
        assert!(!inst.is_optimization());
    }

    #[test]
    fn parse_with_objective_and_comments() {
        let text = "\
* a comment
min: +3 x1 +5 x3 ;
+1 x1 +1 x2 >= 1 ;
-1 x2 -1 x3 >= -1 ;
";
        let inst = parse_opb(text).unwrap();
        assert_eq!(inst.num_vars(), 3);
        assert_eq!(inst.num_constraints(), 2);
        assert!(inst.is_optimization());
        assert_eq!(inst.cost_of(&[true, false, true]), 8);
    }

    #[test]
    fn parse_negated_literals() {
        let inst = parse_opb("+1 ~x1 +2 x2 >= 2 ;").unwrap();
        let c = &inst.constraints()[0];
        assert_eq!(c.coeff_of(Lit::new(0, false)), 1);
        assert_eq!(c.coeff_of(Lit::new(1, true)), 2);
    }

    #[test]
    fn parse_equality_expands() {
        let inst = parse_opb("+1 x1 +1 x2 = 1 ;").unwrap();
        assert_eq!(inst.num_constraints(), 2);
    }

    #[test]
    fn parse_multiline_statement() {
        let inst = parse_opb("+1 x1\n+1 x2\n>= 1 ;").unwrap();
        assert_eq!(inst.num_constraints(), 1);
        assert_eq!(inst.constraints()[0].len(), 2);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_opb("+1 y1 >= 1 ;").unwrap_err();
        match err {
            ParseOpbError::Syntax { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(parse_opb("+1 x1 >= ;").is_err());
        assert!(parse_opb("+1 x1 1 ;").is_err());
        assert!(parse_opb("min: +1 x1 ;\nmin: +1 x1 ;").is_err());
    }

    #[test]
    fn roundtrip_preserves_instance() {
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(4);
        b.add_linear(
            vec![(3, vars[0].positive()), (-2, vars[1].negative()), (1, vars[2].positive())],
            RelOp::Le,
            2,
        );
        b.add_at_least(2, vars.iter().map(|v| v.positive()));
        b.minimize(vec![(1, vars[0].positive()), (4, vars[3].negative())]);
        b.name("unnamed");
        let inst = b.build().unwrap();
        let text = write_opb(&inst);
        let parsed = parse_opb(&text).unwrap();
        assert_eq!(parsed.constraints(), inst.constraints());
        assert_eq!(parsed.num_vars(), inst.num_vars());
        // Objective terms survive; offset is dropped by the format (it is
        // emitted as a comment), so compare terms only.
        assert_eq!(parsed.objective().unwrap().terms(), inst.objective().unwrap().terms());
    }

    #[test]
    fn zero_variable_number_rejected() {
        assert!(parse_opb("+1 x0 >= 1 ;").is_err());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn write_satisfaction_instance_has_no_min_line() {
        let inst = parse_opb("+1 x1 +1 x2 >= 1 ;").unwrap();
        let text = write_opb(&inst);
        assert!(!text.contains("min:"));
        assert!(text.contains(">= 1 ;"));
    }

    #[test]
    fn parse_trailing_statement_without_semicolon() {
        // Tolerated: the final statement may omit the terminator.
        let inst = parse_opb("+1 x1 +1 x2 >= 1").unwrap();
        assert_eq!(inst.num_constraints(), 1);
    }

    #[test]
    fn parse_empty_document() {
        let inst = parse_opb("* nothing here\n").unwrap();
        assert_eq!(inst.num_vars(), 0);
        assert_eq!(inst.num_constraints(), 0);
    }

    #[test]
    fn parse_larger_variable_indices_extend_space() {
        let inst = parse_opb("+1 x9 >= 1 ;").unwrap();
        assert_eq!(inst.num_vars(), 9);
    }

    #[test]
    fn offset_comment_emitted_for_negative_literal_costs() {
        let mut b = crate::InstanceBuilder::new();
        let v = b.new_var();
        b.add_clause([v.positive(), v.negative()]);
        b.minimize([(5, v.negative())]);
        let inst = b.build().unwrap();
        // Normalization keeps the cost on the negative literal (offset 0),
        // so no offset comment is needed and the term round-trips.
        let text = write_opb(&inst);
        let reparsed = parse_opb(&text).unwrap();
        assert_eq!(reparsed.objective().unwrap().terms(), inst.objective().unwrap().terms());
    }
}
