//! Problem instances: a set of normalized constraints plus an optional
//! minimization objective.

use std::fmt;

use crate::arena::TermArena;
use crate::assignment::Assignment;
use crate::constraint::{ConstraintState, PbConstraint};
use crate::lit::{Lit, Var};
use crate::normalize::{normalize, NormalizeError, RelOp};
use crate::objective::{Objective, ObjectiveError};

/// A linear pseudo-Boolean optimization (or satisfaction) instance.
///
/// This is the paper's problem `P` (eq. 1): minimize a non-negative linear
/// cost subject to normalized `>=` constraints. An instance without an
/// objective is a pure PB-SAT problem (like the `acc-tight` family of
/// Table 1).
///
/// Use [`InstanceBuilder`] to construct instances from arbitrary
/// (unnormalized) constraints.
///
/// # Examples
///
/// ```
/// use pbo_core::{InstanceBuilder, Lit, RelOp};
///
/// let mut b = InstanceBuilder::new();
/// let x = b.new_var();
/// let y = b.new_var();
/// b.add_clause([x.positive(), y.positive()]);
/// b.minimize([(1, x.positive()), (2, y.positive())]);
/// let inst = b.build()?;
/// assert_eq!(inst.num_vars(), 2);
/// assert_eq!(inst.num_constraints(), 1);
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Instance {
    num_vars: usize,
    constraints: Vec<PbConstraint>,
    objective: Option<Objective>,
    name: String,
    /// Flat CSR/SoA mirror of `constraints`, built once at
    /// [`InstanceBuilder::build`] time and borrowed by every hot path.
    arena: TermArena,
}

impl Instance {
    /// Number of variables (the variable space is `0..num_vars`).
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints.
    #[inline]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The normalized constraints.
    #[inline]
    pub fn constraints(&self) -> &[PbConstraint] {
        &self.constraints
    }

    /// The flat CSR/SoA term arena mirroring
    /// [`constraints`](Instance::constraints): contiguous
    /// coefficient/literal arrays with per-row spans plus the
    /// literal → occurrence CSR. The cache-coherent storage every per-node
    /// hot loop (residual maintenance, bound kernels, local search) runs
    /// on; read-only, so it is shared freely across threads.
    #[inline]
    pub fn arena(&self) -> &TermArena {
        &self.arena
    }

    /// The minimization objective, if this is an optimization instance.
    #[inline]
    pub fn objective(&self) -> Option<&Objective> {
        self.objective.as_ref()
    }

    /// Instance name (used in benchmark tables and OPB comments).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns `true` if the instance has an objective with at least one
    /// cost term.
    pub fn is_optimization(&self) -> bool {
        self.objective.as_ref().is_some_and(|o| !o.is_constant())
    }

    /// Checks a complete assignment against every constraint.
    pub fn is_feasible(&self, values: &[bool]) -> bool {
        assert_eq!(values.len(), self.num_vars, "assignment length mismatch");
        self.constraints.iter().all(|c| c.is_satisfied_by(values))
    }

    /// Objective value of a complete assignment (0 for pure satisfaction).
    pub fn cost_of(&self, values: &[bool]) -> i64 {
        self.objective.as_ref().map_or(0, |o| o.evaluate(values))
    }

    /// Evaluates every constraint under a partial assignment and returns
    /// the indices of violated ones.
    pub fn violated_constraints(&self, assignment: &Assignment) -> Vec<usize> {
        self.constraints
            .iter()
            .enumerate()
            .filter(|(_, c)| c.eval(assignment) == ConstraintState::Violated)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total number of terms across all constraints.
    pub fn num_terms(&self) -> usize {
        self.constraints.iter().map(|c| c.len()).sum()
    }

    /// Renames the instance (builder-style, for generators).
    pub fn with_name(mut self, name: impl Into<String>) -> Instance {
        self.name = name.into();
        self
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Instance \"{}\": {} vars, {} constraints{}",
            self.name,
            self.num_vars,
            self.constraints.len(),
            if self.is_optimization() { ", optimization" } else { ", satisfaction" }
        )?;
        if let Some(obj) = &self.objective {
            writeln!(f, "  {:?}", obj)?;
        }
        for c in &self.constraints {
            writeln!(f, "  {:?}", c)?;
        }
        Ok(())
    }
}

/// Error produced when building an [`Instance`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// A constraint failed to normalize.
    Constraint(NormalizeError),
    /// The objective failed to normalize.
    Objective(ObjectiveError),
    /// A literal refers to a variable outside the declared space.
    VarOutOfRange {
        /// Offending variable index.
        var: usize,
        /// Number of declared variables.
        num_vars: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Constraint(e) => write!(f, "constraint error: {e}"),
            BuildError::Objective(e) => write!(f, "objective error: {e}"),
            BuildError::VarOutOfRange { var, num_vars } => {
                write!(f, "variable x{} out of range (instance has {num_vars} vars)", var + 1)
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<NormalizeError> for BuildError {
    fn from(e: NormalizeError) -> BuildError {
        BuildError::Constraint(e)
    }
}

impl From<ObjectiveError> for BuildError {
    fn from(e: ObjectiveError) -> BuildError {
        BuildError::Objective(e)
    }
}

/// Incremental builder for [`Instance`].
///
/// Accepts arbitrary (unnormalized) linear constraints; normalization
/// happens at [`build`](InstanceBuilder::build) time. Trivially true
/// constraints are dropped; contradictory ones are kept (solvers report
/// infeasibility).
#[derive(Clone, Debug, Default)]
pub struct InstanceBuilder {
    num_vars: usize,
    raw: Vec<crate::normalize::RawConstraint>,
    objective: Option<(Vec<(i64, Lit)>, i64)>,
    name: String,
}

impl InstanceBuilder {
    /// Creates an empty builder.
    pub fn new() -> InstanceBuilder {
        InstanceBuilder {
            num_vars: 0,
            raw: Vec::new(),
            objective: None,
            name: String::from("unnamed"),
        }
    }

    /// Creates a builder with `num_vars` variables pre-declared.
    pub fn with_vars(num_vars: usize) -> InstanceBuilder {
        let mut b = InstanceBuilder::new();
        b.num_vars = num_vars;
        b
    }

    /// Declares a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Declares `n` fresh variables and returns them.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables declared so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Sets the instance name.
    pub fn name(&mut self, name: impl Into<String>) -> &mut InstanceBuilder {
        self.name = name.into();
        self
    }

    /// Adds a raw linear constraint `sum coeff*lit OP rhs`.
    pub fn add_linear(
        &mut self,
        terms: impl IntoIterator<Item = (i64, Lit)>,
        op: RelOp,
        rhs: i64,
    ) -> &mut InstanceBuilder {
        self.raw.push((terms.into_iter().collect(), op, rhs));
        self
    }

    /// Adds a clause (`at least one literal true`).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> &mut InstanceBuilder {
        self.add_linear(lits.into_iter().map(|l| (1, l)), RelOp::Ge, 1)
    }

    /// Adds a cardinality constraint `at least k of the literals`.
    pub fn add_at_least(
        &mut self,
        k: i64,
        lits: impl IntoIterator<Item = Lit>,
    ) -> &mut InstanceBuilder {
        self.add_linear(lits.into_iter().map(|l| (1, l)), RelOp::Ge, k)
    }

    /// Adds a cardinality constraint `at most k of the literals`.
    pub fn add_at_most(
        &mut self,
        k: i64,
        lits: impl IntoIterator<Item = Lit>,
    ) -> &mut InstanceBuilder {
        self.add_linear(lits.into_iter().map(|l| (1, l)), RelOp::Le, k)
    }

    /// Adds an exactly-one constraint over the literals.
    pub fn add_exactly_one(&mut self, lits: impl IntoIterator<Item = Lit>) -> &mut InstanceBuilder {
        self.add_linear(lits.into_iter().map(|l| (1, l)), RelOp::Eq, 1)
    }

    /// Adds an implication `a -> b` as the clause `~a \/ b`.
    pub fn add_implies(&mut self, a: Lit, b: Lit) -> &mut InstanceBuilder {
        self.add_clause([!a, b])
    }

    /// Sets the minimization objective from `(cost, lit)` terms (costs may
    /// be arbitrary integers; normalization makes them positive).
    pub fn minimize(
        &mut self,
        terms: impl IntoIterator<Item = (i64, Lit)>,
    ) -> &mut InstanceBuilder {
        self.objective = Some((terms.into_iter().collect(), 0));
        self
    }

    /// Like [`minimize`](Self::minimize) with an additional constant
    /// offset added to every objective value (used when rebuilding
    /// instances whose normalized objective carries an offset).
    pub fn minimize_with_offset(
        &mut self,
        terms: impl IntoIterator<Item = (i64, Lit)>,
        offset: i64,
    ) -> &mut InstanceBuilder {
        self.objective = Some((terms.into_iter().collect(), offset));
        self
    }

    /// Normalizes everything and produces the [`Instance`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] on arithmetic overflow or if any literal
    /// mentions an undeclared variable.
    pub fn build(&self) -> Result<Instance, BuildError> {
        let check_var = |l: Lit| -> Result<(), BuildError> {
            if l.var().index() >= self.num_vars {
                Err(BuildError::VarOutOfRange { var: l.var().index(), num_vars: self.num_vars })
            } else {
                Ok(())
            }
        };
        let mut constraints = Vec::new();
        for (terms, op, rhs) in &self.raw {
            for &(_, l) in terms {
                check_var(l)?;
            }
            constraints.extend(normalize(terms, *op, *rhs)?);
        }
        let objective = match &self.objective {
            Some((terms, offset)) => {
                for &(_, l) in terms {
                    check_var(l)?;
                }
                Some(Objective::with_offset(terms.iter().copied(), *offset)?)
            }
            None => None,
        };
        let mut arena = TermArena::build(&constraints, self.num_vars);
        // Fractional-cover order per row, fixed for the instance's
        // lifetime: the bound kernels walk it instead of sorting.
        arena.sort_cover_order(|l| objective.as_ref().map_or(0, |o| o.cost_of_lit(l)));
        Ok(Instance {
            num_vars: self.num_vars,
            constraints,
            objective,
            name: self.name.clone(),
            arena,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(3);
        b.name("test");
        b.add_clause([vars[0].positive(), vars[1].positive()]);
        b.add_at_most(1, [vars[1].positive(), vars[2].positive()]);
        b.minimize([(1, vars[0].positive()), (2, vars[1].positive()), (3, vars[2].positive())]);
        let inst = b.build().unwrap();
        assert_eq!(inst.num_vars(), 3);
        assert_eq!(inst.num_constraints(), 2);
        assert_eq!(inst.name(), "test");
        assert!(inst.is_optimization());
        assert!(inst.is_feasible(&[true, false, false]));
        assert_eq!(inst.cost_of(&[true, false, false]), 1);
        assert!(!inst.is_feasible(&[false, false, false]));
    }

    #[test]
    fn exactly_one_expands_to_two_constraints() {
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(2);
        b.add_exactly_one([vars[0].positive(), vars[1].positive()]);
        let inst = b.build().unwrap();
        assert_eq!(inst.num_constraints(), 2);
        assert!(inst.is_feasible(&[true, false]));
        assert!(!inst.is_feasible(&[true, true]));
        assert!(!inst.is_feasible(&[false, false]));
    }

    #[test]
    fn implication_semantics() {
        let mut b = InstanceBuilder::new();
        let x = b.new_var();
        let y = b.new_var();
        b.add_implies(x.positive(), y.positive());
        let inst = b.build().unwrap();
        assert!(inst.is_feasible(&[false, false]));
        assert!(inst.is_feasible(&[false, true]));
        assert!(inst.is_feasible(&[true, true]));
        assert!(!inst.is_feasible(&[true, false]));
    }

    #[test]
    fn out_of_range_var_rejected() {
        let mut b = InstanceBuilder::new();
        let _ = b.new_var();
        b.add_clause([Lit::new(5, true)]);
        assert!(matches!(b.build(), Err(BuildError::VarOutOfRange { var: 5, .. })));
    }

    #[test]
    fn satisfaction_instance_has_no_objective() {
        let mut b = InstanceBuilder::new();
        let x = b.new_var();
        b.add_clause([x.positive()]);
        let inst = b.build().unwrap();
        assert!(!inst.is_optimization());
        assert_eq!(inst.cost_of(&[true]), 0);
    }

    #[test]
    fn violated_constraints_reported() {
        let mut b = InstanceBuilder::new();
        let x = b.new_var();
        let y = b.new_var();
        b.add_clause([x.positive()]);
        b.add_clause([y.positive()]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(2);
        a.assign(x, false);
        assert_eq!(inst.violated_constraints(&a), vec![0]);
    }

    #[test]
    fn debug_output_mentions_name() {
        let mut b = InstanceBuilder::new();
        b.name("dbg");
        let x = b.new_var();
        b.add_clause([x.positive()]);
        let inst = b.build().unwrap();
        assert!(format!("{:?}", inst).contains("dbg"));
    }
}
