//! Normalized pseudo-Boolean constraints.
//!
//! Every constraint in this crate is kept in the *normal form* used by the
//! DATE'05 paper (eq. 1):
//!
//! ```text
//! sum_j  a_j * l_j  >=  b      with  a_j >= 1,  b >= 1,
//! ```
//!
//! where each `l_j` is a literal and each variable appears at most once.
//! Additionally coefficients are *saturated* (`a_j <= b`), which preserves
//! the 0-1 solution set and keeps slack arithmetic small. Construction from
//! arbitrary `<=` / `>=` / `=` linear constraints is handled by
//! [`normalize`](crate::normalize).

use std::fmt;

use crate::assignment::{Assignment, Value};
use crate::lit::Lit;

/// One weighted literal `coeff * lit` of a normalized constraint.
///
/// In a normalized constraint `coeff` is always in `1..=rhs`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct PbTerm {
    /// Positive coefficient of the literal.
    pub coeff: i64,
    /// The literal itself.
    pub lit: Lit,
}

impl PbTerm {
    /// Creates a term `coeff * lit`.
    #[inline]
    pub fn new(coeff: i64, lit: Lit) -> PbTerm {
        PbTerm { coeff, lit }
    }
}

/// Structural class of a normalized constraint, in increasing generality.
///
/// The class determines which propagation scheme the engine uses and which
/// inference rules (sec. 5 of the paper) apply.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ConstraintClass {
    /// Every literal alone satisfies the constraint (`a_j == b` for all
    /// `j`): a propositional clause.
    Clause,
    /// All coefficients are equal but smaller than the right-hand side:
    /// `k * (l_1 + ... + l_n) >= b`, i.e. "at least `ceil(b/k)` literals".
    Cardinality,
    /// General pseudo-Boolean constraint with mixed coefficients.
    General,
}

/// A normalized pseudo-Boolean `>=` constraint.
///
/// Invariants (checked in debug builds, guaranteed by
/// [`normalize`](crate::normalize) and the checked constructors):
///
/// * all coefficients are in `1..=rhs()`,
/// * terms are sorted by variable index and each variable appears once,
/// * `rhs >= 1`.
///
/// A constraint with *no terms* and `rhs >= 1` is the unsatisfiable
/// constraint (`0 >= b`); it is representable so that normalization of a
/// contradictory input has somewhere to go.
///
/// # Examples
///
/// ```
/// use pbo_core::{Lit, PbConstraint, ConstraintClass};
///
/// // 2*x1 + ~x2 + x3 >= 2
/// let c = PbConstraint::try_new(
///     vec![(2, Lit::new(0, true)), (1, Lit::new(1, false)), (1, Lit::new(2, true))],
///     2,
/// ).unwrap();
/// assert_eq!(c.class(), ConstraintClass::General);
/// assert_eq!(c.rhs(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PbConstraint {
    terms: Vec<PbTerm>,
    rhs: i64,
}

/// Error returned by [`PbConstraint::try_new`] when the input is not in
/// normal form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConstraintError {
    /// A coefficient was zero or negative.
    NonPositiveCoefficient(i64),
    /// The right-hand side was zero or negative (the constraint would be
    /// trivially true after normalization).
    NonPositiveRhs(i64),
    /// The same variable appeared in two terms.
    DuplicateVariable(usize),
    /// Total coefficient weight too large for safe slack arithmetic.
    Overflow,
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::NonPositiveCoefficient(c) => {
                write!(f, "coefficient {c} is not positive")
            }
            ConstraintError::NonPositiveRhs(b) => {
                write!(f, "right-hand side {b} is not positive")
            }
            ConstraintError::DuplicateVariable(v) => {
                write!(f, "variable x{} appears twice", v + 1)
            }
            ConstraintError::Overflow => write!(f, "coefficient sum overflows"),
        }
    }
}

impl std::error::Error for ConstraintError {}

/// Maximum allowed sum of coefficients in one constraint, chosen so that
/// slack computations (`sum - rhs`) can never overflow `i64`.
pub const MAX_COEFF_SUM: i64 = i64::MAX / 4;

impl PbConstraint {
    /// Creates a normalized constraint from `(coeff, lit)` pairs and a
    /// right-hand side, validating the normal-form invariants.
    ///
    /// Coefficients larger than `rhs` are saturated down to `rhs` (a
    /// solution-set-preserving rewrite). Terms are sorted by variable.
    ///
    /// # Errors
    ///
    /// Returns an error if any coefficient or the right-hand side is not
    /// positive, a variable is repeated, or the coefficient sum exceeds
    /// [`MAX_COEFF_SUM`].
    pub fn try_new(
        terms: impl IntoIterator<Item = (i64, Lit)>,
        rhs: i64,
    ) -> Result<PbConstraint, ConstraintError> {
        if rhs <= 0 {
            return Err(ConstraintError::NonPositiveRhs(rhs));
        }
        let mut out: Vec<PbTerm> = Vec::new();
        for (coeff, lit) in terms {
            if coeff <= 0 {
                return Err(ConstraintError::NonPositiveCoefficient(coeff));
            }
            out.push(PbTerm::new(coeff.min(rhs), lit));
        }
        out.sort_by_key(|t| t.lit.var());
        for w in out.windows(2) {
            if w[0].lit.var() == w[1].lit.var() {
                return Err(ConstraintError::DuplicateVariable(w[0].lit.var().index()));
            }
        }
        let sum: i64 = out
            .iter()
            .try_fold(0i64, |acc, t| acc.checked_add(t.coeff))
            .ok_or(ConstraintError::Overflow)?;
        if sum > MAX_COEFF_SUM {
            return Err(ConstraintError::Overflow);
        }
        Ok(PbConstraint { terms: out, rhs })
    }

    /// Creates a clause (`l_1 + ... + l_n >= 1`) from literals.
    ///
    /// # Panics
    ///
    /// Panics if the same variable appears twice.
    pub fn clause(lits: impl IntoIterator<Item = Lit>) -> PbConstraint {
        PbConstraint::try_new(lits.into_iter().map(|l| (1, l)), 1)
            .expect("clause literals must mention distinct variables")
    }

    /// Creates a cardinality constraint `l_1 + ... + l_n >= k`.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0` or a variable repeats.
    pub fn at_least(k: i64, lits: impl IntoIterator<Item = Lit>) -> PbConstraint {
        PbConstraint::try_new(lits.into_iter().map(|l| (1, l)), k)
            .expect("cardinality constraint must be well-formed")
    }

    /// The terms of the constraint, sorted by variable index.
    #[inline]
    pub fn terms(&self) -> &[PbTerm] {
        &self.terms
    }

    /// The right-hand side `b` of `sum a_j l_j >= b`.
    #[inline]
    pub fn rhs(&self) -> i64 {
        self.rhs
    }

    /// Number of terms.
    #[inline]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the constraint has no terms (and is therefore the
    /// unsatisfiable constraint `0 >= b`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over the terms.
    pub fn iter(&self) -> std::slice::Iter<'_, PbTerm> {
        self.terms.iter()
    }

    /// Sum of all coefficients (the maximum attainable left-hand side).
    pub fn coeff_sum(&self) -> i64 {
        self.terms.iter().map(|t| t.coeff).sum()
    }

    /// Structural class of this constraint (clause, cardinality, general).
    pub fn class(&self) -> ConstraintClass {
        if self.terms.is_empty() {
            return ConstraintClass::General;
        }
        let first = self.terms[0].coeff;
        if self.terms.iter().any(|t| t.coeff != first) {
            return ConstraintClass::General;
        }
        if first == self.rhs {
            ConstraintClass::Clause
        } else {
            ConstraintClass::Cardinality
        }
    }

    /// For a cardinality-class constraint, the number of literals that must
    /// be true: `ceil(rhs / k)`. For a clause this is 1. For general
    /// constraints this is the sound *cardinality reduction* degree: the
    /// minimum number of literals any satisfying assignment sets true
    /// (computed from the largest coefficients, as used by Galena-style
    /// learning).
    pub fn min_true_literals(&self) -> i64 {
        let mut coeffs: Vec<i64> = self.terms.iter().map(|t| t.coeff).collect();
        coeffs.sort_unstable_by(|a, b| b.cmp(a));
        let mut acc = 0i64;
        for (i, c) in coeffs.iter().enumerate() {
            acc += c;
            if acc >= self.rhs {
                return (i + 1) as i64;
            }
        }
        // Unsatisfiable constraint: more literals than exist would be
        // needed; report len + 1 so callers can detect it.
        self.terms.len() as i64 + 1
    }

    /// Returns `true` if no 0-1 assignment can satisfy the constraint
    /// (coefficient sum below the right-hand side).
    pub fn is_unsatisfiable(&self) -> bool {
        self.coeff_sum() < self.rhs
    }

    /// Returns the coefficient of `lit` in this constraint, or 0 if the
    /// literal (with this exact polarity) does not occur.
    pub fn coeff_of(&self, lit: Lit) -> i64 {
        match self.terms.binary_search_by_key(&lit.var(), |t| t.lit.var()) {
            Ok(i) if self.terms[i].lit == lit => self.terms[i].coeff,
            _ => 0,
        }
    }

    /// Sum of coefficients of literals assigned true.
    pub fn true_weight(&self, assignment: &Assignment) -> i64 {
        self.terms
            .iter()
            .filter(|t| assignment.lit_value(t.lit) == Value::True)
            .map(|t| t.coeff)
            .sum()
    }

    /// Slack under a partial assignment: the weight of non-false literals
    /// minus the right-hand side. Negative slack means the constraint is
    /// violated; `slack < coeff(l)` for an unassigned `l` forces `l` true.
    pub fn slack(&self, assignment: &Assignment) -> i64 {
        let non_false: i64 = self
            .terms
            .iter()
            .filter(|t| assignment.lit_value(t.lit) != Value::False)
            .map(|t| t.coeff)
            .sum();
        non_false - self.rhs
    }

    /// Evaluates the constraint under a partial assignment.
    pub fn eval(&self, assignment: &Assignment) -> ConstraintState {
        if self.true_weight(assignment) >= self.rhs {
            ConstraintState::Satisfied
        } else if self.slack(assignment) < 0 {
            ConstraintState::Violated
        } else {
            ConstraintState::Undetermined
        }
    }

    /// Returns `true` if the complete assignment given as a boolean slice
    /// (indexed by variable) satisfies the constraint.
    pub fn is_satisfied_by(&self, values: &[bool]) -> bool {
        let lhs: i64 = self
            .terms
            .iter()
            .filter(|t| {
                let v = values[t.lit.var().index()];
                if t.lit.is_positive() {
                    v
                } else {
                    !v
                }
            })
            .map(|t| t.coeff)
            .sum();
        lhs >= self.rhs
    }

    /// Largest variable index mentioned, or `None` for the empty constraint.
    pub fn max_var_index(&self) -> Option<usize> {
        self.terms.iter().map(|t| t.lit.var().index()).max()
    }
}

/// State of a constraint under a partial assignment.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ConstraintState {
    /// The true literals already reach the right-hand side.
    Satisfied,
    /// The non-false literals can no longer reach the right-hand side.
    Violated,
    /// Neither satisfied nor violated yet.
    Undetermined,
}

impl fmt::Debug for PbConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if t.coeff != 1 {
                write!(f, "{}*", t.coeff)?;
            }
            write!(f, "{:?}", t.lit)?;
        }
        if self.terms.is_empty() {
            write!(f, "0")?;
        }
        write!(f, " >= {}", self.rhs)
    }
}

impl fmt::Display for PbConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::new(i, pos)
    }

    #[test]
    fn try_new_sorts_and_saturates() {
        let c = PbConstraint::try_new(vec![(5, lit(2, true)), (1, lit(0, false))], 2).unwrap();
        assert_eq!(c.terms()[0].lit, lit(0, false));
        assert_eq!(c.terms()[1].coeff, 2, "coefficient saturated to rhs");
    }

    #[test]
    fn try_new_rejects_bad_inputs() {
        assert!(matches!(
            PbConstraint::try_new(vec![(0, lit(0, true))], 1),
            Err(ConstraintError::NonPositiveCoefficient(0))
        ));
        assert!(matches!(
            PbConstraint::try_new(vec![(1, lit(0, true))], 0),
            Err(ConstraintError::NonPositiveRhs(0))
        ));
        assert!(matches!(
            PbConstraint::try_new(vec![(1, lit(0, true)), (1, lit(0, false))], 1),
            Err(ConstraintError::DuplicateVariable(0))
        ));
    }

    #[test]
    fn classification() {
        assert_eq!(
            PbConstraint::clause([lit(0, true), lit(1, false)]).class(),
            ConstraintClass::Clause
        );
        assert_eq!(
            PbConstraint::at_least(2, [lit(0, true), lit(1, true), lit(2, true)]).class(),
            ConstraintClass::Cardinality
        );
        assert_eq!(
            PbConstraint::try_new(vec![(2, lit(0, true)), (1, lit(1, true))], 2).unwrap().class(),
            ConstraintClass::General
        );
        // 2x + 2y >= 2 saturates to a clause.
        assert_eq!(
            PbConstraint::try_new(vec![(2, lit(0, true)), (2, lit(1, true))], 2).unwrap().class(),
            ConstraintClass::Clause
        );
    }

    #[test]
    fn min_true_literals_cases() {
        let clause = PbConstraint::clause([lit(0, true), lit(1, true)]);
        assert_eq!(clause.min_true_literals(), 1);
        let card = PbConstraint::at_least(2, [lit(0, true), lit(1, true), lit(2, true)]);
        assert_eq!(card.min_true_literals(), 2);
        // 3x + 2y + 2z >= 5 : need at least 2 literals (3+2 >= 5).
        let gen =
            PbConstraint::try_new(vec![(3, lit(0, true)), (2, lit(1, true)), (2, lit(2, true))], 5)
                .unwrap();
        assert_eq!(gen.min_true_literals(), 2);
        // Unsatisfiable: 1x >= 3 saturates coeff to 3? No: saturation is
        // min(coeff, rhs) so 1 stays; sum 1 < 3.
        let unsat = PbConstraint::try_new(vec![(1, lit(0, true))], 3).unwrap();
        assert!(unsat.is_unsatisfiable());
        assert_eq!(unsat.min_true_literals(), 2);
    }

    #[test]
    fn slack_and_eval() {
        // 2x1 + x2 + x3 >= 2
        let c =
            PbConstraint::try_new(vec![(2, lit(0, true)), (1, lit(1, true)), (1, lit(2, true))], 2)
                .unwrap();
        let mut a = Assignment::new(3);
        assert_eq!(c.slack(&a), 2);
        assert_eq!(c.eval(&a), ConstraintState::Undetermined);
        a.assign(Var::new(0), false);
        assert_eq!(c.slack(&a), 0);
        assert_eq!(c.eval(&a), ConstraintState::Undetermined);
        a.assign(Var::new(1), true);
        a.assign(Var::new(2), false);
        assert_eq!(c.eval(&a), ConstraintState::Violated);
        let mut b = Assignment::new(3);
        b.assign(Var::new(0), true);
        assert_eq!(c.eval(&b), ConstraintState::Satisfied);
    }

    #[test]
    fn coeff_of_is_polarity_sensitive() {
        let c = PbConstraint::try_new(vec![(2, lit(0, false)), (1, lit(1, true))], 2).unwrap();
        assert_eq!(c.coeff_of(lit(0, false)), 2);
        assert_eq!(c.coeff_of(lit(0, true)), 0);
        assert_eq!(c.coeff_of(lit(2, true)), 0);
    }

    #[test]
    fn is_satisfied_by_complete() {
        let c = PbConstraint::try_new(vec![(1, lit(0, true)), (2, lit(1, false))], 2).unwrap();
        assert!(c.is_satisfied_by(&[true, false]));
        assert!(c.is_satisfied_by(&[false, false]));
        assert!(!c.is_satisfied_by(&[true, true]));
    }

    #[test]
    fn empty_constraint_is_unsat() {
        let c = PbConstraint::try_new(Vec::<(i64, Lit)>::new(), 1).unwrap();
        assert!(c.is_empty());
        assert!(c.is_unsatisfiable());
        assert!(!c.is_satisfied_by(&[]));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::new(i, pos)
    }

    #[test]
    fn display_matches_debug() {
        let c = PbConstraint::try_new(vec![(2, lit(0, true)), (1, lit(1, false))], 2).unwrap();
        assert_eq!(format!("{c}"), format!("{c:?}"));
        assert!(format!("{c}").contains(">= 2"));
    }

    #[test]
    fn eval_on_empty_assignment_space() {
        let c = PbConstraint::try_new(Vec::<(i64, Lit)>::new(), 3).unwrap();
        let a = Assignment::new(0);
        assert_eq!(c.eval(&a), ConstraintState::Violated);
    }

    #[test]
    fn max_var_index_reports_largest() {
        let c = PbConstraint::clause([lit(2, true), lit(7, false)]);
        assert_eq!(c.max_var_index(), Some(7));
        let empty = PbConstraint::try_new(Vec::<(i64, Lit)>::new(), 1).unwrap();
        assert_eq!(empty.max_var_index(), None);
    }

    #[test]
    fn coeff_sum_and_iter_agree() {
        let c = PbConstraint::try_new(vec![(2, lit(0, true)), (3, lit(1, true))], 4).unwrap();
        assert_eq!(c.coeff_sum(), c.iter().map(|t| t.coeff).sum::<i64>());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overflow_guard_rejects_huge_constraints() {
        let result = PbConstraint::try_new(
            vec![(MAX_COEFF_SUM, lit(0, true)), (MAX_COEFF_SUM, lit(1, true))],
            MAX_COEFF_SUM,
        );
        assert!(matches!(result, Err(ConstraintError::Overflow)));
    }
}
