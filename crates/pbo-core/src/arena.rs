//! The flat CSR/SoA term arena — the cache-coherent storage layer the
//! whole solver stack runs on.
//!
//! A normalized instance stores its constraints as a `Vec<PbConstraint>`,
//! each owning its own `Vec<PbTerm>` heap block. That representation is
//! convenient for construction and I/O, but every per-node hot loop —
//! residual-counter maintenance, bound-kernel term scans, local-search
//! flips — ends up pointer-chasing through scattered heap blocks.
//! [`TermArena`] lays the same data out flat:
//!
//! * **one contiguous coefficient array** and **one contiguous literal
//!   array** (SoA), with per-row offset spans (`row_start`), so iterating
//!   the terms of consecutive rows is a linear memory walk;
//! * a **literal → occurrence CSR**: for each literal code, the rows it
//!   appears in and its coefficient there, again as two flat arrays with
//!   an offset table — the structure counter-based propagation, residual
//!   maintenance and local-search flips all index by.
//!
//! The arena is built once per [`Instance`](crate::Instance) and borrowed
//! (never copied) by every consumer: the incremental residual state, the
//! subproblem views handed to the bound kernels, and the local-search
//! workers — which therefore share one read-only block across threads.

use crate::constraint::PbConstraint;
use crate::lit::Lit;
use crate::PbTerm;

/// Borrowed view of one row of a [`TermArena`]: parallel coefficient and
/// literal slices (SoA).
#[derive(Copy, Clone, Debug)]
pub struct RowView<'a> {
    /// Coefficients of the row's terms.
    pub coeffs: &'a [i64],
    /// Literals of the row's terms (parallel to `coeffs`).
    pub lits: &'a [Lit],
}

impl<'a> RowView<'a> {
    /// Number of terms in the row.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` if the row has no terms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Iterates the row as [`PbTerm`]s (materialized on the fly from the
    /// SoA arrays).
    #[inline]
    pub fn terms(&self) -> impl Iterator<Item = PbTerm> + 'a {
        self.coeffs.iter().zip(self.lits).map(|(&coeff, &lit)| PbTerm { coeff, lit })
    }
}

/// Flat SoA storage of a set of normalized `>=` rows plus the
/// literal → occurrence CSR over them.
///
/// # Examples
///
/// ```
/// use pbo_core::{InstanceBuilder, Lit};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(2);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// let inst = b.build()?;
///
/// let arena = inst.arena();
/// assert_eq!(arena.num_rows(), 1);
/// assert_eq!(arena.row(0).len(), 2);
/// let (rows, coeffs) = arena.occurrences(v[0].positive());
/// assert_eq!(rows, &[0]);
/// assert_eq!(coeffs, &[1]);
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TermArena {
    /// Flat coefficients of all rows, row-major.
    coeffs: Vec<i64>,
    /// Flat literals of all rows, row-major (parallel to `coeffs`).
    lits: Vec<Lit>,
    /// Per-row offsets into `coeffs`/`lits` (length `num_rows + 1`).
    row_start: Vec<u32>,
    /// Right-hand side per row.
    rhs: Vec<i64>,
    /// Per-literal-code offsets into `occ_row`/`occ_coeff`
    /// (length `2 * num_vars + 1`).
    occ_start: Vec<u32>,
    /// Row index of each occurrence, grouped by literal code.
    occ_row: Vec<u32>,
    /// Coefficient of each occurrence (parallel to `occ_row`).
    occ_coeff: Vec<i64>,
    /// Absolute term positions of each row, permuted into
    /// *fractional-cover order* (ascending objective cost per
    /// coefficient unit, stable in term order) — see
    /// [`TermArena::sort_cover_order`]. Initially the identity (term
    /// order, the cover order of a costless objective).
    cover_order: Vec<u32>,
}

impl TermArena {
    /// Builds the arena for `rows` over a variable space of `num_vars`.
    ///
    /// # Panics
    ///
    /// Panics if a row mentions a variable at or above `num_vars`, or if
    /// the total term count exceeds `u32::MAX`.
    pub fn build(rows: &[PbConstraint], num_vars: usize) -> TermArena {
        let total: usize = rows.iter().map(|c| c.len()).sum();
        assert!(total <= u32::MAX as usize, "term arena exceeds u32 index space");
        let mut coeffs = Vec::with_capacity(total);
        let mut lits = Vec::with_capacity(total);
        let mut row_start = Vec::with_capacity(rows.len() + 1);
        let mut rhs = Vec::with_capacity(rows.len());
        row_start.push(0u32);
        // Counting pass for the occurrence CSR.
        let mut occ_start = vec![0u32; 2 * num_vars + 1];
        for c in rows {
            rhs.push(c.rhs());
            for t in c.terms() {
                assert!(t.lit.var().index() < num_vars, "row literal outside variable space");
                coeffs.push(t.coeff);
                lits.push(t.lit);
                occ_start[t.lit.code() + 1] += 1;
            }
            row_start.push(coeffs.len() as u32);
        }
        for i in 1..occ_start.len() {
            occ_start[i] += occ_start[i - 1];
        }
        // Filling pass.
        let mut cursor = occ_start.clone();
        let mut occ_row = vec![0u32; total];
        let mut occ_coeff = vec![0i64; total];
        for (ri, c) in rows.iter().enumerate() {
            for t in c.terms() {
                let slot = cursor[t.lit.code()] as usize;
                occ_row[slot] = ri as u32;
                occ_coeff[slot] = t.coeff;
                cursor[t.lit.code()] += 1;
            }
        }
        let cover_order = (0..coeffs.len() as u32).collect();
        TermArena { coeffs, lits, row_start, rhs, occ_start, occ_row, occ_coeff, cover_order }
    }

    /// Sorts each row's [`cover order`](TermArena::cover_order) by
    /// ascending `lit_cost(lit) / coeff` (the fractional-cover fill
    /// order), ties broken by term position. Costs and coefficients are
    /// immutable, so the order is computed once and every per-node cover
    /// walk reads it instead of sorting.
    pub fn sort_cover_order(&mut self, lit_cost: impl Fn(Lit) -> i64) {
        for r in 0..self.num_rows() {
            let lo = self.row_start[r] as usize;
            let hi = self.row_start[r + 1] as usize;
            self.cover_order[lo..hi].sort_unstable_by(|&a, &b| {
                let ra = lit_cost(self.lits[a as usize]) as f64 / self.coeffs[a as usize] as f64;
                let rb = lit_cost(self.lits[b as usize]) as f64 / self.coeffs[b as usize] as f64;
                ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
            });
        }
    }

    /// The absolute term positions of row `i` in fractional-cover order;
    /// index them into [`TermArena::term_at`].
    #[inline]
    pub fn cover_order(&self, i: usize) -> &[u32] {
        let lo = self.row_start[i] as usize;
        let hi = self.row_start[i + 1] as usize;
        &self.cover_order[lo..hi]
    }

    /// The term at absolute position `p` (as listed by
    /// [`TermArena::cover_order`]).
    #[inline]
    pub fn term_at(&self, p: usize) -> PbTerm {
        PbTerm { coeff: self.coeffs[p], lit: self.lits[p] }
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rhs.len()
    }

    /// Total number of terms across all rows.
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.lits.len()
    }

    /// Number of literal codes the occurrence CSR covers
    /// (`2 * num_vars`).
    #[inline]
    pub fn num_lit_codes(&self) -> usize {
        self.occ_start.len() - 1
    }

    /// The terms of row `i` as parallel coefficient/literal slices.
    #[inline]
    pub fn row(&self, i: usize) -> RowView<'_> {
        let lo = self.row_start[i] as usize;
        let hi = self.row_start[i + 1] as usize;
        RowView { coeffs: &self.coeffs[lo..hi], lits: &self.lits[lo..hi] }
    }

    /// Right-hand side of row `i`.
    #[inline]
    pub fn rhs(&self, i: usize) -> i64 {
        self.rhs[i]
    }

    /// Number of terms in row `i`.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        (self.row_start[i + 1] - self.row_start[i]) as usize
    }

    /// The occurrences of `lit`: parallel `(row indices, coefficients)`
    /// slices.
    #[inline]
    pub fn occurrences(&self, lit: Lit) -> (&[u32], &[i64]) {
        let lo = self.occ_start[lit.code()] as usize;
        let hi = self.occ_start[lit.code() + 1] as usize;
        (&self.occ_row[lo..hi], &self.occ_coeff[lo..hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::new(i, pos)
    }

    #[test]
    fn arena_mirrors_constraints_exactly() {
        let rows = vec![
            PbConstraint::try_new(vec![(2, lit(0, true)), (1, lit(2, false))], 2).unwrap(),
            PbConstraint::clause([lit(1, true), lit(2, true)]),
        ];
        let arena = TermArena::build(&rows, 3);
        assert_eq!(arena.num_rows(), 2);
        assert_eq!(arena.num_terms(), 4);
        for (i, c) in rows.iter().enumerate() {
            assert_eq!(arena.rhs(i), c.rhs());
            assert_eq!(arena.row_len(i), c.len());
            let terms: Vec<PbTerm> = arena.row(i).terms().collect();
            assert_eq!(terms, c.terms().to_vec(), "row {i}");
        }
    }

    #[test]
    fn occurrence_csr_lists_every_row_with_its_coefficient() {
        let rows = vec![
            PbConstraint::try_new(vec![(2, lit(0, true)), (1, lit(1, true))], 2).unwrap(),
            PbConstraint::try_new(vec![(3, lit(0, true)), (1, lit(1, false))], 3).unwrap(),
        ];
        let arena = TermArena::build(&rows, 2);
        let (r, c) = arena.occurrences(lit(0, true));
        assert_eq!(r, &[0, 1]);
        assert_eq!(c, &[2, 3]);
        let (r, c) = arena.occurrences(lit(1, false));
        assert_eq!((r, c), (&[1u32][..], &[1i64][..]));
        let (r, _) = arena.occurrences(lit(0, false));
        assert!(r.is_empty());
    }

    #[test]
    fn occurrences_are_grouped_in_row_order() {
        // Occurrence order per literal must be ascending row index (the
        // filling pass walks rows in order) — the invariant the residual
        // state's LIFO relink discipline relies on.
        let rows: Vec<PbConstraint> =
            (0..5).map(|_| PbConstraint::clause([lit(0, true), lit(1, true)])).collect();
        let arena = TermArena::build(&rows, 2);
        let (r, _) = arena.occurrences(Var::new(0).positive());
        assert_eq!(r, &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_arena_is_well_formed() {
        let arena = TermArena::build(&[], 3);
        assert_eq!(arena.num_rows(), 0);
        assert_eq!(arena.num_terms(), 0);
        assert_eq!(arena.num_lit_codes(), 6);
        let (r, c) = arena.occurrences(lit(2, true));
        assert!(r.is_empty() && c.is_empty());
    }
}
