//! Linear minimization objectives.
//!
//! The paper (eq. 1) assumes a non-negative integer cost `c_j` on each
//! *positive* variable. We keep the slightly more general normal form of a
//! cost on each *literal* plus a constant offset, so that objectives such
//! as `min 3*~x1 + 2*x2` round-trip through normalization: `3*~x1` becomes
//! `offset 3, cost -3 on x1`, which is re-normalized to a positive cost on
//! the complementary literal. All costs in the normal form are strictly
//! positive and each variable appears at most once.

use std::fmt;

use crate::assignment::{Assignment, Value};
use crate::lit::{Lit, Var};

/// A normalized minimization objective: `minimize offset + sum c_j * l_j`
/// with all `c_j >= 1` and distinct variables.
///
/// "Cost of a literal" means the cost incurred when that literal is
/// assigned *true*. The paper's `P.path` is [`Objective::path_cost`]: the
/// cost of the literals already made true.
///
/// # Examples
///
/// ```
/// use pbo_core::{Lit, Objective};
///
/// // minimize 2*x1 + 3*~x2
/// let obj = Objective::new(vec![(2, Lit::new(0, true)), (3, Lit::new(1, false))]).unwrap();
/// assert_eq!(obj.offset(), 0);
/// assert_eq!(obj.evaluate(&[true, true]), 2); // x1 costs 2, ~x2 is false
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Objective {
    terms: Vec<(i64, Lit)>,
    offset: i64,
}

/// Error returned when an objective cannot be normalized.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ObjectiveError {
    /// Costs overflowed `i64` during normalization.
    Overflow,
}

impl fmt::Display for ObjectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectiveError::Overflow => write!(f, "objective cost overflow"),
        }
    }
}

impl std::error::Error for ObjectiveError {}

impl Objective {
    /// Builds a normalized objective from arbitrary `(cost, lit)` pairs.
    ///
    /// Duplicate variables are merged; negative or zero net costs are
    /// rewritten onto the complementary literal or dropped, adjusting the
    /// constant offset so the represented function is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectiveError::Overflow`] if intermediate sums exceed
    /// `i64` range.
    pub fn new(terms: impl IntoIterator<Item = (i64, Lit)>) -> Result<Objective, ObjectiveError> {
        Objective::with_offset(terms, 0)
    }

    /// Like [`Objective::new`] but with an initial constant offset.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectiveError::Overflow`] if intermediate sums exceed
    /// `i64` range.
    pub fn with_offset(
        terms: impl IntoIterator<Item = (i64, Lit)>,
        offset: i64,
    ) -> Result<Objective, ObjectiveError> {
        // Net cost per variable on the positive literal.
        let mut per_var: std::collections::BTreeMap<usize, i128> =
            std::collections::BTreeMap::new();
        let mut off = offset as i128;
        for (c, lit) in terms {
            let c = c as i128;
            if lit.is_positive() {
                *per_var.entry(lit.var().index()).or_insert(0) += c;
            } else {
                // c * ~x == c - c * x
                off += c;
                *per_var.entry(lit.var().index()).or_insert(0) -= c;
            }
        }
        let mut out: Vec<(i64, Lit)> = Vec::new();
        for (v, c) in per_var {
            if c > 0 {
                let c64 = i64::try_from(c).map_err(|_| ObjectiveError::Overflow)?;
                out.push((c64, Var::new(v).positive()));
            } else if c < 0 {
                // -|c| * x == -|c| + |c| * ~x
                off += c;
                let c64 = i64::try_from(-c).map_err(|_| ObjectiveError::Overflow)?;
                out.push((c64, Var::new(v).negative()));
            }
        }
        let off = i64::try_from(off).map_err(|_| ObjectiveError::Overflow)?;
        Ok(Objective { terms: out, offset: off })
    }

    /// An objective with no terms (constant zero): pure satisfaction.
    pub fn empty() -> Objective {
        Objective { terms: Vec::new(), offset: 0 }
    }

    /// The normalized `(cost, literal)` terms, each cost `>= 1`, sorted by
    /// variable.
    #[inline]
    pub fn terms(&self) -> &[(i64, Lit)] {
        &self.terms
    }

    /// The constant offset added to the weighted literal sum.
    #[inline]
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// Returns `true` if the objective has no cost terms.
    #[inline]
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of cost terms.
    #[inline]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if there are no cost terms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Cost incurred when `lit` is true: the term cost if `lit` matches a
    /// term literal exactly, otherwise 0.
    pub fn cost_of_lit(&self, lit: Lit) -> i64 {
        match self.terms.binary_search_by_key(&lit.var(), |(_, l)| l.var()) {
            Ok(i) if self.terms[i].1 == lit => self.terms[i].0,
            _ => 0,
        }
    }

    /// Cost term on this variable as `(cost, literal)`, if any.
    pub fn term_of_var(&self, var: Var) -> Option<(i64, Lit)> {
        match self.terms.binary_search_by_key(&var, |(_, l)| l.var()) {
            Ok(i) => Some(self.terms[i]),
            Err(_) => None,
        }
    }

    /// Evaluates the objective on a complete assignment given as booleans
    /// indexed by variable.
    pub fn evaluate(&self, values: &[bool]) -> i64 {
        self.offset
            + self
                .terms
                .iter()
                .filter(|(_, l)| {
                    let v = values[l.var().index()];
                    if l.is_positive() {
                        v
                    } else {
                        !v
                    }
                })
                .map(|(c, _)| c)
                .sum::<i64>()
    }

    /// The paper's `P.path`: cost of the literals assigned true so far
    /// (offset included).
    pub fn path_cost(&self, assignment: &Assignment) -> i64 {
        self.offset
            + self
                .terms
                .iter()
                .filter(|(_, l)| assignment.lit_value(*l) == Value::True)
                .map(|(c, _)| c)
                .sum::<i64>()
    }

    /// Sum of all term costs plus offset: the worst possible objective
    /// value (every costed literal true).
    pub fn max_value(&self) -> i64 {
        self.offset + self.terms.iter().map(|(c, _)| c).sum::<i64>()
    }

    /// The best possible objective value ignoring constraints (all costed
    /// literals false): simply the offset.
    pub fn min_value(&self) -> i64 {
        self.offset
    }
}

impl Default for Objective {
    fn default() -> Objective {
        Objective::empty()
    }
}

impl fmt::Debug for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "min: ")?;
        for (i, (c, l)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *c != 1 {
                write!(f, "{}*", c)?;
            }
            write!(f, "{:?}", l)?;
        }
        if self.terms.is_empty() {
            write!(f, "0")?;
        }
        if self.offset != 0 {
            write!(f, " + {}", self.offset)?;
        }
        Ok(())
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::new(i, pos)
    }

    #[test]
    fn normalizes_negative_costs() {
        // min -2*x1  ==  min -2 + 2*~x1
        let obj = Objective::new(vec![(-2, lit(0, true))]).unwrap();
        assert_eq!(obj.offset(), -2);
        assert_eq!(obj.terms(), &[(2, lit(0, false))]);
        assert_eq!(obj.evaluate(&[true]), -2);
        assert_eq!(obj.evaluate(&[false]), 0);
    }

    #[test]
    fn merges_duplicate_variables() {
        // 3*x1 + 2*~x1 == 2 + 1*x1
        let obj = Objective::new(vec![(3, lit(0, true)), (2, lit(0, false))]).unwrap();
        assert_eq!(obj.offset(), 2);
        assert_eq!(obj.terms(), &[(1, lit(0, true))]);
        assert_eq!(obj.evaluate(&[true]), 3);
        assert_eq!(obj.evaluate(&[false]), 2);
    }

    #[test]
    fn zero_net_cost_dropped() {
        let obj = Objective::new(vec![(2, lit(0, true)), (2, lit(0, false))]).unwrap();
        assert!(obj.is_constant());
        assert_eq!(obj.offset(), 2);
    }

    #[test]
    fn path_cost_counts_true_literals_only() {
        let obj = Objective::new(vec![(2, lit(0, true)), (5, lit(1, false))]).unwrap();
        let mut a = Assignment::new(2);
        assert_eq!(obj.path_cost(&a), 0);
        a.assign(Var::new(0), true);
        assert_eq!(obj.path_cost(&a), 2);
        a.assign(Var::new(1), false); // makes ~x2 true
        assert_eq!(obj.path_cost(&a), 7);
    }

    #[test]
    fn cost_of_lit_polarity() {
        let obj = Objective::new(vec![(4, lit(1, false))]).unwrap();
        assert_eq!(obj.cost_of_lit(lit(1, false)), 4);
        assert_eq!(obj.cost_of_lit(lit(1, true)), 0);
        assert_eq!(obj.cost_of_lit(lit(0, true)), 0);
    }

    #[test]
    fn extreme_values() {
        let obj = Objective::with_offset(vec![(2, lit(0, true)), (3, lit(1, true))], 1).unwrap();
        assert_eq!(obj.max_value(), 6);
        assert_eq!(obj.min_value(), 1);
    }

    #[test]
    fn empty_objective() {
        let obj = Objective::empty();
        assert!(obj.is_constant());
        assert_eq!(obj.evaluate(&[]), 0);
        assert_eq!(Objective::default(), obj);
    }
}
