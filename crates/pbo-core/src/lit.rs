//! Boolean variables and literals.
//!
//! A [`Var`] is an index into the problem's variable space; a [`Lit`] is a
//! variable together with a polarity. Literals are packed into a single
//! `u32` (`var << 1 | sign`) so they can index dense per-literal arrays —
//! the representation used throughout the propagation engine.

use std::fmt;
use std::ops::Not;

/// A Boolean decision variable, identified by a dense index starting at 0.
///
/// # Examples
///
/// ```
/// use pbo_core::Var;
///
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX / 2` (literal packing would
    /// overflow).
    #[inline]
    pub fn new(index: usize) -> Var {
        assert!(index <= (u32::MAX / 2) as usize, "variable index too large");
        Var(index as u32)
    }

    /// Returns the dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// Returns the literal of this variable with the given polarity
    /// (`true` means the positive literal).
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a [`Var`] with a polarity, packed as `var << 1 | sign`.
///
/// The packed form means `lit.code()` can index per-literal arrays of size
/// `2 * num_vars`, and `!lit` is a single XOR.
///
/// # Examples
///
/// ```
/// use pbo_core::{Lit, Var};
///
/// let x = Var::new(0);
/// let l = x.positive();
/// assert_eq!(!l, x.negative());
/// assert_eq!(l.var(), x);
/// assert!(l.is_positive());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable index and polarity
    /// (`true` means the positive literal).
    #[inline]
    pub fn new(var_index: usize, positive: bool) -> Lit {
        Var::new(var_index).lit(positive)
    }

    /// Reconstructs a literal from its packed code (`var << 1 | sign`).
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        assert!(code <= u32::MAX as usize, "literal code too large");
        Lit(code as u32)
    }

    /// Returns the packed code of this literal, suitable for dense
    /// per-literal indexing.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Returns the underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is the positive literal of its variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns `true` if this is the negative literal of its variable.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Parses a literal from DIMACS-style integer encoding: `3` is the
    /// positive literal of the third variable, `-3` its negation.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`.
    #[inline]
    pub fn from_dimacs(value: i64) -> Lit {
        assert!(value != 0, "DIMACS literal cannot be 0");
        let var = Var::new(value.unsigned_abs() as usize - 1);
        var.lit(value > 0)
    }

    /// Returns the DIMACS-style integer encoding of this literal.
    #[inline]
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().index() + 1) as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<Var> for Lit {
    #[inline]
    fn from(var: Var) -> Lit {
        var.positive()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "~")?;
        }
        write!(f, "{:?}", self.var())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip() {
        for i in [0usize, 1, 5, 1000] {
            assert_eq!(Var::new(i).index(), i);
        }
    }

    #[test]
    fn literal_packing() {
        let v = Var::new(7);
        assert_eq!(v.positive().code(), 14);
        assert_eq!(v.negative().code(), 15);
        assert_eq!(Lit::from_code(14), v.positive());
        assert_eq!(Lit::from_code(15), v.negative());
    }

    #[test]
    fn negation_is_involution() {
        let l = Lit::new(4, true);
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn polarity() {
        let v = Var::new(2);
        assert!(v.positive().is_positive());
        assert!(!v.positive().is_negative());
        assert!(v.negative().is_negative());
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    fn dimacs_roundtrip() {
        for d in [1i64, -1, 5, -17] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    #[should_panic]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn display_forms() {
        let v = Var::new(0);
        assert_eq!(format!("{}", v.positive()), "x1");
        assert_eq!(format!("{}", v.negative()), "~x1");
    }

    #[test]
    fn ordering_groups_by_var() {
        let a = Var::new(1).positive();
        let b = Var::new(1).negative();
        let c = Var::new(2).positive();
        assert!(a < b && b < c);
    }
}
