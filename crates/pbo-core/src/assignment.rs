//! Partial truth assignments over a dense variable space.

use std::fmt;

use crate::lit::{Lit, Var};

/// Truth value of a variable or literal under a partial assignment.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// Assigned false.
    False,
    /// Assigned true.
    True,
    /// Not assigned.
    Unassigned,
}

impl Value {
    /// Logical negation; `Unassigned` is a fixed point.
    #[inline]
    pub fn negate(self) -> Value {
        match self {
            Value::False => Value::True,
            Value::True => Value::False,
            Value::Unassigned => Value::Unassigned,
        }
    }

    /// Converts from `bool`.
    #[inline]
    pub fn from_bool(b: bool) -> Value {
        if b {
            Value::True
        } else {
            Value::False
        }
    }

    /// Returns `Some(bool)` for assigned values, `None` otherwise.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Value::False => Some(false),
            Value::True => Some(true),
            Value::Unassigned => None,
        }
    }
}

/// A partial assignment: one [`Value`] per variable.
///
/// This is the assignment representation shared between the search engine,
/// the lower-bounding procedures and the evaluation helpers. It carries no
/// trail or decision-level information — that belongs to the engine.
///
/// # Examples
///
/// ```
/// use pbo_core::{Assignment, Var, Value};
///
/// let mut a = Assignment::new(2);
/// a.assign(Var::new(0), true);
/// assert_eq!(a.value(Var::new(0)), Value::True);
/// assert_eq!(a.value(Var::new(1)), Value::Unassigned);
/// assert_eq!(a.num_assigned(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<Value>,
    num_assigned: usize,
}

impl Assignment {
    /// Creates an all-unassigned assignment over `num_vars` variables.
    pub fn new(num_vars: usize) -> Assignment {
        Assignment { values: vec![Value::Unassigned; num_vars], num_assigned: 0 }
    }

    /// Creates a complete assignment from a boolean slice.
    pub fn from_bools(values: &[bool]) -> Assignment {
        Assignment {
            values: values.iter().map(|&b| Value::from_bool(b)).collect(),
            num_assigned: values.len(),
        }
    }

    /// Number of variables in the assignment's space.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of currently assigned variables.
    #[inline]
    pub fn num_assigned(&self) -> usize {
        self.num_assigned
    }

    /// Returns `true` if every variable is assigned.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.num_assigned == self.values.len()
    }

    /// Value of a variable.
    #[inline]
    pub fn value(&self, var: Var) -> Value {
        self.values[var.index()]
    }

    /// Value of a literal (the variable's value, negated for negative
    /// literals).
    #[inline]
    pub fn lit_value(&self, lit: Lit) -> Value {
        let v = self.values[lit.var().index()];
        if lit.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// Returns `true` if the literal is assigned true.
    #[inline]
    pub fn is_true(&self, lit: Lit) -> bool {
        self.lit_value(lit) == Value::True
    }

    /// Returns `true` if the literal is assigned false.
    #[inline]
    pub fn is_false(&self, lit: Lit) -> bool {
        self.lit_value(lit) == Value::False
    }

    /// Returns `true` if the literal's variable is unassigned.
    #[inline]
    pub fn is_unassigned(&self, lit: Lit) -> bool {
        self.lit_value(lit) == Value::Unassigned
    }

    /// Assigns `var := value`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the variable is already assigned.
    #[inline]
    pub fn assign(&mut self, var: Var, value: bool) {
        debug_assert_eq!(self.values[var.index()], Value::Unassigned);
        self.values[var.index()] = Value::from_bool(value);
        self.num_assigned += 1;
    }

    /// Makes the literal true (assigns its variable accordingly).
    #[inline]
    pub fn assign_lit(&mut self, lit: Lit) {
        self.assign(lit.var(), lit.is_positive());
    }

    /// Removes the assignment of `var`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the variable is not assigned.
    #[inline]
    pub fn unassign(&mut self, var: Var) {
        debug_assert_ne!(self.values[var.index()], Value::Unassigned);
        self.values[var.index()] = Value::Unassigned;
        self.num_assigned -= 1;
    }

    /// Extracts a complete assignment as a boolean vector, mapping
    /// unassigned variables to `false`.
    pub fn to_bools_lossy(&self) -> Vec<bool> {
        self.values.iter().map(|v| matches!(v, Value::True)).collect()
    }

    /// Iterates over `(Var, Value)` pairs for assigned variables.
    pub fn iter_assigned(&self) -> impl Iterator<Item = (Var, bool)> + '_ {
        self.values.iter().enumerate().filter_map(|(i, v)| v.to_bool().map(|b| (Var::new(i), b)))
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Assignment{{")?;
        let mut first = true;
        for (var, val) in self.iter_assigned() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}={}", var, if val { 1 } else { 0 })?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_unassign_cycle() {
        let mut a = Assignment::new(3);
        assert!(!a.is_complete());
        a.assign(Var::new(0), true);
        a.assign(Var::new(1), false);
        a.assign(Var::new(2), true);
        assert!(a.is_complete());
        assert_eq!(a.num_assigned(), 3);
        a.unassign(Var::new(1));
        assert_eq!(a.num_assigned(), 2);
        assert_eq!(a.value(Var::new(1)), Value::Unassigned);
    }

    #[test]
    fn literal_values_respect_polarity() {
        let mut a = Assignment::new(1);
        a.assign(Var::new(0), true);
        assert_eq!(a.lit_value(Lit::new(0, true)), Value::True);
        assert_eq!(a.lit_value(Lit::new(0, false)), Value::False);
        assert!(a.is_true(Lit::new(0, true)));
        assert!(a.is_false(Lit::new(0, false)));
    }

    #[test]
    fn assign_lit_makes_lit_true() {
        let mut a = Assignment::new(2);
        a.assign_lit(Lit::new(1, false));
        assert!(a.is_true(Lit::new(1, false)));
        assert_eq!(a.value(Var::new(1)), Value::False);
    }

    #[test]
    fn from_bools_roundtrip() {
        let a = Assignment::from_bools(&[true, false, true]);
        assert!(a.is_complete());
        assert_eq!(a.to_bools_lossy(), vec![true, false, true]);
    }

    #[test]
    fn value_negate() {
        assert_eq!(Value::True.negate(), Value::False);
        assert_eq!(Value::False.negate(), Value::True);
        assert_eq!(Value::Unassigned.negate(), Value::Unassigned);
    }

    #[test]
    fn iter_assigned_lists_only_assigned() {
        let mut a = Assignment::new(3);
        a.assign(Var::new(2), false);
        let pairs: Vec<_> = a.iter_assigned().collect();
        assert_eq!(pairs, vec![(Var::new(2), false)]);
    }

    #[test]
    fn debug_is_nonempty() {
        let a = Assignment::new(1);
        assert!(!format!("{:?}", a).is_empty());
    }
}
