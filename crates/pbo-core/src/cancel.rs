//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between a solve
//! and its caller (and between the solve's own threads). It latches
//! three independent stop conditions into one flag:
//!
//! * an **external cancel** ([`CancelToken::cancel`]) — the service
//!   caller pulling the plug;
//! * a **deadline** ([`CancelToken::set_deadline`]) — checked lazily by
//!   [`CancelToken::is_cancelled`], so inner loops that poll the token
//!   enforce wall-clock limits *inside* a node, not just between nodes;
//! * a **soft memory ceiling** ([`CancelToken::set_mem_limit`]) over
//!   bytes explicitly charged with [`CancelToken::charge_mem`] (shared
//!   clause lanes, dynamic bound rows — the solve's unbounded growth
//!   paths).
//!
//! Once any condition trips, the flag stays set: every poll site sees
//! the same answer and the solve tears down in bounded time with its
//! best verified incumbent intact.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared cancellation handle (see the [module docs](self)).
///
/// Clones share one underlying state. The raw latch is exposed as an
/// `Arc<AtomicBool>` ([`CancelToken::flag`]) so dependency-free layers
/// (the LP simplex) can poll it without knowing this type.
///
/// # Examples
///
/// ```
/// use pbo_core::CancelToken;
///
/// let token = CancelToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_cancelled());
/// token.cancel();
/// assert!(shared.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    /// The latch itself, handed out raw to dependency-free pollers.
    flag: Arc<AtomicBool>,
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    deadline: Mutex<Option<Instant>>,
    /// Soft ceiling in bytes; 0 means no ceiling.
    mem_limit: AtomicUsize,
    mem_used: AtomicUsize,
}

impl CancelToken {
    /// A fresh, untripped token with no deadline and no memory ceiling.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token immediately (idempotent).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Arms (or replaces) the wall-clock deadline.
    pub fn set_deadline(&self, deadline: Instant) {
        *lock(&self.inner.deadline) = Some(deadline);
    }

    /// Convenience: a deadline `limit` from now.
    pub fn deadline_in(&self, limit: Duration) {
        self.set_deadline(Instant::now() + limit);
    }

    /// The armed deadline, if any — pollers that keep their own clock
    /// (the LP simplex) read it once per solve instead of per check.
    pub fn deadline(&self) -> Option<Instant> {
        *lock(&self.inner.deadline)
    }

    /// Arms the soft memory ceiling (bytes); 0 removes it.
    pub fn set_mem_limit(&self, bytes: usize) {
        self.inner.mem_limit.store(bytes, Ordering::Relaxed);
    }

    /// Records `bytes` of tracked allocation (shared clause lanes,
    /// dynamic rows). Trips the token when the ceiling is exceeded.
    pub fn charge_mem(&self, bytes: usize) {
        let used = self.inner.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let limit = self.inner.mem_limit.load(Ordering::Relaxed);
        if limit != 0 && used > limit {
            self.cancel();
        }
    }

    /// Returns `bytes` of tracked allocation (saturating at zero).
    pub fn release_mem(&self, bytes: usize) {
        let _ = self
            .inner
            .mem_used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |u| Some(u.saturating_sub(bytes)));
    }

    /// Bytes currently charged against the ceiling.
    pub fn mem_used(&self) -> usize {
        self.inner.mem_used.load(Ordering::Relaxed)
    }

    /// Whether the token has tripped. Latches an expired deadline as a
    /// side effect, so one poller's observation is every poller's.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        if lock(&self.inner.deadline).is_some_and(|d| Instant::now() >= d) {
            self.cancel();
            return true;
        }
        false
    }

    /// The raw latch, for dependency-free layers that poll an
    /// `AtomicBool` instead of this type. Deadline and memory trips
    /// surface here too (once some poller latched them).
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// Poison-tolerant lock: the guarded value is a plain `Option<Instant>`
/// that is never left half-written, so recovering it after a panicking
/// thread held the lock is sound.
fn lock(m: &Mutex<Option<Instant>>) -> std::sync::MutexGuard<'_, Option<Instant>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_latches_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        assert!(c.flag().load(Ordering::Acquire));
    }

    #[test]
    fn expired_deadline_trips_and_latches() {
        let t = CancelToken::new();
        t.set_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        // Latched into the raw flag for dependency-free pollers.
        assert!(t.flag().load(Ordering::Acquire));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::new();
        t.deadline_in(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_some());
    }

    #[test]
    fn mem_ceiling_trips_only_past_limit() {
        let t = CancelToken::new();
        t.set_mem_limit(1000);
        t.charge_mem(600);
        assert!(!t.is_cancelled());
        t.charge_mem(300);
        assert!(!t.is_cancelled());
        assert_eq!(t.mem_used(), 900);
        t.release_mem(200);
        t.charge_mem(250);
        assert!(!t.is_cancelled());
        t.charge_mem(100);
        assert!(t.is_cancelled());
    }
}
