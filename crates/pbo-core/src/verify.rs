//! Solution verification: the one checker every solver trusts.
//!
//! Every component that *produces* candidate solutions — the CDCL-based
//! branch-and-bound, the stochastic local search, the MILP baseline, the
//! portfolio glue passing incumbents between threads — must agree on what
//! "feasible with cost c" means. [`verify_solution`] is that single
//! arbiter: it checks a complete assignment against every constraint and
//! returns the exact objective value, or a structured error naming the
//! first violated constraint. Incumbents cross component boundaries only
//! after passing through it.

use std::fmt;

use crate::instance::Instance;

/// Why a candidate solution was rejected by [`verify_solution`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// The assignment does not cover the instance's variable space.
    WrongLength {
        /// Number of values supplied.
        got: usize,
        /// Number of variables in the instance.
        expected: usize,
    },
    /// A constraint is violated by the assignment.
    Violated {
        /// Index of the first violated constraint.
        index: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::WrongLength { got, expected } => {
                write!(f, "assignment has {got} values but the instance has {expected} variables")
            }
            VerifyError::Violated { index } => {
                write!(f, "constraint #{index} is violated by the assignment")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks a complete assignment against every constraint of `instance`
/// and returns its objective value (0 for pure satisfaction instances).
///
/// # Errors
///
/// Returns [`VerifyError::WrongLength`] if `values` does not match the
/// instance's variable count, or [`VerifyError::Violated`] with the index
/// of the first violated constraint.
///
/// # Examples
///
/// ```
/// use pbo_core::{verify_solution, InstanceBuilder, VerifyError};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(2);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// b.minimize([(2, v[0].positive()), (3, v[1].positive())]);
/// let inst = b.build()?;
///
/// assert_eq!(verify_solution(&inst, &[true, false]), Ok(2));
/// assert_eq!(verify_solution(&inst, &[false, false]), Err(VerifyError::Violated { index: 0 }));
/// assert!(matches!(verify_solution(&inst, &[true]), Err(VerifyError::WrongLength { .. })));
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
pub fn verify_solution(instance: &Instance, values: &[bool]) -> Result<i64, VerifyError> {
    if values.len() != instance.num_vars() {
        return Err(VerifyError::WrongLength { got: values.len(), expected: instance.num_vars() });
    }
    for (index, c) in instance.constraints().iter().enumerate() {
        if !c.is_satisfied_by(values) {
            return Err(VerifyError::Violated { index });
        }
    }
    Ok(instance.cost_of(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    #[test]
    fn accepts_feasible_and_reports_cost() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_at_least(2, v.iter().map(|x| x.positive()));
        b.minimize([(1, v[0].positive()), (4, v[1].negative()), (2, v[2].positive())]);
        let inst = b.build().unwrap();
        assert_eq!(verify_solution(&inst, &[true, true, false]), Ok(1));
        assert_eq!(verify_solution(&inst, &[true, false, true]), Ok(7));
    }

    #[test]
    fn rejects_violation_with_first_index() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive()]);
        b.add_clause([v[1].positive()]);
        let inst = b.build().unwrap();
        assert_eq!(
            verify_solution(&inst, &[false, false]),
            Err(VerifyError::Violated { index: 0 })
        );
        assert_eq!(verify_solution(&inst, &[true, false]), Err(VerifyError::Violated { index: 1 }));
    }

    #[test]
    fn rejects_wrong_length() {
        let mut b = InstanceBuilder::new();
        let _ = b.new_vars(3);
        let inst = b.build().unwrap();
        assert_eq!(
            verify_solution(&inst, &[true]),
            Err(VerifyError::WrongLength { got: 1, expected: 3 })
        );
    }

    #[test]
    fn satisfaction_instance_costs_zero() {
        let mut b = InstanceBuilder::new();
        let x = b.new_var();
        b.add_clause([x.positive()]);
        let inst = b.build().unwrap();
        assert_eq!(verify_solution(&inst, &[true]), Ok(0));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = VerifyError::Violated { index: 7 };
        assert!(format!("{e}").contains('7'));
        let e = VerifyError::WrongLength { got: 1, expected: 2 };
        assert!(format!("{e}").contains('2'));
    }
}
