//! Exhaustive reference solver for small instances.
//!
//! Enumerates all `2^n` assignments; used by tests and property checks to
//! cross-validate every real solver and every lower-bound procedure in the
//! workspace. Practical up to roughly 25 variables.

use crate::instance::Instance;

/// Result of exhaustive enumeration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BruteForceResult {
    /// No assignment satisfies the constraints.
    Infeasible,
    /// The minimum objective value and one witnessing assignment.
    Optimal {
        /// Minimum objective value over all feasible assignments.
        cost: i64,
        /// A feasible assignment attaining it.
        witness: Vec<bool>,
        /// Number of feasible assignments found.
        num_feasible: u64,
    },
}

impl BruteForceResult {
    /// The optimal cost, or `None` if infeasible.
    pub fn cost(&self) -> Option<i64> {
        match self {
            BruteForceResult::Infeasible => None,
            BruteForceResult::Optimal { cost, .. } => Some(*cost),
        }
    }
}

/// Exhaustively solves `instance` by enumerating all assignments.
///
/// # Panics
///
/// Panics if the instance has more than 30 variables (enumeration would be
/// intractable and the mask arithmetic would overflow practical budgets).
///
/// # Examples
///
/// ```
/// use pbo_core::{brute_force, InstanceBuilder};
///
/// let mut b = InstanceBuilder::new();
/// let x = b.new_var();
/// let y = b.new_var();
/// b.add_clause([x.positive(), y.positive()]);
/// b.minimize([(2, x.positive()), (3, y.positive())]);
/// let res = brute_force(&b.build()?);
/// assert_eq!(res.cost(), Some(2));
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
pub fn brute_force(instance: &Instance) -> BruteForceResult {
    let n = instance.num_vars();
    assert!(n <= 30, "brute force limited to 30 variables, got {n}");
    let mut best: Option<(i64, Vec<bool>)> = None;
    let mut num_feasible = 0u64;
    let mut values = vec![false; n];
    for mask in 0u64..(1u64 << n) {
        for (i, v) in values.iter_mut().enumerate() {
            *v = (mask >> i) & 1 == 1;
        }
        if instance.is_feasible(&values) {
            num_feasible += 1;
            let cost = instance.cost_of(&values);
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, values.clone()));
            }
        }
    }
    match best {
        None => BruteForceResult::Infeasible,
        Some((cost, witness)) => BruteForceResult::Optimal { cost, witness, num_feasible },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::normalize::RelOp;

    #[test]
    fn finds_optimum_of_covering() {
        // Cover {1,2,3} with sets {1,2} (cost 3), {2,3} (cost 3), {1,2,3} (cost 5).
        let mut b = InstanceBuilder::new();
        let s = b.new_vars(3);
        b.add_clause([s[0].positive(), s[2].positive()]); // element 1
        b.add_clause([s[0].positive(), s[1].positive(), s[2].positive()]); // element 2
        b.add_clause([s[1].positive(), s[2].positive()]); // element 3
        b.minimize([(3, s[0].positive()), (3, s[1].positive()), (5, s[2].positive())]);
        let res = brute_force(&b.build().unwrap());
        assert_eq!(res.cost(), Some(5));
    }

    #[test]
    fn detects_infeasible() {
        let mut b = InstanceBuilder::new();
        let x = b.new_var();
        b.add_clause([x.positive()]);
        b.add_clause([x.negative()]);
        let res = brute_force(&b.build().unwrap());
        assert_eq!(res, BruteForceResult::Infeasible);
        assert_eq!(res.cost(), None);
    }

    #[test]
    fn counts_feasible_assignments() {
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(2);
        b.add_clause([vars[0].positive(), vars[1].positive()]);
        match brute_force(&b.build().unwrap()) {
            BruteForceResult::Optimal { num_feasible, .. } => assert_eq!(num_feasible, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn witness_is_feasible_and_optimal() {
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(4);
        b.add_at_least(2, vars.iter().map(|v| v.positive()));
        b.add_linear(vec![(2, vars[0].positive()), (1, vars[1].positive())], RelOp::Le, 2);
        b.minimize(vars.iter().enumerate().map(|(i, v)| ((i + 1) as i64, v.positive())));
        let inst = b.build().unwrap();
        match brute_force(&inst) {
            BruteForceResult::Optimal { cost, witness, .. } => {
                assert!(inst.is_feasible(&witness));
                assert_eq!(inst.cost_of(&witness), cost);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_var_instance() {
        let b = InstanceBuilder::new();
        let res = brute_force(&b.build().unwrap());
        assert_eq!(res.cost(), Some(0));
    }
}
