//! Core types for linear pseudo-Boolean optimization (PBO).
//!
//! This crate is the foundation of the `pbo` workspace, a reproduction of
//! *Manquinho & Marques-Silva, "Effective Lower Bounding Techniques for
//! Pseudo-Boolean Optimization", DATE 2005*. It provides:
//!
//! * [`Var`] / [`Lit`] — packed variables and literals;
//! * [`PbConstraint`] — normalized `>=` constraints with positive
//!   coefficients (the paper's eq. 1 normal form), plus classification
//!   into clause / cardinality / general;
//! * [`Objective`] — normalized non-negative minimization objectives;
//! * [`Instance`] / [`InstanceBuilder`] — whole problems, built from
//!   arbitrary `<=`/`>=`/`=` constraints via [`normalize`];
//! * [`TermArena`] — the flat CSR/SoA mirror of an instance's rows
//!   (contiguous coefficient/literal arrays, per-row spans, literal →
//!   occurrence CSR) that the hot paths borrow instead of walking
//!   per-constraint `Vec`s;
//! * [`Assignment`] — partial assignments shared by the engine and the
//!   lower-bounding procedures;
//! * OPB parsing/serialization ([`parse_opb`], [`write_opb`]);
//! * [`brute_force`] — an exhaustive reference solver for cross-checking;
//! * [`verify_solution`] — the single feasibility/cost arbiter every
//!   solution producer (branch-and-bound, local search, portfolio glue)
//!   runs its candidates through;
//! * [`CancelToken`] — cooperative cancellation (external cancel,
//!   deadline, soft memory ceiling) shared by every layer of a solve.
//!
//! # Examples
//!
//! Build a weighted covering problem and solve it exhaustively:
//!
//! ```
//! use pbo_core::{brute_force, InstanceBuilder};
//!
//! let mut b = InstanceBuilder::new();
//! let x = b.new_vars(3);
//! b.add_clause([x[0].positive(), x[1].positive()]);
//! b.add_clause([x[1].positive(), x[2].positive()]);
//! b.minimize([(2, x[0].positive()), (3, x[1].positive()), (2, x[2].positive())]);
//! let instance = b.build()?;
//! assert_eq!(brute_force(&instance).cost(), Some(3)); // pick x2
//! # Ok::<(), pbo_core::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod assignment;
mod brute;
mod cancel;
mod constraint;
mod instance;
mod lit;
mod normalize;
mod objective;
mod opb;
mod verify;

pub use arena::{RowView, TermArena};
pub use assignment::{Assignment, Value};
pub use brute::{brute_force, BruteForceResult};
pub use cancel::CancelToken;
pub use constraint::{
    ConstraintClass, ConstraintError, ConstraintState, PbConstraint, PbTerm, MAX_COEFF_SUM,
};
pub use instance::{BuildError, Instance, InstanceBuilder};
pub use lit::{Lit, Var};
pub use normalize::{normalize, normalize_ge, NormalizeError, RawConstraint, RelOp};
pub use objective::{Objective, ObjectiveError};
pub use opb::{parse_opb, write_opb, ParseOpbError, MAX_OPB_VARS};
pub use verify::{verify_solution, VerifyError};
