//! Normalization of arbitrary linear 0-1 constraints into the paper's
//! normal form.
//!
//! Any constraint `sum c_i * l_i  OP  b` with `OP` in `{>=, <=, =}`,
//! arbitrary integer coefficients and possibly repeated variables can be
//! rewritten into one or two normalized [`PbConstraint`]s (all
//! coefficients and the right-hand side positive). The rewrite uses the
//! identity `c * ~x = c - c * x` and is exactly the transformation the
//! paper alludes to below eq. 1 ("every pseudo-boolean formulation can be
//! rewritten such that all coefficients and right-hand sides be
//! non-negative").

use std::collections::BTreeMap;
use std::fmt;

use crate::constraint::{ConstraintError, PbConstraint};
use crate::lit::{Lit, Var};

/// Relational operator of a raw linear constraint.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum RelOp {
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `=`
    Eq,
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelOp::Ge => write!(f, ">="),
            RelOp::Le => write!(f, "<="),
            RelOp::Eq => write!(f, "="),
        }
    }
}

/// A raw (unnormalized) linear constraint as collected by builders and
/// parsers: arbitrary-sign `(coeff, literal)` terms, a relational
/// operator, and a right-hand side.
pub type RawConstraint = (Vec<(i64, Lit)>, RelOp, i64);

/// Error returned when a constraint cannot be normalized.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NormalizeError {
    /// Intermediate arithmetic exceeded `i64`/`i128` safe range.
    Overflow,
    /// The normalized constraint violated an invariant (should not happen;
    /// kept for diagnostics).
    Invalid(ConstraintError),
}

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalizeError::Overflow => write!(f, "coefficient overflow during normalization"),
            NormalizeError::Invalid(e) => {
                write!(f, "normalization produced invalid constraint: {e}")
            }
        }
    }
}

impl std::error::Error for NormalizeError {}

impl From<ConstraintError> for NormalizeError {
    fn from(e: ConstraintError) -> NormalizeError {
        NormalizeError::Invalid(e)
    }
}

/// Normalizes one raw `>=` constraint given as `(coeff, lit)` pairs.
///
/// Returns `Ok(None)` when the constraint is trivially true (normalized
/// right-hand side `<= 0`). An *unsatisfiable* constraint (e.g. `x1 >= 2`)
/// is returned as a normal constraint whose coefficient sum is below its
/// right-hand side; [`PbConstraint::is_unsatisfiable`] detects it.
///
/// # Errors
///
/// Returns [`NormalizeError::Overflow`] on arithmetic overflow.
pub fn normalize_ge(
    terms: &[(i64, Lit)],
    rhs: i64,
) -> Result<Option<PbConstraint>, NormalizeError> {
    // Net coefficient per variable, expressed on the positive literal.
    let mut net: BTreeMap<usize, i128> = BTreeMap::new();
    let mut b = rhs as i128;
    for &(c, l) in terms {
        let c = c as i128;
        if l.is_positive() {
            *net.entry(l.var().index()).or_insert(0) += c;
        } else {
            // c * ~x  ==  c - c*x : constant c moves to the rhs.
            b -= c;
            *net.entry(l.var().index()).or_insert(0) -= c;
        }
    }
    let mut out: Vec<(i64, Lit)> = Vec::new();
    for (v, a) in net {
        if a > 0 {
            let a64 = i64::try_from(a).map_err(|_| NormalizeError::Overflow)?;
            out.push((a64, Var::new(v).positive()));
        } else if a < 0 {
            // -|a|*x  ==  |a|*~x - |a| : the constant -|a| moves across the
            // inequality, *raising* the right-hand side by |a|.
            b -= a;
            let a64 = i64::try_from(-a).map_err(|_| NormalizeError::Overflow)?;
            out.push((a64, Var::new(v).negative()));
        }
    }
    let b = i64::try_from(b).map_err(|_| NormalizeError::Overflow)?;
    if b <= 0 {
        return Ok(None);
    }
    Ok(Some(PbConstraint::try_new(out, b)?))
}

/// Normalizes a raw constraint with any relational operator into zero, one
/// or two normalized `>=` constraints (an equality yields up to two).
///
/// # Errors
///
/// Returns [`NormalizeError::Overflow`] on arithmetic overflow.
///
/// # Examples
///
/// ```
/// use pbo_core::{normalize, Lit, RelOp};
///
/// // x1 + x2 <= 1  (at most one)  ==>  ~x1 + ~x2 >= 1
/// let cs = normalize(&[(1, Lit::new(0, true)), (1, Lit::new(1, true))], RelOp::Le, 1)?;
/// assert_eq!(cs.len(), 1);
/// assert_eq!(cs[0].rhs(), 1);
/// assert!(cs[0].terms().iter().all(|t| t.lit.is_negative()));
/// # Ok::<(), pbo_core::NormalizeError>(())
/// ```
pub fn normalize(
    terms: &[(i64, Lit)],
    op: RelOp,
    rhs: i64,
) -> Result<Vec<PbConstraint>, NormalizeError> {
    let mut out = Vec::new();
    match op {
        RelOp::Ge => {
            if let Some(c) = normalize_ge(terms, rhs)? {
                out.push(c);
            }
        }
        RelOp::Le => {
            // sum c l <= b  <=>  sum (-c) l >= -b
            let negated: Vec<(i64, Lit)> = terms
                .iter()
                .map(|&(c, l)| c.checked_neg().map(|n| (n, l)).ok_or(NormalizeError::Overflow))
                .collect::<Result<_, _>>()?;
            let nrhs = rhs.checked_neg().ok_or(NormalizeError::Overflow)?;
            if let Some(c) = normalize_ge(&negated, nrhs)? {
                out.push(c);
            }
        }
        RelOp::Eq => {
            out.extend(normalize(terms, RelOp::Ge, rhs)?);
            out.extend(normalize(terms, RelOp::Le, rhs)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::new(i, pos)
    }

    #[test]
    fn ge_passthrough() {
        let cs = normalize(&[(2, lit(0, true)), (1, lit(1, true))], RelOp::Ge, 2).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].rhs(), 2);
        assert_eq!(cs[0].terms().len(), 2);
    }

    #[test]
    fn negative_coefficient_flips_literal() {
        // -2*x1 >= -1  <=>  2*~x1 >= 1  <=> saturated  1*~x1 >= 1
        let cs = normalize(&[(-2, lit(0, true))], RelOp::Ge, -1).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].terms()[0].lit, lit(0, false));
        assert_eq!(cs[0].rhs(), 1);
    }

    #[test]
    fn le_becomes_ge_on_negations() {
        // x1 + x2 <= 1  =>  ~x1 + ~x2 >= 1
        let cs = normalize(&[(1, lit(0, true)), (1, lit(1, true))], RelOp::Le, 1).unwrap();
        assert_eq!(cs.len(), 1);
        let c = &cs[0];
        assert_eq!(c.rhs(), 1);
        assert!(c.terms().iter().all(|t| t.lit.is_negative()));
    }

    #[test]
    fn eq_gives_two_constraints() {
        // x1 + x2 = 1
        let cs = normalize(&[(1, lit(0, true)), (1, lit(1, true))], RelOp::Eq, 1).unwrap();
        assert_eq!(cs.len(), 2);
        // Both x1=1,x2=0 and x1=0,x2=1 satisfy; x1=x2=1 and x1=x2=0 do not.
        for (vals, expect) in [
            ([true, false], true),
            ([false, true], true),
            ([true, true], false),
            ([false, false], false),
        ] {
            assert_eq!(cs.iter().all(|c| c.is_satisfied_by(&vals)), expect, "{vals:?}");
        }
    }

    #[test]
    fn duplicate_literals_merge() {
        // x1 + x1 >= 2  =>  2*x1 >= 2  => saturation leaves 2*x1 >= 2 (clause)
        let cs = normalize(&[(1, lit(0, true)), (1, lit(0, true))], RelOp::Ge, 2).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].terms().len(), 1);
        assert_eq!(cs[0].terms()[0].coeff, 2);
    }

    #[test]
    fn opposing_literals_cancel() {
        // 3*x1 + 2*~x1 >= 3  =>  2 + 1*x1 >= 3  =>  x1 >= 1
        let cs = normalize(&[(3, lit(0, true)), (2, lit(0, false))], RelOp::Ge, 3).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].terms(), &[crate::PbTerm::new(1, lit(0, true))]);
        assert_eq!(cs[0].rhs(), 1);
    }

    #[test]
    fn trivially_true_dropped() {
        // x1 >= 0 is trivial
        let cs = normalize(&[(1, lit(0, true))], RelOp::Ge, 0).unwrap();
        assert!(cs.is_empty());
        // x1 >= -5 too
        let cs = normalize(&[(1, lit(0, true))], RelOp::Ge, -5).unwrap();
        assert!(cs.is_empty());
    }

    #[test]
    fn unsatisfiable_is_kept() {
        // x1 >= 2 cannot be satisfied
        let cs = normalize(&[(1, lit(0, true))], RelOp::Ge, 2).unwrap();
        assert_eq!(cs.len(), 1);
        assert!(cs[0].is_unsatisfiable());
    }

    #[test]
    fn normalization_preserves_solutions_exhaustive() {
        // Check equivalence on every +-coefficient mix over 3 variables for
        // a fixed set of raw constraints.
        let raws: Vec<RawConstraint> = vec![
            (vec![(2, lit(0, true)), (-3, lit(1, false)), (1, lit(2, true))], RelOp::Ge, -1),
            (vec![(-1, lit(0, true)), (-1, lit(1, true)), (-1, lit(2, true))], RelOp::Le, -2),
            (vec![(2, lit(0, false)), (2, lit(1, true))], RelOp::Eq, 2),
            (vec![(5, lit(0, true)), (1, lit(0, false)), (2, lit(2, true))], RelOp::Ge, 4),
        ];
        for (terms, op, rhs) in raws {
            let cs = normalize(&terms, op, rhs).unwrap();
            for m in 0u32..8 {
                let vals = [(m & 1) != 0, (m & 2) != 0, (m & 4) != 0];
                let lhs: i64 = terms
                    .iter()
                    .map(|&(c, l)| {
                        let v = vals[l.var().index()];
                        let t = if l.is_positive() { v } else { !v };
                        if t {
                            c
                        } else {
                            0
                        }
                    })
                    .sum();
                let raw_ok = match op {
                    RelOp::Ge => lhs >= rhs,
                    RelOp::Le => lhs <= rhs,
                    RelOp::Eq => lhs == rhs,
                };
                let norm_ok = cs.iter().all(|c| c.is_satisfied_by(&vals));
                assert_eq!(raw_ok, norm_ok, "terms under {vals:?} ({op:?} {rhs})");
            }
        }
    }
}
