//! Malformed-OPB robustness sweep (PR 9).
//!
//! A seeded mutation generator corrupts well-formed OPB documents —
//! truncation at arbitrary byte offsets, junk-byte splices, token
//! duplication/deletion, and coefficient/index inflation up to and past
//! `i64`/allocation limits — and asserts the invariant a service front
//! end depends on: [`parse_opb`] returns `Ok` or `Err`, it never
//! panics, and it never commits to absurd allocations (a corrupt
//! variable index is rejected at [`MAX_OPB_VARS`], not malloc'd).

use std::panic::{catch_unwind, AssertUnwindSafe};

use pbo_core::{parse_opb, write_opb, InstanceBuilder, MAX_OPB_VARS};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A small well-formed seed document, randomized per round.
fn seed_document(rng: &mut ChaCha8Rng) -> String {
    let n = rng.gen_range(2..8usize);
    let mut b = InstanceBuilder::new();
    let vars = b.new_vars(n);
    for _ in 0..rng.gen_range(1..6usize) {
        let k = rng.gen_range(1..=n);
        b.add_at_least(
            rng.gen_range(1..3i64),
            (0..k).map(|i| if rng.gen_bool(0.3) { vars[i].negative() } else { vars[i].positive() }),
        );
    }
    if rng.gen_bool(0.7) {
        b.minimize(vars.iter().map(|v| (rng.gen_range(1..9i64), v.positive())));
    }
    write_opb(&b.build().expect("seed instance is well-formed"))
}

/// One random corruption applied to `text`.
fn mutate(rng: &mut ChaCha8Rng, text: &str) -> String {
    let junk: &[&str] = &[
        ";",
        ";;",
        "x0",
        "~",
        "~~x1",
        "x",
        ">=",
        "<=",
        "=",
        "min:",
        "min",
        "*",
        "+",
        "-",
        "+9223372036854775807",
        "-9223372036854775808",
        "99999999999999999999",
        "x99999999999999999999",
        "x18446744073709551615",
        "x10000001",
        "+9223372036854775807 x1 >= -9223372036854775808",
        "\u{0}",
        "\u{fffd}",
        "NaN",
        "inf",
        "x1x2",
        "+1x1",
        "1e9",
    ];
    match rng.gen_range(0..6u32) {
        // Truncate at an arbitrary char boundary.
        0 => {
            let cut = rng.gen_range(0..=text.chars().count());
            text.chars().take(cut).collect()
        }
        // Splice junk tokens at a random position.
        1 => {
            let pos = rng.gen_range(0..=text.len());
            let pos = (0..=pos).rev().find(|&p| text.is_char_boundary(p)).unwrap_or(0);
            let mut out = String::with_capacity(text.len() + 32);
            out.push_str(&text[..pos]);
            out.push(' ');
            out.push_str(junk[rng.gen_range(0..junk.len())]);
            out.push(' ');
            out.push_str(&text[pos..]);
            out
        }
        // Delete a whitespace-separated token.
        2 => {
            let toks: Vec<&str> = text.split_whitespace().collect();
            if toks.is_empty() {
                return String::new();
            }
            let drop = rng.gen_range(0..toks.len());
            toks.iter()
                .enumerate()
                .filter(|&(i, _)| i != drop)
                .map(|(_, t)| *t)
                .collect::<Vec<_>>()
                .join(" ")
        }
        // Duplicate a random line (duplicate objective, repeated terms).
        3 => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return String::new();
            }
            let dup = rng.gen_range(0..lines.len());
            let mut out: Vec<&str> = lines.clone();
            out.insert(dup, lines[dup]);
            out.join("\n")
        }
        // Inflate every digit run (overflowing coefficients and rhs).
        4 => text
            .chars()
            .map(|c| if c.is_ascii_digit() && rng.gen_bool(0.5) { '9' } else { c })
            .collect::<String>()
            .replace('9', "99"),
        // Replace random bytes with junk characters.
        _ => text
            .chars()
            .map(|c| {
                if rng.gen_bool(0.08) {
                    *[';', '*', '~', 'x', '-', '\u{fffd}'].get(rng.gen_range(0..6usize)).unwrap()
                } else {
                    c
                }
            })
            .collect(),
    }
}

#[test]
fn mutated_opb_never_panics() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0b0b);
    let mut parsed_ok = 0usize;
    let mut rejected = 0usize;
    for round in 0..400 {
        let mut doc = seed_document(&mut rng);
        for _ in 0..rng.gen_range(1..4u32) {
            doc = mutate(&mut rng, &doc);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| parse_opb(&doc)));
        match outcome {
            Ok(Ok(inst)) => {
                parsed_ok += 1;
                // Whatever survives mutation must still be a sane
                // instance: bounded variable count, self-consistent
                // round trip through the writer.
                assert!(inst.num_vars() <= MAX_OPB_VARS, "round {round}");
                let reparsed = parse_opb(&write_opb(&inst));
                assert!(reparsed.is_ok(), "round {round}: writer output must re-parse");
            }
            Ok(Err(_)) => rejected += 1,
            Err(_) => panic!("round {round}: parser panicked on:\n{doc}"),
        }
    }
    // The sweep must actually cover both outcomes, or the generator
    // degenerated (all-valid means mutations were too tame, all-invalid
    // means the seed documents were already broken).
    assert!(parsed_ok > 0, "no mutated document parsed: generator too destructive");
    assert!(rejected > 0, "no mutated document rejected: generator too tame");
}

#[test]
fn hostile_documents_rejected_without_panic() {
    // Hand-picked adversarial documents targeting specific failure
    // modes: allocation bombs, arithmetic overflow at the i64 rails,
    // operator confusion and bare junk.
    let hostile = [
        // Allocation bomb: one corrupt index would declare 10^19 vars.
        "+1 x18446744073709551615 >= 1 ;",
        "+1 x99999999999 >= 1 ;",
        // Above the documented ceiling, even though it fits in memory.
        "+1 x10000001 >= 1 ;",
        // i64 rails on coefficients and right-hand sides.
        "+9223372036854775807 x1 +9223372036854775807 x2 >= 9223372036854775807 ;",
        "-9223372036854775808 x1 >= -9223372036854775808 ;",
        "+9223372036854775807 ~x1 +9223372036854775807 ~x2 <= -9223372036854775808 ;",
        "min: +9223372036854775807 x1 +9223372036854775807 x1 ;",
        // Coefficient too wide for i64 at all.
        "+99999999999999999999 x1 >= 1 ;",
        // Structural junk.
        "",
        ";",
        ";;;;",
        ">= 1 ;",
        "+1 >= 1 ;",
        "+1 x1 >=",
        "+1 x1 >= ;",
        "min: ;",
        "min: min: ;",
        "+1 x0 >= 1 ;",
        "~ x1 >= 1 ;",
        "+1 ~~x1 >= 1 ;",
        "+1 x1 >= 1 >= 1 ;",
        "+1 x1 <= >= 1 ;",
        "\u{0}\u{0}\u{0}",
    ];
    for (i, doc) in hostile.iter().enumerate() {
        let outcome = catch_unwind(AssertUnwindSafe(|| parse_opb(doc)));
        let result = outcome.unwrap_or_else(|_| panic!("doc {i} panicked: {doc:?}"));
        // Ok is fine for trivially-empty documents; what matters is no
        // panic and no runaway allocation (the call returning at all).
        let _ = result;
    }
}
