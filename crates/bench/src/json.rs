//! Machine-readable benchmark output (`BENCH_table1.json`).
//!
//! The workspace builds offline with no serde, so this module hand-rolls
//! the small amount of JSON the benchmark harness emits: per-instance
//! wall time, nodes (decisions), lower-bound calls and lower-bound /
//! subproblem-maintenance time per solver column, plus the
//! residual-state ablation that tracks the perf trajectory across PRs.

use std::fmt::Write as _;
use std::time::Duration;

use crate::{Row, SolverKind};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One side of the residual-state ablation.
#[derive(Clone, Debug)]
pub struct AblationSide {
    /// Lower-bound calls performed (== residual views produced).
    pub lb_calls: u64,
    /// Total time maintaining/building the residual subproblem.
    pub sub_time: Duration,
    /// Total time inside the bound procedure itself.
    pub lb_time: Duration,
    /// Decisions explored.
    pub decisions: u64,
}

impl AblationSide {
    /// Average subproblem-maintenance nanoseconds per bound call.
    pub fn sub_ns_per_call(&self) -> f64 {
        if self.lb_calls == 0 {
            0.0
        } else {
            self.sub_time.as_nanos() as f64 / self.lb_calls as f64
        }
    }

    fn write(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"lb_calls\": {}, \"decisions\": {}, \"sub_time_ms\": {:.3}, \
             \"lb_time_ms\": {:.3}, \"sub_ns_per_call\": {:.0}}}",
            self.lb_calls,
            self.decisions,
            ms(self.sub_time),
            ms(self.lb_time),
            self.sub_ns_per_call(),
        );
    }
}

/// The rebuild-vs-incremental ablation result recorded alongside Table 1.
#[derive(Clone, Debug)]
pub struct ResidualAblation {
    /// Instance the ablation ran on.
    pub instance: String,
    /// Lower-bound method used.
    pub lb_method: &'static str,
    /// Per-node rebuild measurements.
    pub rebuild: AblationSide,
    /// Incremental residual-state measurements.
    pub incremental: AblationSide,
}

impl ResidualAblation {
    /// How many times cheaper per-node subproblem maintenance is in
    /// incremental mode.
    pub fn maintenance_speedup(&self) -> f64 {
        let incr = self.incremental.sub_ns_per_call();
        if incr <= 0.0 {
            f64::INFINITY
        } else {
            self.rebuild.sub_ns_per_call() / incr
        }
    }
}

/// Renders the whole benchmark report as a JSON document.
pub fn render_report(
    budget_ms: u64,
    seeds: u64,
    families: &[(String, Vec<Row>)],
    ablation: Option<&ResidualAblation>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"budget_ms\": {},", budget_ms);
    let _ = writeln!(out, "  \"seeds\": {},", seeds);
    out.push_str("  \"families\": [\n");
    for (fi, (family, rows)) in families.iter().enumerate() {
        let _ = writeln!(out, "    {{\"family\": \"{}\", \"instances\": [", escape(family));
        for (ri, row) in rows.iter().enumerate() {
            let _ =
                write!(out, "      {{\"instance\": \"{}\", \"cells\": [", escape(&row.instance));
            for (ci, (kind, cell)) in SolverKind::ALL.iter().zip(row.cells.iter()).enumerate() {
                if ci > 0 {
                    out.push_str(", ");
                }
                let cost = match cell.best_cost {
                    Some(c) => c.to_string(),
                    None => "null".to_string(),
                };
                let _ = write!(
                    out,
                    "{{\"solver\": \"{}\", \"status\": \"{}\", \"cost\": {}, \
                     \"time_ms\": {:.3}, \"nodes\": {}, \"lb_calls\": {}, \
                     \"lb_time_ms\": {:.3}, \"sub_time_ms\": {:.3}}}",
                    kind.name(),
                    cell.status,
                    cost,
                    ms(cell.stats.solve_time),
                    cell.stats.decisions,
                    cell.stats.lb_calls,
                    ms(cell.stats.lb_time),
                    ms(cell.stats.sub_time),
                );
            }
            let comma = if ri + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(out, "]}}{comma}");
        }
        let comma = if fi + 1 < families.len() { "," } else { "" };
        let _ = writeln!(out, "    ]}}{comma}");
    }
    out.push_str("  ],\n");
    match ablation {
        Some(a) => {
            out.push_str("  \"residual_ablation\": {\n");
            let _ = writeln!(out, "    \"instance\": \"{}\",", escape(&a.instance));
            let _ = writeln!(out, "    \"lb_method\": \"{}\",", a.lb_method);
            out.push_str("    \"rebuild\": ");
            a.rebuild.write(&mut out);
            out.push_str(",\n    \"incremental\": ");
            a.incremental.write(&mut out);
            // JSON has no Infinity/NaN literal: a degenerate measurement
            // (e.g. zero lower-bound calls within budget) becomes null.
            let speedup = a.maintenance_speedup();
            if speedup.is_finite() {
                let _ = writeln!(out, ",\n    \"maintenance_speedup\": {speedup:.2}");
            } else {
                let _ = writeln!(out, ",\n    \"maintenance_speedup\": null");
            }
            out.push_str("  }\n");
        }
        None => {
            out.push_str("  \"residual_ablation\": null\n");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{family_instances, run_table};
    use pbo_solver::Budget;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn report_is_parseable_shape() {
        let insts = family_instances("synthesis", 1);
        let rows = run_table(&insts, Budget::conflict_limit(5));
        let ablation = ResidualAblation {
            instance: "synthesis-0".into(),
            lb_method: "mis",
            rebuild: AblationSide {
                lb_calls: 100,
                sub_time: Duration::from_micros(900),
                lb_time: Duration::from_micros(500),
                decisions: 120,
            },
            incremental: AblationSide {
                lb_calls: 100,
                sub_time: Duration::from_micros(100),
                lb_time: Duration::from_micros(500),
                decisions: 120,
            },
        };
        let text = render_report(5000, 1, &[("synthesis".into(), rows)], Some(&ablation));
        // Structural smoke checks (no JSON parser in the workspace).
        assert!(text.starts_with("{\n"));
        assert!(text.trim_end().ends_with('}'));
        assert!(text.contains("\"residual_ablation\""));
        assert!(text.contains("\"maintenance_speedup\": 9.00"));
        assert!(text.contains("\"solver\": \"LPR\""));
        assert_eq!(text.matches("\"instance\"").count(), 2);
        // Balanced braces and brackets.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn speedup_of_zero_incremental_cost_is_infinite() {
        let side = |ns: u64| AblationSide {
            lb_calls: 10,
            sub_time: Duration::from_nanos(ns * 10),
            lb_time: Duration::ZERO,
            decisions: 10,
        };
        let a = ResidualAblation {
            instance: "x".into(),
            lb_method: "mis",
            rebuild: side(500),
            incremental: side(0),
        };
        assert!(a.maintenance_speedup().is_infinite());
        // JSON has no Infinity literal: the report must degrade to null.
        let text = render_report(100, 1, &[], Some(&a));
        assert!(text.contains("\"maintenance_speedup\": null"), "{text}");
        assert!(!text.contains("inf"), "{text}");
    }
}
