//! Machine-readable benchmark output (`BENCH_table1.json`).
//!
//! The workspace builds offline with no serde, so this module hand-rolls
//! the small amount of JSON the benchmark harness emits: per-instance
//! wall time, nodes (decisions), lower-bound calls and lower-bound /
//! subproblem-maintenance time per solver column, plus the
//! residual-state ablation that tracks the perf trajectory across PRs.

use std::fmt::Write as _;
use std::time::Duration;

use crate::{Row, SolverKind};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One side of the residual-state ablation.
#[derive(Clone, Debug)]
pub struct AblationSide {
    /// Lower-bound calls performed (== residual views produced).
    pub lb_calls: u64,
    /// Total time maintaining/building the residual subproblem.
    pub sub_time: Duration,
    /// Total time inside the bound procedure itself.
    pub lb_time: Duration,
    /// Decisions explored.
    pub decisions: u64,
}

impl AblationSide {
    /// Average subproblem-maintenance nanoseconds per bound call.
    pub fn sub_ns_per_call(&self) -> f64 {
        if self.lb_calls == 0 {
            0.0
        } else {
            self.sub_time.as_nanos() as f64 / self.lb_calls as f64
        }
    }

    fn write(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"lb_calls\": {}, \"decisions\": {}, \"sub_time_ms\": {:.3}, \
             \"lb_time_ms\": {:.3}, \"sub_ns_per_call\": {:.0}}}",
            self.lb_calls,
            self.decisions,
            ms(self.sub_time),
            ms(self.lb_time),
            self.sub_ns_per_call(),
        );
    }
}

/// The rebuild-vs-incremental ablation result recorded alongside Table 1.
#[derive(Clone, Debug)]
pub struct ResidualAblation {
    /// Instance the ablation ran on.
    pub instance: String,
    /// Lower-bound method used.
    pub lb_method: &'static str,
    /// Per-node rebuild measurements.
    pub rebuild: AblationSide,
    /// Incremental residual-state measurements.
    pub incremental: AblationSide,
}

impl ResidualAblation {
    /// How many times cheaper per-node subproblem maintenance is in
    /// incremental mode.
    pub fn maintenance_speedup(&self) -> f64 {
        let incr = self.incremental.sub_ns_per_call();
        if incr <= 0.0 {
            f64::INFINITY
        } else {
            self.rebuild.sub_ns_per_call() / incr
        }
    }
}

/// One side of the dynamic-rows ablation (`dynamic_rows` off / on).
#[derive(Clone, Debug)]
pub struct DynRowsSide {
    /// Whether the side proved optimality within the budget.
    pub solved: bool,
    /// B&B nodes (decisions) explored.
    pub decisions: u64,
    /// Lower-bound computations performed.
    pub lb_calls: u64,
    /// Bound conflicts (prunings).
    pub bound_conflicts: u64,
    /// Mean per-node bound margin (`bound - path_cost`, averaged over
    /// finite lower-bound outcomes) — the bound-strength metric.
    pub mean_lb_margin: f64,
    /// Wall time of the solve.
    pub solve_time: Duration,
}

impl DynRowsSide {
    fn write(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"solved\": {}, \"decisions\": {}, \"lb_calls\": {}, \
             \"bound_conflicts\": {}, \"mean_lb_margin\": {:.3}, \"time_ms\": {:.3}}}",
            self.solved,
            self.decisions,
            self.lb_calls,
            self.bound_conflicts,
            self.mean_lb_margin,
            ms(self.solve_time),
        );
    }
}

/// The dynamic-rows ablation result recorded alongside Table 1: the
/// same solve with the learned-cut dynamic rows folded into the
/// residual problem (on) and without (off).
#[derive(Clone, Debug)]
pub struct DynamicRowsAblation {
    /// Instance the ablation ran on.
    pub instance: String,
    /// Lower-bound method used.
    pub lb_method: &'static str,
    /// `dynamic_rows: false` measurements.
    pub off: DynRowsSide,
    /// `dynamic_rows: true` measurements.
    pub on: DynRowsSide,
}

/// One instance of the portfolio probe: cold bsolo-LPR vs the LS-seeded
/// portfolio vs LS alone (see `run_portfolio_probe`).
#[derive(Clone, Debug)]
pub struct PortfolioProbe {
    /// Instance name.
    pub instance: String,
    /// The cold run's final cost — the target the warm side must reach.
    pub target_cost: Option<i64>,
    /// Whether the cold run proved optimality within the budget.
    pub exact_optimal: bool,
    /// Cold bsolo-LPR wall time.
    pub exact_time: Duration,
    /// Cold bsolo-LPR nodes (decisions).
    pub exact_nodes: u64,
    /// When the portfolio first held an incumbent `<= target_cost`.
    pub warm_time_to_target: Option<Duration>,
    /// Portfolio total wall time.
    pub warm_time: Duration,
    /// Portfolio B&B nodes (decisions) — the warm-start shrinkage metric.
    pub warm_nodes: u64,
    /// Portfolio final cost.
    pub warm_cost: Option<i64>,
    /// LS-alone best cost under the probe step budget.
    pub ls_cost: Option<i64>,
    /// LS-alone wall time.
    pub ls_time: Duration,
    /// Relative gap of `ls_cost` vs `target_cost` (0.0 = optimal).
    pub ls_gap: Option<f64>,
    /// The portfolio's anytime curve: every `(time, cost)` the shared
    /// incumbent cell recorded, strictly improving in cost. The
    /// machine-readable trajectory behind the anytime-solving claims —
    /// `bench_compare` gates the current curve against the snapshot's
    /// final point.
    pub anytime: Vec<(Duration, i64)>,
}

/// One instance of the parallel-LS (ParLS) probe: a single deterministic
/// LS worker vs a diversified pool under the same per-worker step
/// budget, gaps measured against the exact solver's cost.
#[derive(Clone, Debug)]
pub struct ParlsProbe {
    /// Instance name.
    pub instance: String,
    /// The exact side's cost (the gap reference), if known.
    pub target_cost: Option<i64>,
    /// Best cost of the single worker (worker 0, base options).
    pub single_cost: Option<i64>,
    /// Best cost of the diversified pool (includes worker 0).
    pub pool_cost: Option<i64>,
    /// Relative gap of the single worker vs the target.
    pub single_gap: Option<f64>,
    /// Relative gap of the pool vs the target.
    pub pool_gap: Option<f64>,
}

/// Aggregate of the ParLS probe: the CI gate numbers.
#[derive(Clone, Debug)]
pub struct ParlsSummary {
    /// Worker count of the pool side.
    pub workers: usize,
    /// Worst single-worker gap across instances.
    pub max_single_gap: Option<f64>,
    /// Worst pool gap across instances.
    pub max_pool_gap: Option<f64>,
    /// Whether the pool cost was `<=` the single cost on every instance
    /// (guaranteed by construction — worker 0 replays the single run —
    /// asserted to catch diversification/seeding bugs).
    pub pool_never_worse: bool,
}

/// Aggregates ParLS probe rows into the gate metrics.
pub fn summarize_parls(probes: &[ParlsProbe], workers: usize) -> ParlsSummary {
    let mut max_single: Option<f64> = None;
    let mut max_pool: Option<f64> = None;
    let mut never_worse = true;
    for p in probes {
        if let Some(g) = p.single_gap {
            max_single = Some(max_single.map_or(g, |m: f64| m.max(g)));
        }
        if let Some(g) = p.pool_gap {
            max_pool = Some(max_pool.map_or(g, |m: f64| m.max(g)));
        }
        match (p.pool_cost, p.single_cost) {
            (Some(pool), Some(single)) => never_worse &= pool <= single,
            (None, Some(_)) => never_worse = false,
            _ => {}
        }
    }
    ParlsSummary {
        workers,
        max_single_gap: max_single,
        max_pool_gap: max_pool,
        pool_never_worse: never_worse,
    }
}

/// One worker-count run of the par_bb scaling probe.
#[derive(Clone, Debug)]
pub struct ParBbRun {
    /// Worker count of this run (1 = the sequential solver, by
    /// delegation).
    pub workers: usize,
    /// Final cost.
    pub cost: Option<i64>,
    /// Whether this run proved optimality within the budget.
    pub optimal: bool,
    /// Wall time.
    pub time: Duration,
    /// Nodes: head start + splitter lookahead + all workers, summed.
    pub nodes: u64,
    /// Dynamic re-splits performed across all workers.
    pub resplits: u64,
    /// Cube-independent clauses published to the shared pool.
    pub clauses_shared: u64,
    /// Pool clauses imported into worker engines.
    pub clauses_imported: u64,
    /// Cube splits truncated at the maximum split depth.
    pub depth_truncated: u64,
    /// Total wall time workers spent blocked on the cube queue.
    pub queue_wait: Duration,
    /// Per-worker node counts (merged at join).
    pub nodes_per_worker: Vec<u64>,
}

/// One instance of the parallel-exact (par_bb) probe: the same solve at
/// each probed worker count, the 1-worker run first (the scaling
/// baseline — bit-identical to the sequential solver).
#[derive(Clone, Debug)]
pub struct ParBbProbe {
    /// Instance name.
    pub instance: String,
    /// One run per probed worker count, ascending; `runs[0].workers == 1`.
    pub runs: Vec<ParBbRun>,
}

/// Aggregate of the par_bb scaling probe: the CI gate numbers.
#[derive(Clone, Debug)]
pub struct ParBbSummary {
    /// The largest probed worker count (the wall-speedup gate's run).
    pub workers: usize,
    /// No parallel run ever returned a worse optimum: at every probed
    /// worker count, wherever the 1-worker run has a cost the parallel
    /// cost exists and is `<=` it, and wherever the 1-worker run proved
    /// optimality, so did the parallel run.
    pub never_worse_optimum: bool,
    /// Worst `nodes(w) / nodes(1)` over all instances and worker counts
    /// solved on both sides — the duplicated-work bound the gate caps
    /// at 2x.
    pub max_nodes_ratio: Option<f64>,
    /// Geometric mean of `time(1) / time(max workers)` over instances
    /// solved at both counts — the scaling number the PR-6 gate floors
    /// at 1.8x.
    pub time_speedup_geomean: Option<f64>,
}

/// Aggregates par_bb scaling rows into the gate metrics. The baseline of
/// every comparison is each instance's 1-worker run (`runs[0]`).
pub fn summarize_par_bb(probes: &[ParBbProbe]) -> ParBbSummary {
    let mut never_worse = true;
    let mut max_ratio: Option<f64> = None;
    let mut speedups: Vec<f64> = Vec::new();
    let max_workers =
        probes.iter().flat_map(|p| p.runs.iter().map(|r| r.workers)).max().unwrap_or(1);
    for p in probes {
        let Some(base) = p.runs.first() else { continue };
        for run in p.runs.iter().skip(1) {
            match (base.cost, run.cost) {
                (Some(s), Some(q)) => never_worse &= q <= s,
                (Some(_), None) => never_worse = false,
                _ => {}
            }
            if base.optimal {
                never_worse &= run.optimal;
            }
            if base.optimal && run.optimal && base.nodes > 0 {
                let ratio = run.nodes as f64 / base.nodes as f64;
                max_ratio = Some(max_ratio.map_or(ratio, |m: f64| m.max(ratio)));
                if run.workers == max_workers {
                    let (s, q) = (base.time.as_secs_f64(), run.time.as_secs_f64());
                    if s > 0.0 && q > 0.0 {
                        speedups.push(s / q);
                    }
                }
            }
        }
    }
    let geomean = if speedups.is_empty() {
        None
    } else {
        Some((speedups.iter().map(|r| r.ln()).sum::<f64>() / speedups.len() as f64).exp())
    };
    ParBbSummary {
        workers: max_workers,
        never_worse_optimum: never_worse,
        max_nodes_ratio: max_ratio,
        time_speedup_geomean: geomean,
    }
}

/// One worker-count run of the scheduler-scaling row.
#[derive(Clone, Debug)]
pub struct SchedulerScalingRun {
    /// Worker count of this run.
    pub workers: usize,
    /// Final cost.
    pub cost: Option<i64>,
    /// Whether this run proved optimality within the budget.
    pub optimal: bool,
    /// Wall time.
    pub time: Duration,
    /// Nodes: head start + splitter lookahead + all workers, summed.
    pub nodes: u64,
    /// Successful Chase–Lev steals across all workers.
    pub steals: u64,
    /// Cubes acquired through the injector (frontier + overflow lane).
    pub injections: u64,
    /// Dynamic re-splits performed across all workers.
    pub resplits: u64,
    /// Total wall time workers spent inside the acquire loop.
    pub queue_wait: Duration,
}

/// The scheduler-scaling row: the deep-split stress instance (a 1k+
/// open-cube frontier, `pbo_benchgen::DeepSplitParams`) solved by the
/// work-stealing scheduler at each probed worker count. Unlike the
/// `par_bb` probe (hardest synthesis seeds, default self-balancing
/// frontier), this row pins `split_target` so every worker count pushes
/// the same thousand-cube frontier through the injector — it measures
/// the scheduler under load, not the search. `available_parallelism`
/// records how many cores the host actually offers, because worker
/// counts beyond it measure oversubscription, not scaling.
#[derive(Clone, Debug)]
pub struct SchedulerScaling {
    /// Instance name.
    pub instance: String,
    /// Open cubes the splitter produced (the provoked frontier).
    pub frontier: usize,
    /// The pinned initial-frontier target.
    pub split_target: usize,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub available_parallelism: usize,
    /// One run per probed worker count, ascending.
    pub runs: Vec<SchedulerScalingRun>,
}

fn write_scheduler_scaling(out: &mut String, s: &SchedulerScaling) {
    out.push_str("  \"scheduler_scaling\": {\n");
    let _ = writeln!(out, "    \"instance\": \"{}\",", escape(&s.instance));
    let _ = writeln!(out, "    \"frontier\": {},", s.frontier);
    let _ = writeln!(out, "    \"split_target\": {},", s.split_target);
    let _ = writeln!(out, "    \"available_parallelism\": {},", s.available_parallelism);
    out.push_str("    \"runs\": [\n");
    for (ri, r) in s.runs.iter().enumerate() {
        let rcomma = if ri + 1 < s.runs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"workers\": {}, \"cost\": {}, \"optimal\": {}, \"time_ms\": {:.3}, \
             \"nodes\": {}, \"steals\": {}, \"injections\": {}, \"resplits\": {}, \
             \"queue_wait_ms\": {:.3}}}{rcomma}",
            r.workers,
            opt_i64(r.cost),
            r.optimal,
            ms(r.time),
            r.nodes,
            r.steals,
            r.injections,
            r.resplits,
            ms(r.queue_wait),
        );
    }
    out.push_str("    ]\n  },\n");
}

/// One method's run in the bound-ladder probe (`lgr`, `lpr` or
/// `adaptive` on one gated instance, same budget for all three).
#[derive(Clone, Debug)]
pub struct BoundLadderRun {
    /// Method key: `"lgr"`, `"lpr"` or `"adaptive"`.
    pub method: &'static str,
    /// Final cost.
    pub cost: Option<i64>,
    /// Whether this run proved optimality within the budget.
    pub optimal: bool,
    /// Wall time.
    pub time: Duration,
    /// B&B nodes (decisions).
    pub nodes: u64,
    /// Lower-bound computations (ladder: both rungs counted).
    pub lb_calls: u64,
    /// Total time inside the bound procedures.
    pub lb_time: Duration,
    /// Cheap-rung → LPR escalations (0 for the fixed methods).
    pub escalations: u64,
}

/// One instance of the bound-ladder probe: the two fixed rungs and the
/// adaptive ladder on the same instance under the same budget.
#[derive(Clone, Debug)]
pub struct BoundLadderProbe {
    /// Instance name.
    pub instance: String,
    /// Runs in `[lgr, lpr, adaptive]` order.
    pub runs: Vec<BoundLadderRun>,
}

/// Aggregate of the bound-ladder probe: the CI gate numbers (the gate
/// logic itself lives in [`crate::compare::evaluate_bound_ladder`] so
/// `bench_compare` can re-derive it from any report).
#[derive(Clone, Debug)]
pub struct BoundLadderSummary {
    /// Instances where at least one fixed rung proved optimality (the
    /// gated population).
    pub gated_instances: usize,
    /// On every gated instance, adaptive proved the same optimum.
    pub same_optima: bool,
    /// Instances where adaptive beat fixed LPR outright: proved an
    /// optimum LPR could not, or proved it in strictly less wall time.
    pub beats_lpr: usize,
}

/// Aggregates bound-ladder probe rows into the gate metrics.
pub fn summarize_bound_ladder(probes: &[BoundLadderProbe]) -> BoundLadderSummary {
    let mut gated = 0usize;
    let mut same_optima = true;
    let mut beats_lpr = 0usize;
    for p in probes {
        let run = |m: &str| p.runs.iter().find(|r| r.method == m);
        let (Some(lgr), Some(lpr), Some(ada)) = (run("lgr"), run("lpr"), run("adaptive")) else {
            continue;
        };
        let best_fixed_cost = [lgr, lpr].iter().filter(|r| r.optimal).filter_map(|r| r.cost).min();
        if let Some(best) = best_fixed_cost {
            gated += 1;
            same_optima &= ada.optimal && ada.cost == Some(best);
        }
        if ada.optimal && (!lpr.optimal || ada.time < lpr.time) {
            beats_lpr += 1;
        }
    }
    BoundLadderSummary { gated_instances: gated, same_optima, beats_lpr }
}

fn write_bound_ladder(out: &mut String, probes: &[BoundLadderProbe]) {
    out.push_str("  \"bound_ladder\": {\n    \"instances\": [\n");
    for (i, p) in probes.iter().enumerate() {
        let comma = if i + 1 < probes.len() { "," } else { "" };
        let _ = writeln!(out, "      {{\"instance\": \"{}\", \"runs\": [", escape(&p.instance));
        for (ri, r) in p.runs.iter().enumerate() {
            let rcomma = if ri + 1 < p.runs.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"method\": \"{}\", \"cost\": {}, \"optimal\": {}, \
                 \"time_ms\": {:.3}, \"nodes\": {}, \"lb_calls\": {}, \
                 \"lb_time_ms\": {:.3}, \"escalations\": {}}}{rcomma}",
                r.method,
                opt_i64(r.cost),
                r.optimal,
                ms(r.time),
                r.nodes,
                r.lb_calls,
                ms(r.lb_time),
                r.escalations,
            );
        }
        let _ = writeln!(out, "      ]}}{comma}");
    }
    out.push_str("    ],\n");
    let s = summarize_bound_ladder(probes);
    let _ = writeln!(
        out,
        "    \"summary\": {{\"gated_instances\": {}, \"same_optima\": {}, \"beats_lpr\": {}}}",
        s.gated_instances, s.same_optima, s.beats_lpr,
    );
    out.push_str("  },\n");
}

/// Aggregate of a probe run: the numbers the CI gates assert on.
#[derive(Clone, Debug)]
pub struct PortfolioSummary {
    /// `sum(warm_time_to_target) / sum(exact_time)` over instances where
    /// the warm side reached the target.
    pub time_to_target_ratio: Option<f64>,
    /// Instances where the warm side never reached the target.
    pub missed_targets: usize,
    /// Total B&B nodes with the LS warm start.
    pub nodes_warm: u64,
    /// Total B&B nodes cold.
    pub nodes_cold: u64,
    /// Worst LS optimality gap across instances.
    pub max_ls_gap: Option<f64>,
}

/// Aggregates probe rows into the gate metrics.
pub fn summarize_portfolio(probes: &[PortfolioProbe]) -> PortfolioSummary {
    let mut reach_num = 0.0f64;
    let mut reach_den = 0.0f64;
    let mut missed = 0usize;
    let mut nodes_warm = 0u64;
    let mut nodes_cold = 0u64;
    let mut max_gap: Option<f64> = None;
    for p in probes {
        nodes_warm += p.warm_nodes;
        nodes_cold += p.exact_nodes;
        match p.warm_time_to_target {
            Some(t) if p.target_cost.is_some() => {
                reach_num += t.as_secs_f64();
                reach_den += p.exact_time.as_secs_f64();
            }
            _ if p.target_cost.is_some() => missed += 1,
            _ => {}
        }
        if let Some(g) = p.ls_gap {
            max_gap = Some(max_gap.map_or(g, |m: f64| m.max(g)));
        }
    }
    PortfolioSummary {
        time_to_target_ratio: (reach_den > 0.0).then(|| reach_num / reach_den),
        missed_targets: missed,
        nodes_warm,
        nodes_cold,
        max_ls_gap: max_gap,
    }
}

fn opt_i64(v: Option<i64>) -> String {
    v.map_or("null".to_string(), |c| c.to_string())
}

fn opt_ms(v: Option<Duration>) -> String {
    v.map_or("null".to_string(), |d| format!("{:.3}", ms(d)))
}

fn opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.4}"),
        _ => "null".to_string(),
    }
}

/// Renders an anytime curve as a JSON array of `[time_ms, cost]` pairs.
fn anytime_json(curve: &[(Duration, i64)]) -> String {
    let pairs: Vec<String> = curve.iter().map(|&(t, c)| format!("[{:.3}, {c}]", ms(t))).collect();
    format!("[{}]", pairs.join(", "))
}

fn write_portfolio(out: &mut String, probes: &[PortfolioProbe]) {
    out.push_str("  \"portfolio\": {\n    \"instances\": [\n");
    for (i, p) in probes.iter().enumerate() {
        let comma = if i + 1 < probes.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"instance\": \"{}\", \"target_cost\": {}, \"exact_optimal\": {}, \
             \"exact_time_ms\": {:.3}, \"exact_nodes\": {}, \
             \"warm_time_to_target_ms\": {}, \"warm_time_ms\": {:.3}, \
             \"warm_nodes\": {}, \"warm_cost\": {}, \
             \"ls_cost\": {}, \"ls_time_ms\": {:.3}, \"ls_gap\": {}, \
             \"anytime\": {}}}{comma}",
            escape(&p.instance),
            opt_i64(p.target_cost),
            p.exact_optimal,
            ms(p.exact_time),
            p.exact_nodes,
            opt_ms(p.warm_time_to_target),
            ms(p.warm_time),
            p.warm_nodes,
            opt_i64(p.warm_cost),
            opt_i64(p.ls_cost),
            ms(p.ls_time),
            opt_f64(p.ls_gap),
            anytime_json(&p.anytime),
        );
    }
    out.push_str("    ],\n");
    let s = summarize_portfolio(probes);
    let _ = writeln!(
        out,
        "    \"summary\": {{\"time_to_target_ratio\": {}, \"missed_targets\": {}, \
         \"nodes_warm\": {}, \"nodes_cold\": {}, \"max_ls_gap\": {}}}",
        opt_f64(s.time_to_target_ratio),
        s.missed_targets,
        s.nodes_warm,
        s.nodes_cold,
        opt_f64(s.max_ls_gap),
    );
    out.push_str("  },\n");
}

fn write_parls(out: &mut String, probes: &[ParlsProbe], workers: usize) {
    let _ = writeln!(out, "  \"parls\": {{\n    \"workers\": {workers},\n    \"instances\": [");
    for (i, p) in probes.iter().enumerate() {
        let comma = if i + 1 < probes.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"instance\": \"{}\", \"target_cost\": {}, \"single_cost\": {}, \
             \"pool_cost\": {}, \"single_gap\": {}, \"pool_gap\": {}}}{comma}",
            escape(&p.instance),
            opt_i64(p.target_cost),
            opt_i64(p.single_cost),
            opt_i64(p.pool_cost),
            opt_f64(p.single_gap),
            opt_f64(p.pool_gap),
        );
    }
    out.push_str("    ],\n");
    let s = summarize_parls(probes, workers);
    let _ = writeln!(
        out,
        "    \"summary\": {{\"max_single_gap\": {}, \"max_pool_gap\": {}, \
         \"pool_never_worse\": {}}}",
        opt_f64(s.max_single_gap),
        opt_f64(s.max_pool_gap),
        s.pool_never_worse,
    );
    out.push_str("  },\n");
}

fn write_par_bb(out: &mut String, probes: &[ParBbProbe]) {
    let counts: Vec<String> = probes
        .first()
        .map(|p| p.runs.iter().map(|r| r.workers.to_string()).collect())
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "  \"par_bb\": {{\n    \"workers\": [{}],\n    \"instances\": [",
        counts.join(", ")
    );
    for (i, p) in probes.iter().enumerate() {
        let comma = if i + 1 < probes.len() { "," } else { "" };
        let _ = writeln!(out, "      {{\"instance\": \"{}\", \"runs\": [", escape(&p.instance));
        for (ri, r) in p.runs.iter().enumerate() {
            let rcomma = if ri + 1 < p.runs.len() { "," } else { "" };
            let per: Vec<String> = r.nodes_per_worker.iter().map(u64::to_string).collect();
            let _ = writeln!(
                out,
                "        {{\"workers\": {}, \"cost\": {}, \"optimal\": {}, \
                 \"time_ms\": {:.3}, \"nodes\": {}, \"resplits\": {}, \
                 \"clauses_shared\": {}, \"clauses_imported\": {}, \
                 \"depth_truncated\": {}, \"queue_wait_ms\": {:.3}, \
                 \"nodes_per_worker\": [{}]}}{rcomma}",
                r.workers,
                opt_i64(r.cost),
                r.optimal,
                ms(r.time),
                r.nodes,
                r.resplits,
                r.clauses_shared,
                r.clauses_imported,
                r.depth_truncated,
                ms(r.queue_wait),
                per.join(", "),
            );
        }
        let _ = writeln!(out, "      ]}}{comma}");
    }
    out.push_str("    ],\n");
    let s = summarize_par_bb(probes);
    let _ = writeln!(
        out,
        "    \"summary\": {{\"workers\": {}, \"never_worse_optimum\": {}, \
         \"max_nodes_ratio\": {}, \"time_speedup_geomean\": {}}}",
        s.workers,
        s.never_worse_optimum,
        opt_f64(s.max_nodes_ratio),
        opt_f64(s.time_speedup_geomean),
    );
    out.push_str("  },\n");
}

/// Renders the whole benchmark report as a JSON document.
pub fn render_report(
    budget_ms: u64,
    seeds: u64,
    families: &[(String, Vec<Row>)],
    ablation: Option<&ResidualAblation>,
) -> String {
    render_report_full(budget_ms, seeds, families, ablation, &[], None, &[], 0, &[], None, &[])
}

/// [`render_report`] with the portfolio probe, dynamic-rows ablation,
/// ParLS, parallel-exact (par_bb), scheduler-scaling and bound-ladder
/// sections included.
#[allow(clippy::too_many_arguments)]
pub fn render_report_full(
    budget_ms: u64,
    seeds: u64,
    families: &[(String, Vec<Row>)],
    ablation: Option<&ResidualAblation>,
    portfolio: &[PortfolioProbe],
    dynamic_rows: Option<&DynamicRowsAblation>,
    parls: &[ParlsProbe],
    parls_workers: usize,
    par_bb: &[ParBbProbe],
    scheduler_scaling: Option<&SchedulerScaling>,
    bound_ladder: &[BoundLadderProbe],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"budget_ms\": {},", budget_ms);
    let _ = writeln!(out, "  \"seeds\": {},", seeds);
    out.push_str("  \"families\": [\n");
    for (fi, (family, rows)) in families.iter().enumerate() {
        let _ = writeln!(out, "    {{\"family\": \"{}\", \"instances\": [", escape(family));
        for (ri, row) in rows.iter().enumerate() {
            let _ =
                write!(out, "      {{\"instance\": \"{}\", \"cells\": [", escape(&row.instance));
            for (ci, (kind, cell)) in SolverKind::ALL.iter().zip(row.cells.iter()).enumerate() {
                if ci > 0 {
                    out.push_str(", ");
                }
                let cost = match cell.best_cost {
                    Some(c) => c.to_string(),
                    None => "null".to_string(),
                };
                let _ = write!(
                    out,
                    "{{\"solver\": \"{}\", \"status\": \"{}\", \"cost\": {}, \
                     \"time_ms\": {:.3}, \"nodes\": {}, \"lb_calls\": {}, \
                     \"lb_time_ms\": {:.3}, \"sub_time_ms\": {:.3}}}",
                    kind.name(),
                    cell.status,
                    cost,
                    ms(cell.stats.solve_time),
                    cell.stats.decisions,
                    cell.stats.lb_calls,
                    ms(cell.stats.lb_time_total),
                    ms(cell.stats.sub_time_total),
                );
            }
            let comma = if ri + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(out, "]}}{comma}");
        }
        let comma = if fi + 1 < families.len() { "," } else { "" };
        let _ = writeln!(out, "    ]}}{comma}");
    }
    out.push_str("  ],\n");
    if portfolio.is_empty() {
        out.push_str("  \"portfolio\": null,\n");
    } else {
        write_portfolio(&mut out, portfolio);
    }
    if parls.is_empty() {
        out.push_str("  \"parls\": null,\n");
    } else {
        write_parls(&mut out, parls, parls_workers);
    }
    if par_bb.is_empty() {
        out.push_str("  \"par_bb\": null,\n");
    } else {
        write_par_bb(&mut out, par_bb);
    }
    match scheduler_scaling {
        Some(s) => write_scheduler_scaling(&mut out, s),
        None => out.push_str("  \"scheduler_scaling\": null,\n"),
    }
    if bound_ladder.is_empty() {
        out.push_str("  \"bound_ladder\": null,\n");
    } else {
        write_bound_ladder(&mut out, bound_ladder);
    }
    match dynamic_rows {
        Some(d) => {
            out.push_str("  \"dynamic_rows\": {\n");
            let _ = writeln!(out, "    \"instance\": \"{}\",", escape(&d.instance));
            let _ = writeln!(out, "    \"lb_method\": \"{}\",", d.lb_method);
            out.push_str("    \"off\": ");
            d.off.write(&mut out);
            out.push_str(",\n    \"on\": ");
            d.on.write(&mut out);
            out.push_str("\n  },\n");
        }
        None => out.push_str("  \"dynamic_rows\": null,\n"),
    }
    match ablation {
        Some(a) => {
            out.push_str("  \"residual_ablation\": {\n");
            let _ = writeln!(out, "    \"instance\": \"{}\",", escape(&a.instance));
            let _ = writeln!(out, "    \"lb_method\": \"{}\",", a.lb_method);
            out.push_str("    \"rebuild\": ");
            a.rebuild.write(&mut out);
            out.push_str(",\n    \"incremental\": ");
            a.incremental.write(&mut out);
            // JSON has no Infinity/NaN literal: a degenerate measurement
            // (e.g. zero lower-bound calls within budget) becomes null.
            let speedup = a.maintenance_speedup();
            if speedup.is_finite() {
                let _ = writeln!(out, ",\n    \"maintenance_speedup\": {speedup:.2}");
            } else {
                let _ = writeln!(out, ",\n    \"maintenance_speedup\": null");
            }
            out.push_str("  }\n");
        }
        None => {
            out.push_str("  \"residual_ablation\": null\n");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{family_instances, run_table};
    use pbo_solver::Budget;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn report_is_parseable_shape() {
        let insts = family_instances("synthesis", 1);
        let rows = run_table(&insts, Budget::conflict_limit(5));
        let ablation = ResidualAblation {
            instance: "synthesis-0".into(),
            lb_method: "mis",
            rebuild: AblationSide {
                lb_calls: 100,
                sub_time: Duration::from_micros(900),
                lb_time: Duration::from_micros(500),
                decisions: 120,
            },
            incremental: AblationSide {
                lb_calls: 100,
                sub_time: Duration::from_micros(100),
                lb_time: Duration::from_micros(500),
                decisions: 120,
            },
        };
        let text = render_report(5000, 1, &[("synthesis".into(), rows)], Some(&ablation));
        // Structural smoke checks (no JSON parser in the workspace).
        assert!(text.starts_with("{\n"));
        assert!(text.trim_end().ends_with('}'));
        assert!(text.contains("\"residual_ablation\""));
        assert!(text.contains("\"maintenance_speedup\": 9.00"));
        assert!(text.contains("\"solver\": \"LPR\""));
        assert_eq!(text.matches("\"instance\"").count(), 2);
        // Balanced braces and brackets.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn speedup_of_zero_incremental_cost_is_infinite() {
        let side = |ns: u64| AblationSide {
            lb_calls: 10,
            sub_time: Duration::from_nanos(ns * 10),
            lb_time: Duration::ZERO,
            decisions: 10,
        };
        let a = ResidualAblation {
            instance: "x".into(),
            lb_method: "mis",
            rebuild: side(500),
            incremental: side(0),
        };
        assert!(a.maintenance_speedup().is_infinite());
        // JSON has no Infinity literal: the report must degrade to null.
        let text = render_report(100, 1, &[], Some(&a));
        assert!(text.contains("\"maintenance_speedup\": null"), "{text}");
        assert!(!text.contains("inf"), "{text}");
    }
}
