//! Frozen PR-3 baseline of the per-node bound kernel, for the
//! `bound_kernels` microbenchmark.
//!
//! PR 4 rebuilt the data layer (flat CSR/SoA term arena, borrowed by the
//! residual state) and made the bound kernels steady-state
//! allocation-free (per-call materialized free-term scratch, unstable
//! sorts, reused outcome buffers). To gate the win in CI without
//! depending on the wall clock of whichever machine produced a snapshot,
//! this module freezes the **PR-3 shapes** so both generations can be
//! measured in the same process on the same instance:
//!
//! * [`Pr3Residual`] — the residual-counter maintenance with the PR-3
//!   storage: per-literal occurrence lists as `Vec<Vec<_>>` heap blocks
//!   (copied out of the instance at construction), identical counter
//!   semantics to `pbo_bounds::ResidualState`;
//! * [`Pr3MisBound`] — the PR-3 MIS kernel verbatim: free terms
//!   re-filtered through the assignment in every closure/greedy/fixing
//!   pass, stable (allocating) sorts, a freshly allocated explanation
//!   per call.
//!
//! This code is a *measurement baseline*, deliberately not kept DRY with
//! the live kernels — do not "fix" it to match later refactors.

use pbo_bounds::{ActiveEntry, LbOutcome, Subproblem};
use pbo_core::{Instance, Lit};

/// One occurrence of a literal in a constraint (PR-3 layout).
#[derive(Copy, Clone, Debug)]
struct Occ {
    constraint: u32,
    coeff: i64,
}

/// PR-3-layout residual-counter maintenance: per-literal occurrence
/// `Vec`s, applied/unwound exactly like `ResidualState` (linked active
/// list included), but owning its term data as scattered heap blocks.
pub struct Pr3Residual {
    occ: Vec<Vec<Occ>>,
    lit_cost: Vec<i64>,
    rhs: Vec<i64>,
    path_cost: i64,
    sat_weight: Vec<i64>,
    free_count: Vec<u32>,
    active_head: u32,
    active_prev: Vec<u32>,
    active_next: Vec<u32>,
    num_active: usize,
    trail: Vec<Lit>,
    entries: Vec<ActiveEntry>,
}

const NIL: u32 = u32::MAX;

impl Pr3Residual {
    /// Builds the baseline state (copies occurrence lists, as PR 3 did).
    pub fn new(instance: &Instance) -> Pr3Residual {
        let num_vars = instance.num_vars();
        let m = instance.num_constraints();
        let mut occ: Vec<Vec<Occ>> = vec![Vec::new(); 2 * num_vars];
        let mut rhs = Vec::with_capacity(m);
        let mut free_count = Vec::with_capacity(m);
        for (ci, c) in instance.constraints().iter().enumerate() {
            rhs.push(c.rhs());
            free_count.push(c.len() as u32);
            for t in c.terms() {
                occ[t.lit.code()].push(Occ { constraint: ci as u32, coeff: t.coeff });
            }
        }
        let mut lit_cost = vec![0i64; 2 * num_vars];
        let mut path_cost = 0;
        if let Some(obj) = instance.objective() {
            path_cost = obj.offset();
            for &(c, l) in obj.terms() {
                lit_cost[l.code()] = c;
            }
        }
        let active_prev: Vec<u32> =
            (0..m as u32).map(|i| if i == 0 { NIL } else { i - 1 }).collect();
        let active_next: Vec<u32> =
            (0..m as u32).map(|i| if i + 1 == m as u32 { NIL } else { i + 1 }).collect();
        Pr3Residual {
            occ,
            lit_cost,
            rhs,
            path_cost,
            sat_weight: vec![0; m],
            free_count,
            active_head: if m == 0 { NIL } else { 0 },
            active_prev,
            active_next,
            num_active: m,
            trail: Vec::with_capacity(num_vars),
            entries: Vec::with_capacity(m),
        }
    }

    /// PR-3 `view`: snapshot the active linked list into a
    /// [`Subproblem`] (O(active), identical semantics to
    /// `ResidualState::view` without dynamic rows).
    pub fn view<'a>(
        &'a mut self,
        instance: &'a Instance,
        assignment: &'a pbo_core::Assignment,
    ) -> Subproblem<'a> {
        self.entries.clear();
        let mut ci = self.active_head;
        while ci != NIL {
            let i = ci as usize;
            self.entries.push(ActiveEntry {
                index: ci,
                residual_rhs: self.rhs[i] - self.sat_weight[i],
                free_count: self.free_count[i],
            });
            ci = self.active_next[i];
        }
        Subproblem::from_maintained_parts(
            instance,
            assignment,
            self.path_cost,
            &self.entries,
            &self.lit_cost,
        )
    }

    /// Number of applied literals.
    pub fn len(&self) -> usize {
        self.trail.len()
    }

    /// Returns `true` if nothing is applied.
    pub fn is_empty(&self) -> bool {
        self.trail.is_empty()
    }

    /// Number of active constraints (observable result of a roundtrip).
    pub fn num_active(&self) -> usize {
        self.num_active
    }

    #[inline]
    fn deactivate(&mut self, ci: u32) {
        let p = self.active_prev[ci as usize];
        let n = self.active_next[ci as usize];
        if p == NIL {
            self.active_head = n;
        } else {
            self.active_next[p as usize] = n;
        }
        if n != NIL {
            self.active_prev[n as usize] = p;
        }
        self.num_active -= 1;
    }

    #[inline]
    fn activate(&mut self, ci: u32) {
        let p = self.active_prev[ci as usize];
        let n = self.active_next[ci as usize];
        if p == NIL {
            self.active_head = ci;
        } else {
            self.active_next[p as usize] = ci;
        }
        if n != NIL {
            self.active_prev[n as usize] = ci;
        }
        self.num_active += 1;
    }

    /// PR-3 `apply`: walk the per-literal occurrence `Vec`s.
    pub fn apply(&mut self, lit: Lit) {
        self.path_cost += self.lit_cost[lit.code()];
        for k in 0..self.occ[lit.code()].len() {
            let Occ { constraint, coeff } = self.occ[lit.code()][k];
            let ci = constraint as usize;
            let was = self.sat_weight[ci];
            self.sat_weight[ci] = was + coeff;
            self.free_count[ci] -= 1;
            if was < self.rhs[ci] && was + coeff >= self.rhs[ci] {
                self.deactivate(constraint);
            }
        }
        for k in 0..self.occ[(!lit).code()].len() {
            let ci = self.occ[(!lit).code()][k].constraint as usize;
            self.free_count[ci] -= 1;
        }
        self.trail.push(lit);
    }

    /// PR-3 `unwind_to`.
    pub fn unwind_to(&mut self, len: usize) {
        while self.trail.len() > len {
            let lit = self.trail.pop().expect("trail underflow");
            for k in 0..self.occ[(!lit).code()].len() {
                let ci = self.occ[(!lit).code()][k].constraint as usize;
                self.free_count[ci] += 1;
            }
            for k in (0..self.occ[lit.code()].len()).rev() {
                let Occ { constraint, coeff } = self.occ[lit.code()][k];
                let ci = constraint as usize;
                let was = self.sat_weight[ci];
                self.sat_weight[ci] = was - coeff;
                self.free_count[ci] += 1;
                if was >= self.rhs[ci] && was - coeff < self.rhs[ci] {
                    self.activate(constraint);
                }
            }
            self.path_cost -= self.lit_cost[lit.code()];
        }
    }
}

/// Maximum closure rounds (as in PR 3).
const MAX_CLOSURE_ROUNDS: usize = 8;

/// The PR-3 MIS kernel, frozen: view-filtered term iteration in every
/// pass, stable sorts, allocated explanations.
#[derive(Clone, Debug)]
pub struct Pr3MisBound {
    items: Vec<(f64, i64, i64)>,
    scored: Vec<(u32, f64)>,
    used_stamp: Vec<u32>,
    val_stamp: Vec<u32>,
    val: Vec<bool>,
    sel_stamp: Vec<u32>,
    sel_cost: Vec<f64>,
    need: Vec<i64>,
    free_sum: Vec<i64>,
    expl_rows: Vec<u32>,
    implied_here: Vec<Lit>,
    stamp: u32,
}

// Frozen PR-3 shape: the explicit impl mirrors the original source.
#[allow(clippy::derivable_impls)]
impl Default for Pr3MisBound {
    fn default() -> Pr3MisBound {
        Pr3MisBound {
            items: Vec::new(),
            scored: Vec::new(),
            used_stamp: Vec::new(),
            val_stamp: Vec::new(),
            val: Vec::new(),
            sel_stamp: Vec::new(),
            sel_cost: Vec::new(),
            need: Vec::new(),
            free_sum: Vec::new(),
            expl_rows: Vec::new(),
            implied_here: Vec::new(),
            stamp: 0,
        }
    }
}

enum ClosureStep {
    Done,
    Infeasible(usize),
}

impl Pr3MisBound {
    /// Creates the frozen kernel.
    pub fn new() -> Pr3MisBound {
        Pr3MisBound::default()
    }

    fn next_stamp(&mut self) -> u32 {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.used_stamp.iter_mut().for_each(|s| *s = 0);
            self.val_stamp.iter_mut().for_each(|s| *s = 0);
            self.sel_stamp.iter_mut().for_each(|s| *s = 0);
            self.stamp = 1;
        }
        self.stamp
    }

    #[inline]
    fn local_value(&self, val_epoch: u32, var: usize) -> Option<bool> {
        if self.val_stamp[var] == val_epoch {
            Some(self.val[var])
        } else {
            None
        }
    }

    fn recompute_rows(&mut self, sub: &Subproblem<'_>, active: &[ActiveEntry], val_epoch: u32) {
        self.need.clear();
        self.free_sum.clear();
        for e in active {
            let mut need = e.residual_rhs;
            let mut free = 0i64;
            for t in sub.free_terms(e.index as usize) {
                match self.local_value(val_epoch, t.lit.var().index()) {
                    Some(v) if v == t.lit.is_positive() => need -= t.coeff,
                    Some(_) => {}
                    None => free += t.coeff,
                }
            }
            self.need.push(need);
            self.free_sum.push(free);
        }
    }

    fn imply(
        &mut self,
        sub: &Subproblem<'_>,
        lit: Lit,
        source_row: u32,
        val_epoch: u32,
        implied_cost: &mut i64,
    ) -> bool {
        let v = lit.var().index();
        match self.local_value(val_epoch, v) {
            Some(cur) if cur == lit.is_positive() => true,
            Some(_) => {
                self.expl_rows.push(source_row);
                false
            }
            None => {
                self.val_stamp[v] = val_epoch;
                self.val[v] = lit.is_positive();
                *implied_cost += sub.lit_cost(lit);
                self.expl_rows.push(source_row);
                true
            }
        }
    }

    fn closure(
        &mut self,
        sub: &Subproblem<'_>,
        active: &[ActiveEntry],
        val_epoch: u32,
        implied_cost: &mut i64,
    ) -> ClosureStep {
        for _ in 0..MAX_CLOSURE_ROUNDS {
            self.recompute_rows(sub, active, val_epoch);
            let mut changed = false;
            for (k, e) in active.iter().enumerate() {
                if self.need[k] <= 0 {
                    continue;
                }
                if self.free_sum[k] < self.need[k] {
                    return ClosureStep::Infeasible(k);
                }
                let slack = self.free_sum[k] - self.need[k];
                let index = e.index as usize;
                let mut implied_here = std::mem::take(&mut self.implied_here);
                implied_here.clear();
                for t in sub.free_terms(index) {
                    if self.local_value(val_epoch, t.lit.var().index()).is_some() {
                        continue;
                    }
                    if t.coeff > slack {
                        implied_here.push(t.lit);
                    }
                }
                for i in 0..implied_here.len() {
                    changed = true;
                    if !self.imply(sub, implied_here[i], e.index, val_epoch, implied_cost) {
                        self.implied_here = implied_here;
                        return ClosureStep::Infeasible(k);
                    }
                }
                self.implied_here = implied_here;
            }
            if !changed {
                break;
            }
        }
        ClosureStep::Done
    }

    fn fractional_cover_cost(
        &mut self,
        sub: &Subproblem<'_>,
        entry: &ActiveEntry,
        need: i64,
        val_epoch: u32,
    ) -> f64 {
        let mut items = std::mem::take(&mut self.items);
        items.clear();
        for t in sub.free_terms(entry.index as usize) {
            if self.local_value(val_epoch, t.lit.var().index()).is_some() {
                continue;
            }
            let cost = sub.lit_cost(t.lit);
            items.push((cost as f64 / t.coeff as f64, t.coeff, cost));
        }
        // PR-3 shape: stable sort (allocates its merge buffer).
        items.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut left = need;
        let mut total = 0.0;
        for &(_, coeff, cost) in items.iter() {
            if left <= 0 {
                break;
            }
            if coeff >= left {
                total += cost as f64 * left as f64 / coeff as f64;
                left = 0;
            } else {
                total += cost as f64;
                left -= coeff;
            }
        }
        self.items = items;
        if left > 0 {
            f64::INFINITY
        } else {
            total
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn greedy_pass(
        &mut self,
        sub: &Subproblem<'_>,
        active: &[ActiveEntry],
        val_epoch: u32,
        implied_cost: i64,
        upper: Option<i64>,
        explanation: &mut Vec<Lit>,
    ) -> Result<f64, usize> {
        self.recompute_rows(sub, active, val_epoch);
        self.scored.clear();
        for (k, e) in active.iter().enumerate() {
            let need = self.need[k];
            if need <= 0 {
                continue;
            }
            let cost = self.fractional_cover_cost(sub, e, need, val_epoch);
            if cost.is_infinite() {
                return Err(k);
            }
            if cost > 0.0 {
                self.scored.push((k as u32, cost));
            }
        }
        self.scored.sort_by(|a, b| {
            let wa = a.1 / (1.0 + active[a.0 as usize].free_count as f64);
            let wb = b.1 / (1.0 + active[b.0 as usize].free_count as f64);
            wb.partial_cmp(&wa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
        });
        let sel_epoch = self.next_stamp();
        let scored = std::mem::take(&mut self.scored);
        let mut total = 0.0;
        for &(k, cost) in &scored {
            let e = &active[k as usize];
            let index = e.index as usize;
            let free_of_row = |b: &Pr3MisBound, t: &pbo_core::PbTerm| {
                b.local_value(val_epoch, t.lit.var().index()).is_none()
            };
            if sub
                .free_terms(index)
                .any(|t| free_of_row(self, &t) && self.used_stamp[t.lit.var().index()] == sel_epoch)
            {
                continue;
            }
            for t in sub.free_terms(index) {
                if free_of_row(self, &t) {
                    self.used_stamp[t.lit.var().index()] = sel_epoch;
                    self.sel_stamp[t.lit.var().index()] = sel_epoch;
                    self.sel_cost[t.lit.var().index()] = cost;
                }
            }
            total += cost;
            explanation.extend(sub.false_literals(index));
            if let Some(ub) = upper {
                if sub.path_cost() + implied_cost + ceil_eps(total) >= ub {
                    break;
                }
            }
        }
        self.scored = scored;
        Ok(total)
    }

    fn finish_explanation(&mut self, sub: &Subproblem<'_>, mut explanation: Vec<Lit>) -> Vec<Lit> {
        for &row in &self.expl_rows {
            explanation.extend(sub.false_literals(row as usize));
        }
        // PR-3 shape: stable sort.
        explanation.sort();
        explanation.dedup();
        explanation
    }

    /// The PR-3 `lower_bound` (fresh explanation allocation per call).
    pub fn lower_bound(&mut self, sub: &Subproblem<'_>, upper: Option<i64>) -> LbOutcome {
        let active = sub.active();
        let num_vars = sub.instance().num_vars();
        if self.used_stamp.len() < num_vars {
            self.used_stamp.resize(num_vars, 0);
            self.val_stamp.resize(num_vars, 0);
            self.val.resize(num_vars, false);
            self.sel_stamp.resize(num_vars, 0);
            self.sel_cost.resize(num_vars, 0.0);
        }
        self.expl_rows.clear();
        if self.stamp >= u32::MAX - 3 {
            self.stamp = u32::MAX;
            let _ = self.next_stamp();
        }
        let val_epoch = self.next_stamp();
        let mut implied_cost = 0i64;
        let has_dynamic = !sub.dynamic_rows().is_empty();

        let infeasible_outcome = |mb: &mut Pr3MisBound,
                                  sub: &Subproblem<'_>,
                                  row: u32,
                                  expl: Vec<Lit>,
                                  conditional: bool| {
            mb.expl_rows.push(row);
            let expl = mb.finish_explanation(sub, expl);
            match (conditional, upper) {
                (true, Some(u)) => LbOutcome::bound(u, expl),
                (true, None) => LbOutcome::bound(sub.path_cost(), expl),
                (false, _) => LbOutcome::infeasible(expl),
            }
        };

        match self.closure(sub, active, val_epoch, &mut implied_cost) {
            ClosureStep::Done => {}
            ClosureStep::Infeasible(k) => {
                return infeasible_outcome(self, sub, active[k].index, Vec::new(), has_dynamic);
            }
        }

        let mut explanation: Vec<Lit> = Vec::new();
        let mut total =
            match self.greedy_pass(sub, active, val_epoch, implied_cost, upper, &mut explanation) {
                Ok(t) => t,
                Err(k) => {
                    return infeasible_outcome(
                        self,
                        sub,
                        active[k].index,
                        explanation,
                        has_dynamic,
                    );
                }
            };
        let mut bound = sub.path_cost() + implied_cost + ceil_eps(total);

        if let (Some(u), Some(obj)) = (upper, sub.instance().objective()) {
            if bound < u {
                let path = sub.path_cost();
                let mut fixed_any = false;
                for &(c, l) in obj.terms() {
                    if c <= 0
                        || sub.assignment().lit_value(l) != pbo_core::Value::Unassigned
                        || self.local_value(val_epoch, l.var().index()).is_some()
                    {
                        continue;
                    }
                    let v = l.var().index();
                    let sel = if self.sel_stamp[v] == self.stamp { self.sel_cost[v] } else { 0.0 };
                    let independent = total - sel;
                    if path + implied_cost + ceil_eps(independent) + c >= u {
                        self.val_stamp[v] = val_epoch;
                        self.val[v] = !l.is_positive();
                        fixed_any = true;
                    }
                }
                if fixed_any {
                    match self.closure(sub, active, val_epoch, &mut implied_cost) {
                        ClosureStep::Done => {}
                        ClosureStep::Infeasible(k) => {
                            return infeasible_outcome(
                                self,
                                sub,
                                active[k].index,
                                explanation,
                                true,
                            );
                        }
                    }
                    match self.greedy_pass(
                        sub,
                        active,
                        val_epoch,
                        implied_cost,
                        upper,
                        &mut explanation,
                    ) {
                        Ok(t) => total = t,
                        Err(k) => {
                            return infeasible_outcome(
                                self,
                                sub,
                                active[k].index,
                                explanation,
                                true,
                            );
                        }
                    }
                    bound = bound.max(sub.path_cost() + implied_cost + ceil_eps(total));
                }
            }
        }
        let explanation = self.finish_explanation(sub, explanation);
        LbOutcome::bound(bound, explanation)
    }
}

#[inline]
fn ceil_eps(x: f64) -> i64 {
    (x - 1e-9).ceil() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_bounds::{LowerBound, MisBound, ResidualState};
    use pbo_core::Assignment;

    #[test]
    fn frozen_baseline_agrees_with_the_live_kernel() {
        // The baseline is only a fair measurement if it computes the
        // same outcomes the live kernel computes.
        let instance = crate::family_instances("synthesis", 1).remove(0);
        let mut a = Assignment::new(instance.num_vars());
        let mut state = ResidualState::new(&instance);
        let mut replica = Pr3Residual::new(&instance);
        let mut live = MisBound::new();
        let mut frozen = Pr3MisBound::new();
        for v in (0..instance.num_vars()).step_by(4) {
            let lit = pbo_core::Var::new(v).lit(v % 8 == 0);
            a.assign_lit(lit);
            state.apply(&instance, lit);
            replica.apply(lit);
            let view = state.view(&instance, &a);
            let new = live.lower_bound(&view, Some(1_000));
            let old = frozen.lower_bound(&view, Some(1_000));
            assert_eq!(new, old, "kernels diverged at depth {}", state.len());
        }
        assert_eq!(replica.len(), state.len());
        replica.unwind_to(0);
        state.unwind_to(&instance, 0);
        assert_eq!(replica.num_active(), state.num_active());
        assert!(replica.is_empty(), "everything was unwound");
    }
}
