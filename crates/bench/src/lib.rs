//! Benchmark harness reproducing the DATE'05 evaluation.
//!
//! The paper's single table (Table 1) compares seven solver columns —
//! PBS, Galena, CPLEX, and bsolo with four lower-bound configurations —
//! over four benchmark families; this reproduction adds columns for the
//! adaptive bound ladder and the LS-seeded portfolio (anytime) mode.
//! This crate provides:
//!
//! * [`SolverKind`] — the nine columns, each mapped to the workspace
//!   solver that reproduces its algorithm class;
//! * [`family_instances`] — the four families, regenerated synthetically
//!   (see `pbo_benchgen`) with ten seeded instances each;
//! * [`run_table`] / [`format_table`] — the matrix runner and the
//!   paper-style textual table (times for solved instances, `ub <v>` at
//!   budget exhaustion, a `#Solved` summary row).
//!
//! The `table1` binary drives everything:
//!
//! ```text
//! cargo run --release -p pbo-bench --bin table1 -- --family all --timeout-ms 5000
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use std::time::Instant;

use pbo_benchgen::{AccSchedParams, GroutParams, PtlCmosParams, SynthesisParams};
use pbo_core::Instance;
use pbo_solver::{
    Bsolo, BsoloOptions, Budget, IncumbentCell, LbMethod, LinearSearch, LocalSearch, LsOptions,
    MilpSolver, Portfolio, PortfolioOptions, SolveResult, SolveStatus, SolveStrategy,
};

pub mod compare;
pub mod json;
pub mod parse;
pub mod pr3;

pub use json::{
    summarize_bound_ladder, summarize_par_bb, summarize_parls, summarize_portfolio, AblationSide,
    BoundLadderProbe, BoundLadderRun, BoundLadderSummary, DynRowsSide, DynamicRowsAblation,
    ParBbProbe, ParBbRun, ParBbSummary, ParlsProbe, ParlsSummary, PortfolioProbe, PortfolioSummary,
    ResidualAblation,
};

/// One column of Table 1.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SolverKind {
    /// PBS-like SAT linear search.
    Pbs,
    /// Galena-like SAT linear search (probing + cardinality cost cuts).
    Galena,
    /// Generic MILP branch-and-bound (the CPLEX stand-in).
    Cplex,
    /// bsolo without lower bounding ("plain").
    BsoloPlain,
    /// bsolo with the MIS bound.
    BsoloMis,
    /// bsolo with the Lagrangian bound.
    BsoloLgr,
    /// bsolo with the LP-relaxation bound.
    BsoloLpr,
    /// bsolo with the adaptive bound ladder (cheap Lagrangian rung,
    /// escalating to the LP relaxation inside the online window).
    BsoloAdaptive,
    /// LS-seeded portfolio: `pbo-ls` local search warm-starts bsolo-LPR's
    /// upper bound (the anytime configuration).
    BsoloPortfolio,
}

impl SolverKind {
    /// All nine columns: the paper's seven plus the adaptive ladder and
    /// the portfolio mode.
    pub const ALL: [SolverKind; 9] = [
        SolverKind::Pbs,
        SolverKind::Galena,
        SolverKind::Cplex,
        SolverKind::BsoloPlain,
        SolverKind::BsoloMis,
        SolverKind::BsoloLgr,
        SolverKind::BsoloLpr,
        SolverKind::BsoloAdaptive,
        SolverKind::BsoloPortfolio,
    ];

    /// Column header.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Pbs => "pbs",
            SolverKind::Galena => "galena",
            SolverKind::Cplex => "cplex",
            SolverKind::BsoloPlain => "plain",
            SolverKind::BsoloMis => "MIS",
            SolverKind::BsoloLgr => "LGR",
            SolverKind::BsoloLpr => "LPR",
            SolverKind::BsoloAdaptive => "adaptive",
            SolverKind::BsoloPortfolio => "portfolio",
        }
    }

    /// Runs this solver on an instance under a budget.
    pub fn run(self, instance: &Instance, budget: Budget) -> SolveResult {
        match self {
            SolverKind::Pbs => LinearSearch::pbs_like(budget).solve(instance),
            SolverKind::Galena => LinearSearch::galena_like(budget).solve(instance),
            SolverKind::Cplex => MilpSolver::new(budget).solve(instance),
            SolverKind::BsoloPlain => {
                Bsolo::new(BsoloOptions::with_lb(LbMethod::None).budget(budget)).solve(instance)
            }
            SolverKind::BsoloMis => {
                Bsolo::new(BsoloOptions::with_lb(LbMethod::Mis).budget(budget)).solve(instance)
            }
            SolverKind::BsoloLgr => {
                Bsolo::new(BsoloOptions::with_lb(LbMethod::Lagrangian).budget(budget))
                    .solve(instance)
            }
            SolverKind::BsoloLpr => {
                Bsolo::new(BsoloOptions::with_lb(LbMethod::Lpr).budget(budget)).solve(instance)
            }
            SolverKind::BsoloAdaptive => {
                Bsolo::new(BsoloOptions::with_lb(LbMethod::Adaptive).budget(budget)).solve(instance)
            }
            SolverKind::BsoloPortfolio => Portfolio::new(portfolio_options(budget)).solve(instance),
        }
    }
}

/// The portfolio configuration used by the benchmark columns and probes:
/// LS-seeded bsolo-LPR with a deterministic LS step budget. The explicit
/// LS time limit keeps the seeding phase step-bounded on moderately slow
/// machines instead of letting the budget/5 wall-clock cap truncate it —
/// the seed incumbent, and therefore the warm node count, stays
/// machine-independent — while never exceeding the table's own
/// per-instance budget, so the portfolio column remains comparable to
/// the other seven.
pub fn portfolio_options(budget: Budget) -> PortfolioOptions {
    let ls_cap = budget.time.map_or(Duration::from_secs(10), |t| t.min(Duration::from_secs(10)));
    PortfolioOptions {
        strategy: SolveStrategy::LsSeeded,
        bsolo: BsoloOptions::with_lb(LbMethod::Lpr).budget(budget),
        ls: LsOptions { max_steps: 50_000, time_limit: Some(ls_cap), ..LsOptions::default() },
        ..PortfolioOptions::default()
    }
}

/// The benchmark families of Table 1.
pub const FAMILIES: [&str; 4] = ["grout", "ptlcmos", "synthesis", "acc"];

/// Generates the instances of one family (`seeds` instances).
///
/// # Panics
///
/// Panics on an unknown family name.
pub fn family_instances(family: &str, seeds: u64) -> Vec<Instance> {
    match family {
        "grout" => (0..seeds)
            .map(|s| {
                GroutParams {
                    width: 6,
                    height: 6,
                    nets: 22,
                    paths_per_net: 6,
                    capacity: 3,
                    bend_penalty: 2,
                }
                .generate(s)
            })
            .collect(),
        "ptlcmos" => (0..seeds)
            .map(|s| {
                PtlCmosParams { gates: 90, fanin: 2.2, ..PtlCmosParams::default() }.generate(s)
            })
            .collect(),
        "synthesis" => (0..seeds)
            .map(|s| {
                SynthesisParams {
                    primes: 70,
                    minterms: 110,
                    cover_density: 4.0,
                    exclusions: 10,
                    ..SynthesisParams::default()
                }
                .generate(s)
            })
            .collect(),
        "acc" => {
            (0..seeds).map(|s| AccSchedParams { teams: 10, home_away: true }.generate(s)).collect()
        }
        other => panic!("unknown family `{other}`"),
    }
}

/// One row of the reproduced table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Instance name.
    pub instance: String,
    /// Results per solver, in [`SolverKind::ALL`] order.
    pub cells: Vec<SolveResult>,
}

/// Runs the full solver matrix over a set of instances.
pub fn run_table(instances: &[Instance], budget: Budget) -> Vec<Row> {
    instances
        .iter()
        .map(|inst| Row {
            instance: inst.name().to_string(),
            cells: SolverKind::ALL.iter().map(|s| s.run(inst, budget)).collect(),
        })
        .collect()
}

/// Number of instances each solver solved to completion.
pub fn count_solved(rows: &[Row]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for (i, kind) in SolverKind::ALL.iter().enumerate() {
        let solved = rows
            .iter()
            .filter(|r| {
                matches!(
                    r.cells[i].status,
                    pbo_solver::SolveStatus::Optimal | pbo_solver::SolveStatus::Infeasible
                )
            })
            .count();
        counts.insert(kind.name(), solved);
    }
    counts
}

/// Formats rows the way the paper's Table 1 does.
pub fn format_table(rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<24} {:>8}", "Benchmark", "Sol.");
    for kind in SolverKind::ALL {
        let _ = write!(out, " {:>12}", kind.name());
    }
    let _ = writeln!(out);
    for row in rows {
        // Best known cost across solvers as the "Sol." column.
        let best = row.cells.iter().filter(|c| c.is_optimal()).filter_map(|c| c.best_cost).min();
        let sol = match best {
            Some(v) => v.to_string(),
            None => {
                if row.cells.iter().any(|c| c.status == pbo_solver::SolveStatus::Infeasible) {
                    "UNSAT".to_string()
                } else {
                    "-".to_string()
                }
            }
        };
        let _ = write!(out, "{:<24} {:>8}", row.instance, sol);
        for cell in &row.cells {
            let _ = write!(out, " {:>12}", cell.table_cell());
        }
        let _ = writeln!(out);
    }
    // #Solved summary row.
    let counts = count_solved(rows);
    let _ = write!(out, "{:<24} {:>8}", "#Solved", rows.len());
    for kind in SolverKind::ALL {
        let _ = write!(out, " {:>12}", counts[kind.name()]);
    }
    let _ = writeln!(out);
    out
}

/// Convenience: time-limited budget in milliseconds.
pub fn budget_ms(ms: u64) -> Budget {
    Budget::time_limit(Duration::from_millis(ms))
}

/// Runs the portfolio probe on Table-1-style synthesis instances: for
/// each instance, (1) cold bsolo-LPR as the baseline, (2) the LS-seeded
/// portfolio with its incumbent trajectory, (3) LS alone under
/// `ls_steps`, measuring time-to-target, node counts and the LS
/// optimality gap — the numbers behind the anytime-solving claims in
/// `BENCH_table1.json` and the CI gates.
pub fn run_portfolio_probe(
    instances: &[Instance],
    budget: Budget,
    ls_steps: u64,
) -> Vec<PortfolioProbe> {
    instances
        .iter()
        .map(|inst| {
            // Cold baseline: no warm start.
            let exact = Bsolo::new(BsoloOptions::with_lb(LbMethod::Lpr).budget(budget)).solve(inst);
            let target_cost = exact.best_cost;
            // Warm side: LS-seeded portfolio, trajectory observed through
            // a caller-owned cell.
            let cell = IncumbentCell::new();
            let start = Instant::now();
            let warm = Portfolio::new(portfolio_options(budget)).solve_with_cell(inst, &cell);
            let anytime = cell.history_since(start);
            let warm_time_to_target =
                target_cost.and_then(|t| anytime.iter().find(|&&(_, c)| c <= t).map(|&(d, _)| d));
            // LS alone, for the quality gate.
            let ls_start = Instant::now();
            let ls =
                LocalSearch::new(inst, LsOptions { max_steps: ls_steps, ..LsOptions::default() })
                    .run(None, None);
            let ls_time = ls_start.elapsed();
            let ls_gap = match (ls.best_cost, target_cost) {
                (Some(l), Some(t)) if t > 0 => Some((l - t) as f64 / t as f64),
                (Some(l), Some(t)) => Some(if l <= t { 0.0 } else { f64::INFINITY }),
                _ => None,
            };
            PortfolioProbe {
                instance: inst.name().to_string(),
                target_cost,
                exact_optimal: exact.status == SolveStatus::Optimal,
                exact_time: exact.stats.solve_time,
                exact_nodes: exact.stats.decisions,
                warm_time_to_target,
                warm_time: warm.stats.solve_time,
                warm_nodes: warm.stats.decisions,
                warm_cost: warm.best_cost,
                ls_cost: ls.best_cost,
                ls_time,
                ls_gap,
                anytime,
            }
        })
        .collect()
}

/// Runs the ParLS probe: on each instance, a single deterministic LS
/// worker vs a diversified `workers`-strong pool under the same
/// per-worker step budget ([`pbo_solver::run_pool_steps`]; worker 0 of
/// the pool replays the single run verbatim, so the pool can never lose
/// — the property the CI gate asserts). `targets[i]` is the exact
/// solver's cost for `instances[i]` (reused from the portfolio probe so
/// the exact side is solved once).
pub fn run_parls_probe(
    instances: &[Instance],
    targets: &[Option<i64>],
    ls_steps: u64,
    workers: usize,
) -> Vec<ParlsProbe> {
    let base = LsOptions::default();
    instances
        .iter()
        .zip(targets)
        .map(|(inst, &target_cost)| {
            let pool = pbo_solver::run_pool_steps(inst, &base, workers, ls_steps);
            // Worker 0 of the pool runs the base options verbatim, so
            // its result *is* the single-worker run — no second pass.
            let single_cost = pool.worker_costs[0];
            let gap = |cost: Option<i64>| match (cost, target_cost) {
                (Some(l), Some(t)) if t > 0 => Some((l - t) as f64 / t as f64),
                (Some(l), Some(t)) => Some(if l <= t { 0.0 } else { f64::INFINITY }),
                _ => None,
            };
            ParlsProbe {
                instance: inst.name().to_string(),
                target_cost,
                single_cost,
                pool_cost: pool.best_cost,
                single_gap: gap(single_cost),
                pool_gap: gap(pool.best_cost),
            }
        })
        .collect()
}

/// Runs the parallel-exact (par_bb) scaling probe: the whole `pool` is
/// first solved by the sequential solver ([`pbo_solver::ParBsolo`] with
/// one worker — bit-identical to `Bsolo` by delegation), the `keep`
/// hardest instances (largest sequential trees) are selected, and those
/// are solved again at every worker count in `worker_counts` under the
/// same budget. The gated claims, on the hardest instances: no pool
/// ever returns a worse optimum, total node count (head start +
/// splitter lookahead + all workers) stays within 2x of the sequential
/// tree at every count — i.e. cube duplication and weaker mid-flight
/// incumbents do not blow the search up, they only re-partition it —
/// and the largest pool's wall time beats the sequential run by the
/// floor the CI gate sets (re-splitting keeps workers fed, clause
/// sharing stops them re-deriving each other's refutations).
///
/// Hardest-first matters: parallel search pays fixed costs (the serial
/// head start, per-cube engine setup, one first-descent per worker)
/// that only amortize on trees worth splitting — measured on the
/// synthesis family, the two hardest seeds run at ≈0.8–1.5x sequential
/// nodes with a real wall-clock speedup, while trivial sub-100 ms seeds
/// can triple their node count and still lose time. Parallelizing tiny
/// trees is simply the wrong tool, and the probe documents the regime
/// the tool is for.
///
/// The probe runs the MIS configuration: it proves optimality on the
/// synthesis pool well inside the harness budgets, so the gate compares
/// proven optima and complete trees on both sides (a budget-truncated
/// comparison would measure incumbent luck, not search partitioning).
pub fn run_par_bb_probe(
    pool: &[Instance],
    budget: Budget,
    worker_counts: &[usize],
    keep: usize,
) -> Vec<ParBbProbe> {
    let options = BsoloOptions::with_lb(LbMethod::Mis).budget(budget);
    let seq_runs: Vec<SolveResult> =
        pool.iter().map(|inst| pbo_solver::ParBsolo::new(options.clone(), 1).solve(inst)).collect();
    let mut order: Vec<usize> = (0..pool.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(seq_runs[i].stats.decisions));
    order.truncate(keep);
    let run_of = |workers: usize, result: &SolveResult| ParBbRun {
        workers,
        cost: result.best_cost,
        optimal: result.status == SolveStatus::Optimal,
        time: result.stats.solve_time,
        nodes: result.stats.decisions,
        resplits: result.stats.resplits,
        clauses_shared: result.stats.clauses_shared,
        clauses_imported: result.stats.clauses_imported,
        depth_truncated: result.stats.split_depth_truncated,
        queue_wait: result.stats.queue_wait_total,
        nodes_per_worker: result.stats.nodes_per_worker.clone(),
    };
    order
        .into_iter()
        .map(|i| {
            let inst = &pool[i];
            let runs = worker_counts
                .iter()
                .map(|&w| {
                    // The ranking pass already ran every instance once
                    // at one worker; reuse it as the scaling baseline.
                    if w == 1 {
                        run_of(1, &seq_runs[i])
                    } else {
                        run_of(w, &pbo_solver::ParBsolo::new(options.clone(), w).solve(inst))
                    }
                })
                .collect();
            ParBbProbe { instance: inst.name().to_string(), runs }
        })
        .collect()
}

/// Runs the scheduler-scaling row: the deep-split stress instance
/// (`pbo_benchgen::DeepSplitParams`, a 1k+ open-cube frontier at the
/// pinned `split_target`) solved by the work-stealing scheduler at each
/// probed worker count. Where `run_par_bb_probe` asks "does splitting
/// the search pay off", this row asks "does the scheduler keep up when
/// the frontier is three orders of magnitude wider than the worker
/// pool" — cube hand-off volume is the load, per-cube search is noise.
/// `available_parallelism` is recorded alongside because worker counts
/// beyond the host's cores measure oversubscription: on a single-core
/// CI runner every multi-worker figure shares one CPU, and only the
/// queue-wait column (idle time, not progress) is expected to stay flat.
pub fn run_scheduler_scaling_probe(
    seed: u64,
    budget: Budget,
    worker_counts: &[usize],
    split_target: usize,
) -> json::SchedulerScaling {
    let instance = pbo_benchgen::DeepSplitParams::default().generate(seed);
    let frontier = pbo_solver::CubeSplitter::split(&instance, split_target).open.len();
    let runs = worker_counts
        .iter()
        .map(|&w| {
            let mut options = BsoloOptions::with_lb(LbMethod::Mis).budget(budget);
            options.split_target = Some(split_target);
            let result = pbo_solver::ParBsolo::new(options, w).solve(&instance);
            json::SchedulerScalingRun {
                workers: w,
                cost: result.best_cost,
                optimal: result.status == SolveStatus::Optimal,
                time: result.stats.solve_time,
                nodes: result.stats.decisions,
                steals: result.stats.steals,
                injections: result.stats.injections,
                resplits: result.stats.resplits,
                queue_wait: result.stats.queue_wait_total,
            }
        })
        .collect();
    json::SchedulerScaling {
        instance: instance.name().to_string(),
        frontier,
        split_target,
        available_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()),
        runs,
    }
}

/// Runs the bound-ladder probe: each instance solved three times under
/// the same budget — fixed Lagrangian (the ladder's cheap rung), fixed
/// LPR (the expensive rung) and the adaptive ladder — recording wall
/// time, tree size and per-method bound effort. The gated claims
/// (`crate::compare::evaluate_bound_ladder`): adaptive proves the same
/// optima as the best fixed rung, is never worse in wall time than that
/// rung beyond a coarse slack, and beats fixed LPR outright on at least
/// one gated seed — i.e. the ladder keeps LGR's price where LGR
/// suffices and buys LPR's strength only where it pays.
pub fn run_bound_ladder_probe(instances: &[Instance], budget: Budget) -> Vec<BoundLadderProbe> {
    let methods: [(&'static str, LbMethod); 3] =
        [("lgr", LbMethod::Lagrangian), ("lpr", LbMethod::Lpr), ("adaptive", LbMethod::Adaptive)];
    instances
        .iter()
        .map(|inst| {
            let runs = methods
                .iter()
                .map(|&(name, method)| {
                    let result =
                        Bsolo::new(BsoloOptions::with_lb(method).budget(budget)).solve(inst);
                    BoundLadderRun {
                        method: name,
                        cost: result.best_cost,
                        optimal: result.status == SolveStatus::Optimal,
                        time: result.stats.solve_time,
                        nodes: result.stats.decisions,
                        lb_calls: result.stats.lb_calls,
                        lb_time: result.stats.lb_time_total,
                        escalations: result.stats.lb_escalations,
                    }
                })
                .collect();
            BoundLadderProbe { instance: inst.name().to_string(), runs }
        })
        .collect()
}

/// Runs the rebuild-vs-incremental residual-state ablation on one
/// instance: the same solver configuration twice, differing only in
/// [`pbo_solver::ResidualMode`], with per-node subproblem-maintenance
/// time recorded on both sides.
pub fn run_residual_ablation(
    instance: &Instance,
    lb_method: LbMethod,
    decisions: u64,
) -> ResidualAblation {
    use pbo_solver::ResidualMode;
    let budget = Budget { decisions: Some(decisions), ..Budget::default() };
    let side = |mode: ResidualMode| {
        let result = Bsolo::new(BsoloOptions {
            residual_mode: mode,
            ..BsoloOptions::with_lb(lb_method).budget(budget)
        })
        .solve(instance);
        AblationSide {
            lb_calls: result.stats.lb_calls,
            sub_time: result.stats.sub_time_total,
            lb_time: result.stats.lb_time_total,
            decisions: result.stats.decisions,
        }
    };
    ResidualAblation {
        instance: instance.name().to_string(),
        lb_method: lb_method.name(),
        rebuild: side(ResidualMode::Rebuild),
        incremental: side(ResidualMode::Incremental),
    }
}

/// Runs the dynamic-rows ablation on one instance: the same solver
/// configuration twice, differing only in `BsoloOptions::dynamic_rows`,
/// recording B&B nodes and the mean per-node bound margin — the numbers
/// behind the "learned cuts tighten every bound" claim and its CI gate.
pub fn run_dynamic_rows_ablation(
    instance: &Instance,
    lb_method: LbMethod,
    budget: Budget,
) -> DynamicRowsAblation {
    let side = |dynamic_rows: bool| {
        let result = Bsolo::new(BsoloOptions {
            dynamic_rows,
            ..BsoloOptions::with_lb(lb_method).budget(budget)
        })
        .solve(instance);
        DynRowsSide {
            solved: result.is_optimal(),
            decisions: result.stats.decisions,
            lb_calls: result.stats.lb_calls,
            bound_conflicts: result.stats.bound_conflicts,
            mean_lb_margin: if result.stats.lb_calls == 0 {
                0.0
            } else {
                result.stats.lb_margin_sum as f64 / result.stats.lb_calls as f64
            },
            solve_time: result.stats.solve_time,
        }
    };
    DynamicRowsAblation {
        instance: instance.name().to_string(),
        lb_method: lb_method.name(),
        off: side(false),
        on: side(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_generate() {
        for f in FAMILIES {
            let insts = family_instances(f, 2);
            assert_eq!(insts.len(), 2);
        }
    }

    #[test]
    fn table_runs_on_tiny_budget() {
        let insts = family_instances("synthesis", 1);
        let rows = run_table(&insts, Budget::conflict_limit(5));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cells.len(), 9);
        let text = format_table(&rows);
        assert!(text.contains("#Solved"));
        assert!(text.contains("LPR"));
        assert!(text.contains("portfolio"));
    }

    #[test]
    fn portfolio_probe_measures_both_sides() {
        let insts = family_instances("synthesis", 1);
        let probes = run_portfolio_probe(&insts[..1], budget_ms(2_000), 20_000);
        assert_eq!(probes.len(), 1);
        let p = &probes[0];
        assert!(p.target_cost.is_some(), "synthesis instances are feasible");
        // The warm side must reach the exact side's final cost (it ran
        // under the same budget with a head start).
        assert!(p.warm_cost.is_some());
        assert!(p.ls_cost.is_some(), "LS must find something feasible");
    }
}
