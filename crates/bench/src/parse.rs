//! A minimal JSON reader for the benchmark-comparison tooling.
//!
//! The workspace builds offline with no serde; `bench_compare` only needs
//! to *read back* the reports this crate itself writes, so a small
//! recursive-descent parser over a value enum is plenty. It accepts
//! standard JSON (objects, arrays, strings with the escapes
//! [`crate::json::escape`] emits, numbers, booleans, null) and rejects
//! anything else with a byte offset.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (reports only use doubles and small integers).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order irrelevant to the tooling).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member access for objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Error with the byte offset where parsing failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after the document"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError { offset, message: message.to_string() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", ch as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>().map(JsonValue::Number).map_err(|_| err(start, "malformed number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "malformed \\u escape"))?;
                        // Surrogate pairs never occur in our reports;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), JsonValue::Number(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), JsonValue::String("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        let items = v.get("a").unwrap().items().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[2].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn roundtrips_own_reports() {
        use crate::json::escape;
        let text = format!("{{\"k\": \"{}\"}}", escape("a\"b\\c\nd"));
        let v = parse(&text).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn parses_a_real_rendered_report() {
        use crate::json::render_report;
        let report = render_report(100, 1, &[], None);
        let v = parse(&report).unwrap();
        assert_eq!(v.get("budget_ms").and_then(JsonValue::as_f64), Some(100.0));
        assert_eq!(v.get("portfolio"), Some(&JsonValue::Null));
    }
}
