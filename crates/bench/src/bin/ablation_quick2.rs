//! Second round: A2 on structurally deep instances, A4 under MIS.
use pbo_bench::budget_ms;
use pbo_benchgen::{GroutParams, PtlCmosParams};
use pbo_core::InstanceBuilder;
use pbo_solver::{Bsolo, BsoloOptions, LbMethod};

fn main() {
    let b = budget_ms(10000);
    // A2 on ptlcmos (deep search, sparse conflicts).
    let ptl = PtlCmosParams { gates: 90, fanin: 2.2, ..PtlCmosParams::default() }.generate(0);
    for (name, learn) in [("learning", true), ("chrono", false)] {
        let r = Bsolo::new(BsoloOptions {
            bound_conflict_learning: learn,
            ..BsoloOptions::with_lb(LbMethod::Lpr).budget(b)
        })
        .solve(&ptl);
        println!(
            "A2 ptlcmos {name}: {:?}/{:.3}s/{} dec/{} bconf",
            r.status,
            r.stats.solve_time.as_secs_f64(),
            r.stats.decisions,
            r.stats.bound_conflicts
        );
    }
    // A2 on a costed-core + free-tail instance (the sec. 4 motivating shape).
    let mut ib = InstanceBuilder::new();
    let costed = ib.new_vars(14);
    let free = ib.new_vars(40);
    ib.add_at_least(4, costed[..7].iter().map(|v| v.positive()));
    ib.add_at_least(4, costed[7..].iter().map(|v| v.positive()));
    for w in free.windows(3) {
        ib.add_at_least(1, w.iter().map(|v| v.positive()));
        ib.add_at_most(2, w.iter().map(|v| v.positive()));
    }
    ib.minimize(costed.iter().enumerate().map(|(i, v)| ((i % 7 + 1) as i64, v.positive())));
    let tail = ib.build().unwrap();
    for (name, learn) in [("learning", true), ("chrono", false)] {
        let r = Bsolo::new(BsoloOptions {
            bound_conflict_learning: learn,
            probing: false,
            branching: pbo_solver::Branching::Vsids,
            ..BsoloOptions::with_lb(LbMethod::Mis).budget(b)
        })
        .solve(&tail);
        println!(
            "A2 free-tail {name}: {:?}/{:.3}s/{} dec/{} bconf/bj {}",
            r.status,
            r.stats.solve_time.as_secs_f64(),
            r.stats.decisions,
            r.stats.bound_conflicts,
            r.stats.backjump_levels
        );
    }
    // A4 under MIS on grout.
    let g = GroutParams {
        width: 6,
        height: 6,
        nets: 22,
        paths_per_net: 6,
        capacity: 3,
        bend_penalty: 2,
    }
    .generate(2);
    for (name, kn, ca) in
        [("all_cuts", true, true), ("knapsack_only", true, false), ("no_cuts", false, false)]
    {
        let r = Bsolo::new(BsoloOptions {
            knapsack_cuts: kn,
            cardinality_cuts: ca,
            ..BsoloOptions::with_lb(LbMethod::Mis).budget(b)
        })
        .solve(&g);
        println!(
            "A4 mis {name}: {:?}/{:.3}s/{} dec",
            r.status,
            r.stats.solve_time.as_secs_f64(),
            r.stats.decisions
        );
    }
}
