//! Reproduces Table 1 of the paper: seven solver columns over the four
//! benchmark families, with per-instance budgets.
//!
//! ```text
//! cargo run --release -p pbo-bench --bin table1 -- \
//!     [--family grout|ptlcmos|synthesis|acc|all] \
//!     [--timeout-ms N] [--seeds N]
//! ```

use pbo_bench::{budget_ms, family_instances, format_table, run_table, FAMILIES};

fn main() {
    let mut family = String::from("all");
    let mut timeout_ms = 5_000u64;
    let mut seeds = 10u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--family" => family = args.next().expect("--family needs a value"),
            "--timeout-ms" => {
                timeout_ms = args
                    .next()
                    .expect("--timeout-ms needs a value")
                    .parse()
                    .expect("bad timeout")
            }
            "--seeds" => {
                seeds = args.next().expect("--seeds needs a value").parse().expect("bad seeds")
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let families: Vec<&str> = if family == "all" {
        FAMILIES.to_vec()
    } else {
        vec![Box::leak(family.clone().into_boxed_str())]
    };
    println!(
        "Reproduction of DATE'05 Table 1 — budget {} ms/instance, {} instances/family",
        timeout_ms, seeds
    );
    println!();
    let mut all_rows = Vec::new();
    for fam in families {
        println!("== family: {fam} ==");
        let instances = family_instances(fam, seeds);
        let rows = run_table(&instances, budget_ms(timeout_ms));
        print!("{}", format_table(&rows));
        println!();
        all_rows.extend(rows);
    }
    if all_rows.len() > seeds as usize {
        println!("== overall ==");
        let counts = pbo_bench::count_solved(&all_rows);
        print!("#Solved of {}: ", all_rows.len());
        for kind in pbo_bench::SolverKind::ALL {
            print!("{}={} ", kind.name(), counts[kind.name()]);
        }
        println!();
    }
}
