//! Reproduces Table 1 of the paper: seven solver columns over the four
//! benchmark families, with per-instance budgets. Alongside the textual
//! table it writes `BENCH_table1.json` — per-instance wall time, nodes,
//! lower-bound calls and lower-bound / subproblem-maintenance time —
//! plus the rebuild-vs-incremental residual-state ablation, so future
//! PRs have a perf trajectory to compare against.
//!
//! ```text
//! cargo run --release -p pbo-bench --bin table1 -- \
//!     [--family grout|ptlcmos|synthesis|acc|all] \
//!     [--timeout-ms N] [--seeds N] [--json PATH]
//! ```

use pbo_bench::{
    budget_ms, family_instances, format_table, json, run_bound_ladder_probe,
    run_dynamic_rows_ablation, run_par_bb_probe, run_parls_probe, run_portfolio_probe,
    run_residual_ablation, run_scheduler_scaling_probe, run_table, summarize_bound_ladder,
    summarize_par_bb, summarize_parls, summarize_portfolio, FAMILIES,
};
use pbo_benchgen::SynthesisParams;
use pbo_solver::LbMethod;

fn main() {
    let mut family = String::from("all");
    let mut timeout_ms = 5_000u64;
    let mut seeds = 10u64;
    let mut json_path = String::from("BENCH_table1.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--family" => family = args.next().expect("--family needs a value"),
            "--timeout-ms" => {
                timeout_ms =
                    args.next().expect("--timeout-ms needs a value").parse().expect("bad timeout")
            }
            "--seeds" => {
                seeds = args.next().expect("--seeds needs a value").parse().expect("bad seeds")
            }
            "--json" => json_path = args.next().expect("--json needs a value"),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let families: Vec<&str> = if family == "all" {
        FAMILIES.to_vec()
    } else {
        vec![Box::leak(family.clone().into_boxed_str())]
    };
    println!(
        "Reproduction of DATE'05 Table 1 — budget {} ms/instance, {} instances/family",
        timeout_ms, seeds
    );
    println!();
    let mut all_rows = Vec::new();
    let mut family_rows = Vec::new();
    for fam in families {
        println!("== family: {fam} ==");
        let instances = family_instances(fam, seeds);
        let rows = run_table(&instances, budget_ms(timeout_ms));
        print!("{}", format_table(&rows));
        println!();
        all_rows.extend(rows.clone());
        family_rows.push((fam.to_string(), rows));
    }
    if all_rows.len() > seeds as usize {
        println!("== overall ==");
        let counts = pbo_bench::count_solved(&all_rows);
        print!("#Solved of {}: ", all_rows.len());
        for kind in pbo_bench::SolverKind::ALL {
            print!("{}={} ", kind.name(), counts[kind.name()]);
        }
        println!();
        println!();
    }

    // Residual-state ablation on a Table-1-style synthesis instance: the
    // per-node maintenance cost is the number this PR's tentpole moves.
    let ablation_instance = SynthesisParams {
        primes: 70,
        minterms: 110,
        cover_density: 4.0,
        exclusions: 10,
        ..SynthesisParams::default()
    }
    .generate(0);
    let ablation = run_residual_ablation(&ablation_instance, LbMethod::Mis, 4_000);
    println!("== residual-state ablation ({}) ==", ablation.instance);
    println!(
        "rebuild:     {:>8.0} ns/call over {} lb calls",
        ablation.rebuild.sub_ns_per_call(),
        ablation.rebuild.lb_calls
    );
    println!(
        "incremental: {:>8.0} ns/call over {} lb calls",
        ablation.incremental.sub_ns_per_call(),
        ablation.incremental.lb_calls
    );
    println!("maintenance speedup: {:.2}x", ablation.maintenance_speedup());

    // Dynamic-rows ablation: the same solve with the learned cost cuts
    // folded into the residual problem (on) vs ignored by the bounds
    // (off) — nodes and per-node bound strength are the gated numbers.
    // A decision budget (not wall clock) keeps both sides deterministic,
    // so the CI gate compares exact node counts, machine speed aside.
    let dyn_rows_instance = SynthesisParams {
        primes: 70,
        minterms: 110,
        cover_density: 4.0,
        exclusions: 10,
        ..SynthesisParams::default()
    }
    .generate(1);
    let dyn_rows_budget =
        pbo_solver::Budget { decisions: Some(30_000), ..pbo_solver::Budget::default() };
    let dyn_rows = run_dynamic_rows_ablation(&dyn_rows_instance, LbMethod::Mis, dyn_rows_budget);
    println!();
    println!("== dynamic-rows ablation ({}, {}) ==", dyn_rows.instance, dyn_rows.lb_method);
    println!(
        "rows off: {:>6} nodes | {:>6} lb calls | {:>5} bound conflicts | margin {:>8.2}",
        dyn_rows.off.decisions,
        dyn_rows.off.lb_calls,
        dyn_rows.off.bound_conflicts,
        dyn_rows.off.mean_lb_margin,
    );
    println!(
        "rows on:  {:>6} nodes | {:>6} lb calls | {:>5} bound conflicts | margin {:>8.2}",
        dyn_rows.on.decisions,
        dyn_rows.on.lb_calls,
        dyn_rows.on.bound_conflicts,
        dyn_rows.on.mean_lb_margin,
    );

    // Portfolio probe on Table-1-style synthesis instances: cold
    // bsolo-LPR vs LS-seeded portfolio vs LS alone — the anytime-solving
    // numbers (time-to-target, warm-start node shrinkage, LS gap).
    let probe_instances = family_instances("synthesis", 3);
    let probes = run_portfolio_probe(&probe_instances, budget_ms(timeout_ms), 200_000);
    let summary = summarize_portfolio(&probes);
    println!();
    println!("== portfolio probe (synthesis) ==");
    for p in &probes {
        println!(
            "{:<24} target {:>5} | cold {:>8.1} ms / {:>6} nodes | \
             warm-to-target {:>8} ms / {:>6} nodes | ls {:>5} ({:>6} gap)",
            p.instance,
            p.target_cost.map_or("-".into(), |c| c.to_string()),
            p.exact_time.as_secs_f64() * 1e3,
            p.exact_nodes,
            p.warm_time_to_target.map_or("-".into(), |d| format!("{:.1}", d.as_secs_f64() * 1e3)),
            p.warm_nodes,
            p.ls_cost.map_or("-".into(), |c| c.to_string()),
            p.ls_gap.map_or("-".into(), |g| format!("{:.1}%", g * 100.0)),
        );
    }
    println!(
        "time-to-target ratio: {} | nodes warm/cold: {}/{} | worst LS gap: {}",
        summary.time_to_target_ratio.map_or("-".into(), |r| format!("{:.3}", r)),
        summary.nodes_warm,
        summary.nodes_cold,
        summary.max_ls_gap.map_or("-".into(), |g| format!("{:.1}%", g * 100.0)),
    );

    // ParLS ablation: one deterministic LS worker vs a diversified
    // 4-worker pool under the same per-worker step budget, gaps against
    // the targets the portfolio probe already solved for.
    const PARLS_WORKERS: usize = 4;
    let parls_targets: Vec<Option<i64>> = probes.iter().map(|p| p.target_cost).collect();
    let parls = run_parls_probe(&probe_instances, &parls_targets, 50_000, PARLS_WORKERS);
    let parls_summary = summarize_parls(&parls, PARLS_WORKERS);
    println!();
    println!("== parls ablation (synthesis, {PARLS_WORKERS} workers) ==");
    for p in &parls {
        println!(
            "{:<24} target {:>5} | single {:>5} ({}) | pool {:>5} ({})",
            p.instance,
            p.target_cost.map_or("-".into(), |c| c.to_string()),
            p.single_cost.map_or("-".into(), |c| c.to_string()),
            p.single_gap.map_or("-".into(), |g| format!("{:.1}%", g * 100.0)),
            p.pool_cost.map_or("-".into(), |c| c.to_string()),
            p.pool_gap.map_or("-".into(), |g| format!("{:.1}%", g * 100.0)),
        );
    }
    println!(
        "worst gap single: {} | pool: {} | pool never worse: {}",
        parls_summary.max_single_gap.map_or("-".into(), |g| format!("{:.1}%", g * 100.0)),
        parls_summary.max_pool_gap.map_or("-".into(), |g| format!("{:.1}%", g * 100.0)),
        parls_summary.pool_never_worse,
    );

    // Parallel-exact scaling probe: the cube-split pool at 1/2/4/8
    // workers on the two hardest synthesis seeds — ranked by sequential
    // tree size over a wider seed pool, because parallel search only
    // pays off on trees worth splitting (see `run_par_bb_probe`).
    const PAR_BB_WORKERS: &[usize] = &[1, 2, 4, 8];
    const PAR_BB_POOL_SEEDS: u64 = 8;
    let par_bb_pool = family_instances("synthesis", PAR_BB_POOL_SEEDS);
    // 40x the per-cell budget: the probe must let every run *finish*
    // (MIS proves optimality on every pool seed in roughly a second) —
    // the gate is about proven optima and complete trees, not budget
    // truncation.
    let par_bb = run_par_bb_probe(&par_bb_pool, budget_ms(40 * timeout_ms), PAR_BB_WORKERS, 2);
    let par_bb_summary = summarize_par_bb(&par_bb);
    println!();
    println!("== par_bb scaling (synthesis, workers {PAR_BB_WORKERS:?}) ==");
    for p in &par_bb {
        println!("{}:", p.instance);
        let base_time = p.runs.first().map(|r| r.time.as_secs_f64());
        for r in &p.runs {
            let speedup = match base_time {
                Some(b) if r.time.as_secs_f64() > 0.0 => {
                    format!("{:.2}x", b / r.time.as_secs_f64())
                }
                _ => "-".into(),
            };
            println!(
                "  {:>2} workers: {:>8.1} ms ({:>6}) / {:>6} nodes ({}) | resplits {:>3} \
                 | shared {:>4} | imported {:>4} | depth-trunc {:>2} | wait {:>6.1} ms",
                r.workers,
                r.time.as_secs_f64() * 1e3,
                speedup,
                r.nodes,
                r.cost.map_or("-".into(), |c| c.to_string()),
                r.resplits,
                r.clauses_shared,
                r.clauses_imported,
                r.depth_truncated,
                r.queue_wait.as_secs_f64() * 1e3,
            );
        }
    }
    println!(
        "never worse optimum: {} | max nodes ratio: {} | {}-worker time speedup geomean: {}",
        par_bb_summary.never_worse_optimum,
        par_bb_summary.max_nodes_ratio.map_or("-".into(), |r| format!("{:.2}x", r)),
        par_bb_summary.workers,
        par_bb_summary.time_speedup_geomean.map_or("-".into(), |r| format!("{:.2}x", r)),
    );

    // Scheduler-scaling row: the deep-split stress instance (a pinned
    // thousand-cube frontier) under the work-stealing scheduler at
    // 1/2/4/8 workers. Complements par_bb: that probe asks whether
    // splitting the search pays, this one whether the scheduler keeps up
    // when hand-off volume dwarfs the worker pool. The recorded
    // `available_parallelism` is what makes the row honest on CI — time
    // columns beyond the host's cores measure oversubscription.
    const SCHED_WORKERS: &[usize] = &[1, 2, 4, 8];
    const SCHED_SPLIT_TARGET: usize = 2048;
    let sched = run_scheduler_scaling_probe(
        0,
        budget_ms(40 * timeout_ms),
        SCHED_WORKERS,
        SCHED_SPLIT_TARGET,
    );
    println!();
    println!(
        "== scheduler scaling ({}, frontier {}, {} core(s)) ==",
        sched.instance, sched.frontier, sched.available_parallelism
    );
    for r in &sched.runs {
        println!(
            "  {:>2} workers: {:>8.1} ms / {:>7} nodes ({}) | steals {:>4} | injected {:>5} \
             | resplits {:>3} | wait {:>6.2} ms",
            r.workers,
            r.time.as_secs_f64() * 1e3,
            r.nodes,
            r.cost.map_or("-".into(), |c| c.to_string()),
            r.steals,
            r.injections,
            r.resplits,
            r.queue_wait.as_secs_f64() * 1e3,
        );
    }

    // Bound-ladder probe: the adaptive ladder vs the fixed rungs it is
    // built from (LGR, LPR) on the synthesis seeds, same budget all
    // three ways. The gate: same optima, wall time within slack of the
    // best fixed rung, and strictly better than fixed LPR somewhere.
    let ladder = run_bound_ladder_probe(&probe_instances, budget_ms(timeout_ms));
    let ladder_summary = summarize_bound_ladder(&ladder);
    println!();
    println!("== bound ladder (synthesis) ==");
    for p in &ladder {
        println!("{}:", p.instance);
        for r in &p.runs {
            println!(
                "  {:<8} {:>8.1} ms ({:>6}) | {:>6} nodes | {:>6} lb calls / {:>8.1} ms \
                 | escalations {:>4}",
                r.method,
                r.time.as_secs_f64() * 1e3,
                r.cost.map_or("-".into(), |c| c.to_string()),
                r.nodes,
                r.lb_calls,
                r.lb_time.as_secs_f64() * 1e3,
                r.escalations,
            );
        }
    }
    println!(
        "gated instances: {} | same optima: {} | beats fixed LPR on {} seed(s)",
        ladder_summary.gated_instances, ladder_summary.same_optima, ladder_summary.beats_lpr,
    );

    let report = json::render_report_full(
        timeout_ms,
        seeds,
        &family_rows,
        Some(&ablation),
        &probes,
        Some(&dyn_rows),
        &parls,
        PARLS_WORKERS,
        &par_bb,
        Some(&sched),
        &ladder,
    );
    match std::fs::write(&json_path, &report) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(err) => {
            eprintln!("failed to write {json_path}: {err}");
            std::process::exit(1);
        }
    }
}
