//! `trace_overhead`: the no-op-sink overhead gate behind PR 7's
//! "observability is free when off" claim.
//!
//! For each Table-1 synthesis seed the harness scripts one deterministic
//! branch-and-bound-shaped trail walk (the `bound_kernels` shape:
//! batched applies, random backjumps, a MIS bound per node) and replays
//! it through two variants in the same process:
//!
//! * **plain** — the bare per-node loop, no telemetry code at all;
//! * **traced-off** — the identical loop plus the emission the
//!   `BoundPipeline` performs per bound call, routed through the
//!   disabled [`Tracer::off`] sink (a single `None` check per site).
//!
//! Because both variants run interleaved on the same machine in the
//! same process, the ratio is machine-independent enough to gate in CI:
//! traced-off node throughput must stay **>= 0.97x** of plain (i.e. the
//! disabled emission path costs at most ~3%, which is measurement noise
//! — the branch itself is sub-nanosecond). Outcome checksums are
//! asserted equal, so the two variants provably do the same work.
//!
//! ```text
//! cargo run --release -p pbo-bench --bin trace_overhead -- \
//!     [--seeds N] [--nodes N] [--reps N] [--min-ratio R] [--json PATH]
//! ```
//!
//! Exit status 0 = within the gate, 1 = overhead regression.

use std::time::Instant;

use pbo_bench::{family_instances, json::escape};
use pbo_bounds::{LbOutcome, LowerBound, MisBound, ResidualState};
use pbo_core::{Assignment, Instance, Lit, Var};
use pbo_solver::{LocalSearch, LsOptions};
use pbo_trace::{BoundOutcome, TraceEvent, Tracer};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One step of the scripted walk.
enum Op {
    /// Apply these literals (all unassigned at this point), then bound.
    Apply(Vec<Lit>),
    /// Unwind the trail back to this length.
    UnwindTo(usize),
}

/// Scripts a deterministic B&B-shaped walk (same generator as
/// `bound_kernels`, seeded differently so the two benches don't share a
/// script by accident).
fn make_script(instance: &Instance, seed: u64, nodes: usize) -> Vec<Op> {
    let n = instance.num_vars();
    let mut rng = ChaCha8Rng::seed_from_u64(0x7ace ^ seed);
    let mut assigned = vec![false; n];
    let mut trail: Vec<Var> = Vec::new();
    let mut marks: Vec<usize> = Vec::new();
    let mut ops = Vec::new();
    let mut applied_nodes = 0;
    while applied_nodes < nodes {
        let deep = trail.len() > (3 * n) / 4;
        if !marks.is_empty() && (deep || rng.gen_bool(0.3)) {
            let k = rng.gen_range(0..marks.len());
            let target = marks[k];
            marks.truncate(k);
            while trail.len() > target {
                assigned[trail.pop().expect("trail").index()] = false;
            }
            ops.push(Op::UnwindTo(target));
            continue;
        }
        let batch_size = rng.gen_range(1..=4usize.min(n - trail.len()).max(1));
        let mut batch = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            let free: Vec<usize> = (0..n).filter(|&v| !assigned[v]).collect();
            if free.is_empty() {
                break;
            }
            let v = free[rng.gen_range(0..free.len())];
            assigned[v] = true;
            trail.push(Var::new(v));
            batch.push(Var::new(v).lit(rng.gen_bool(0.5)));
        }
        if batch.is_empty() {
            marks.clear();
            while let Some(v) = trail.pop() {
                assigned[v.index()] = false;
            }
            ops.push(Op::UnwindTo(0));
            continue;
        }
        marks.push(trail.len() - batch.len());
        ops.push(Op::Apply(batch));
        applied_nodes += 1;
    }
    ops.push(Op::UnwindTo(0));
    ops
}

/// Replays the script; when `tracer` is given, the loop also performs
/// the `BoundPipeline`-shaped emission after every bound call (the
/// traced-off variant passes `Tracer::off`). Returns elapsed nanoseconds
/// and the outcome checksum.
#[allow(clippy::too_many_arguments)]
fn replay(
    instance: &Instance,
    script: &[Op],
    upper: i64,
    state: &mut ResidualState,
    mis: &mut MisBound,
    out: &mut LbOutcome,
    assignment: &mut Assignment,
    mirror: &mut Vec<Lit>,
    tracer: Option<&Tracer>,
) -> (u64, i64) {
    let mut checksum = 0i64;
    let start = Instant::now();
    for op in script {
        match op {
            Op::Apply(batch) => {
                for &lit in batch {
                    assignment.assign_lit(lit);
                    mirror.push(lit);
                    state.apply(instance, lit);
                }
                let view = state.view(instance, assignment);
                mis.lower_bound_into(&view, Some(upper), out);
                checksum = checksum.wrapping_add(if out.infeasible { -1 } else { out.bound });
                if let Some(tracer) = tracer {
                    tracer.emit(TraceEvent::Bound {
                        method: "mis",
                        stage: "fixed",
                        outcome: if out.infeasible {
                            BoundOutcome::Infeasible
                        } else {
                            BoundOutcome::Open
                        },
                        margin: out.bound,
                        dur_ns: 0,
                    });
                }
            }
            Op::UnwindTo(len) => {
                while mirror.len() > *len {
                    assignment.unassign(mirror.pop().expect("mirror").var());
                }
                state.unwind_to(instance, *len);
            }
        }
    }
    (start.elapsed().as_nanos() as u64, checksum)
}

struct InstanceResult {
    instance: String,
    nodes: usize,
    plain_ns_per_node: f64,
    traced_off_ns_per_node: f64,
    ratio: f64,
}

fn main() {
    let mut seeds = 3u64;
    let mut nodes = 400usize;
    let mut reps = 7usize;
    let mut min_ratio = 0.97f64;
    let mut json_path = String::from("BENCH_trace_overhead.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => seeds = args.next().expect("--seeds").parse().expect("bad seeds"),
            "--nodes" => nodes = args.next().expect("--nodes").parse().expect("bad nodes"),
            "--reps" => reps = args.next().expect("--reps").parse().expect("bad reps"),
            "--min-ratio" => {
                min_ratio = args.next().expect("--min-ratio").parse().expect("bad ratio")
            }
            "--json" => json_path = args.next().expect("--json"),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    println!(
        "trace_overhead: {seeds} synthesis seeds, {nodes} nodes/walk, best of {reps} reps, \
         gate >= {min_ratio:.2}x"
    );

    let instances = family_instances("synthesis", seeds);
    let off = Tracer::off();
    let mut results = Vec::new();
    for (seed, instance) in instances.iter().enumerate() {
        let ls = LocalSearch::new(instance, LsOptions::default().max_steps(20_000)).run(None, None);
        let upper = ls.best_cost.unwrap_or_else(|| {
            instance.objective().map_or(1, |o| o.terms().iter().map(|&(c, _)| c).sum())
        });
        let script = make_script(instance, seed as u64, nodes);
        let node_count = script.iter().filter(|op| matches!(op, Op::Apply(_))).count();

        let mut state = ResidualState::new(instance);
        let mut mis = MisBound::new();
        let mut out = LbOutcome::bound(0, Vec::new());
        let mut assignment = Assignment::new(instance.num_vars());
        let mut mirror: Vec<Lit> = Vec::new();

        // Warm-up + agreement between the two variants.
        let (_, plain_sum) = replay(
            instance,
            &script,
            upper,
            &mut state,
            &mut mis,
            &mut out,
            &mut assignment,
            &mut mirror,
            None,
        );
        let (_, traced_sum) = replay(
            instance,
            &script,
            upper,
            &mut state,
            &mut mis,
            &mut out,
            &mut assignment,
            &mut mirror,
            Some(&off),
        );
        assert_eq!(plain_sum, traced_sum, "variants disagree on {}", instance.name());

        // Interleaved measurement, best-of-N per side.
        let mut best_plain = u64::MAX;
        let mut best_traced = u64::MAX;
        for _ in 0..reps {
            let (tp, sp) = replay(
                instance,
                &script,
                upper,
                &mut state,
                &mut mis,
                &mut out,
                &mut assignment,
                &mut mirror,
                None,
            );
            let (tt, st) = replay(
                instance,
                &script,
                upper,
                &mut state,
                &mut mis,
                &mut out,
                &mut assignment,
                &mut mirror,
                Some(&off),
            );
            assert_eq!(sp, plain_sum, "plain outcome drifted");
            assert_eq!(st, plain_sum, "traced-off outcome drifted");
            best_plain = best_plain.min(tp);
            best_traced = best_traced.min(tt);
        }
        let plain = best_plain as f64 / node_count as f64;
        let traced = best_traced as f64 / node_count as f64;
        // Throughput ratio: traced-off nodes/s over plain nodes/s.
        let ratio = plain / traced;
        println!(
            "{:<24} {:>6} nodes | plain {:>8.0} ns/node | traced-off {:>8.0} ns/node | {:.3}x",
            instance.name(),
            node_count,
            plain,
            traced,
            ratio
        );
        results.push(InstanceResult {
            instance: instance.name().to_string(),
            nodes: node_count,
            plain_ns_per_node: plain,
            traced_off_ns_per_node: traced,
            ratio,
        });
    }

    let geomean =
        (results.iter().map(|r| r.ratio.ln()).sum::<f64>() / results.len().max(1) as f64).exp();
    println!("geomean traced-off throughput ratio: {geomean:.3}x (gate >= {min_ratio:.2}x)");

    let mut outjson = String::new();
    outjson.push_str("{\n  \"instances\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        outjson.push_str(&format!(
            "    {{\"instance\": \"{}\", \"nodes\": {}, \"plain_ns_per_node\": {:.1}, \
             \"traced_off_ns_per_node\": {:.1}, \"ratio\": {:.4}}}{comma}\n",
            escape(&r.instance),
            r.nodes,
            r.plain_ns_per_node,
            r.traced_off_ns_per_node,
            r.ratio
        ));
    }
    outjson.push_str(&format!(
        "  ],\n  \"geomean_ratio\": {geomean:.4},\n  \"min_ratio_gate\": {min_ratio:.4}\n}}\n"
    ));
    match std::fs::write(&json_path, &outjson) {
        Ok(()) => println!("wrote {json_path}"),
        Err(err) => {
            eprintln!("failed to write {json_path}: {err}");
            std::process::exit(1);
        }
    }
    if geomean < min_ratio {
        eprintln!("REGRESSION: traced-off throughput {geomean:.3}x below the {min_ratio:.2}x gate");
        std::process::exit(1);
    }
}
