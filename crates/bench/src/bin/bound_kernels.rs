//! `bound_kernels`: per-node bound-maintenance microbenchmark and the
//! CI gate behind PR 4's perf claim.
//!
//! For each Table-1 synthesis seed the harness scripts one deterministic
//! branch-and-bound-shaped trail walk (batched applies, random
//! backjumps), then replays it through two self-contained kernels in the
//! same process:
//!
//! * **pr4** — the live path: `ResidualState` apply/unwind over the
//!   instance's flat CSR arena, the O(active) view, and the
//!   allocation-free `MisBound::lower_bound_into`;
//! * **pr3** — the frozen baseline (`pbo_bench::pr3`): nested
//!   per-literal occurrence `Vec`s, the same view semantics, and the
//!   PR-3 MIS kernel (per-pass term re-filtering, stable sorts,
//!   allocated explanations).
//!
//! Because both generations run on the same machine in the same
//! process, the reported speedup is machine-independent enough to gate
//! in CI (geomean >= 1.3x), unlike a wall-clock comparison against a
//! snapshot produced elsewhere. Outcome equality between the two
//! kernels is asserted during warm-up, so the comparison cannot
//! silently measure different work.
//!
//! ```text
//! cargo run --release -p pbo-bench --bin bound_kernels -- \
//!     [--seeds N] [--nodes N] [--reps N] [--json PATH]
//! ```

use std::time::Instant;

use pbo_bench::pr3::{Pr3MisBound, Pr3Residual};
use pbo_bench::{family_instances, json::escape};
use pbo_bounds::{LbOutcome, LowerBound, MisBound, ResidualState};
use pbo_core::{Assignment, Instance, Lit, Var};
use pbo_solver::{LocalSearch, LsOptions};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One step of the scripted walk.
enum Op {
    /// Apply these literals (all unassigned at this point), then bound.
    Apply(Vec<Lit>),
    /// Unwind the trail back to this length.
    UnwindTo(usize),
}

/// Scripts a deterministic B&B-shaped walk: batched descents with
/// occasional backjumps, never assigning an assigned variable.
fn make_script(instance: &Instance, seed: u64, nodes: usize) -> Vec<Op> {
    let n = instance.num_vars();
    let mut rng = ChaCha8Rng::seed_from_u64(0xb0c5 ^ seed);
    let mut assigned = vec![false; n];
    let mut trail: Vec<Var> = Vec::new();
    let mut marks: Vec<usize> = Vec::new();
    let mut ops = Vec::new();
    let mut applied_nodes = 0;
    while applied_nodes < nodes {
        let deep = trail.len() > (3 * n) / 4;
        if !marks.is_empty() && (deep || rng.gen_bool(0.3)) {
            // Backjump to a random earlier mark.
            let k = rng.gen_range(0..marks.len());
            let target = marks[k];
            marks.truncate(k);
            while trail.len() > target {
                assigned[trail.pop().expect("trail").index()] = false;
            }
            ops.push(Op::UnwindTo(target));
            continue;
        }
        let batch_size = rng.gen_range(1..=4usize.min(n - trail.len()).max(1));
        let mut batch = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            let free: Vec<usize> = (0..n).filter(|&v| !assigned[v]).collect();
            if free.is_empty() {
                break;
            }
            let v = free[rng.gen_range(0..free.len())];
            assigned[v] = true;
            trail.push(Var::new(v));
            batch.push(Var::new(v).lit(rng.gen_bool(0.5)));
        }
        if batch.is_empty() {
            // Everything assigned: jump back to the root.
            marks.clear();
            while let Some(v) = trail.pop() {
                assigned[v.index()] = false;
            }
            ops.push(Op::UnwindTo(0));
            continue;
        }
        marks.push(trail.len() - batch.len());
        ops.push(Op::Apply(batch));
        applied_nodes += 1;
    }
    // End balanced at the root so repeated replays are identical.
    ops.push(Op::UnwindTo(0));
    ops
}

/// Replays the script through the live (pr4) kernel; returns elapsed
/// nanoseconds and a checksum of the outcomes (prevents dead-code
/// elimination and pins cross-kernel agreement).
#[allow(clippy::too_many_arguments)]
fn replay_pr4(
    instance: &Instance,
    script: &[Op],
    upper: i64,
    state: &mut ResidualState,
    mis: &mut MisBound,
    out: &mut LbOutcome,
    assignment: &mut Assignment,
    mirror: &mut Vec<Lit>,
) -> (u64, i64) {
    let mut checksum = 0i64;
    let start = Instant::now();
    for op in script {
        match op {
            Op::Apply(batch) => {
                for &lit in batch {
                    assignment.assign_lit(lit);
                    mirror.push(lit);
                    state.apply(instance, lit);
                }
                let view = state.view(instance, assignment);
                mis.lower_bound_into(&view, Some(upper), out);
                checksum = checksum.wrapping_add(if out.infeasible { -1 } else { out.bound });
            }
            Op::UnwindTo(len) => {
                while mirror.len() > *len {
                    assignment.unassign(mirror.pop().expect("mirror").var());
                }
                state.unwind_to(instance, *len);
            }
        }
    }
    (start.elapsed().as_nanos() as u64, checksum)
}

/// Replays the script through the frozen PR-3 kernel.
fn replay_pr3(
    instance: &Instance,
    script: &[Op],
    upper: i64,
    state: &mut Pr3Residual,
    mis: &mut Pr3MisBound,
    assignment: &mut Assignment,
    mirror: &mut Vec<Lit>,
) -> (u64, i64) {
    let mut checksum = 0i64;
    let start = Instant::now();
    for op in script {
        match op {
            Op::Apply(batch) => {
                for &lit in batch {
                    assignment.assign_lit(lit);
                    mirror.push(lit);
                    state.apply(lit);
                }
                let view = state.view(instance, assignment);
                let out = mis.lower_bound(&view, Some(upper));
                checksum = checksum.wrapping_add(if out.infeasible { -1 } else { out.bound });
            }
            Op::UnwindTo(len) => {
                while mirror.len() > *len {
                    assignment.unassign(mirror.pop().expect("mirror").var());
                }
                state.unwind_to(*len);
            }
        }
    }
    (start.elapsed().as_nanos() as u64, checksum)
}

struct InstanceResult {
    instance: String,
    nodes: usize,
    pr3_ns_per_node: f64,
    pr4_ns_per_node: f64,
    speedup: f64,
}

fn main() {
    let mut seeds = 3u64;
    let mut nodes = 400usize;
    let mut reps = 7usize;
    let mut json_path = String::from("BENCH_bound_kernels.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => seeds = args.next().expect("--seeds").parse().expect("bad seeds"),
            "--nodes" => nodes = args.next().expect("--nodes").parse().expect("bad nodes"),
            "--reps" => reps = args.next().expect("--reps").parse().expect("bad reps"),
            "--json" => json_path = args.next().expect("--json"),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    println!("bound_kernels: {seeds} synthesis seeds, {nodes} nodes/walk, best of {reps} reps");

    let instances = family_instances("synthesis", seeds);
    let mut results = Vec::new();
    for (seed, instance) in instances.iter().enumerate() {
        // A realistic incumbent for reduced-cost fixing: deterministic
        // LS under a fixed step budget.
        let ls = LocalSearch::new(instance, LsOptions::default().max_steps(20_000)).run(None, None);
        let upper = ls.best_cost.unwrap_or_else(|| {
            instance.objective().map_or(1, |o| o.terms().iter().map(|&(c, _)| c).sum())
        });
        let script = make_script(instance, seed as u64, nodes);
        let node_count = script.iter().filter(|op| matches!(op, Op::Apply(_))).count();

        let mut state = ResidualState::new(instance);
        let mut replica = Pr3Residual::new(instance);
        let mut mis = MisBound::new();
        let mut frozen = Pr3MisBound::new();
        let mut out = LbOutcome::bound(0, Vec::new());
        let mut assignment = Assignment::new(instance.num_vars());
        let mut mirror: Vec<Lit> = Vec::new();

        // Warm-up (grows every scratch buffer) + cross-kernel agreement.
        let (_, sum4) = replay_pr4(
            instance,
            &script,
            upper,
            &mut state,
            &mut mis,
            &mut out,
            &mut assignment,
            &mut mirror,
        );
        let (_, sum3) = replay_pr3(
            instance,
            &script,
            upper,
            &mut replica,
            &mut frozen,
            &mut assignment,
            &mut mirror,
        );
        assert_eq!(sum4, sum3, "kernels disagree on {}", instance.name());

        // Interleaved measurement, best-of-N per side.
        let mut best4 = u64::MAX;
        let mut best3 = u64::MAX;
        for _ in 0..reps {
            let (t4, s4) = replay_pr4(
                instance,
                &script,
                upper,
                &mut state,
                &mut mis,
                &mut out,
                &mut assignment,
                &mut mirror,
            );
            let (t3, s3) = replay_pr3(
                instance,
                &script,
                upper,
                &mut replica,
                &mut frozen,
                &mut assignment,
                &mut mirror,
            );
            assert_eq!(s4, sum4, "pr4 outcome drifted");
            assert_eq!(s3, sum3, "pr3 outcome drifted");
            best4 = best4.min(t4);
            best3 = best3.min(t3);
        }
        let pr4 = best4 as f64 / node_count as f64;
        let pr3 = best3 as f64 / node_count as f64;
        let speedup = pr3 / pr4;
        println!(
            "{:<24} {:>6} nodes | pr3 {:>8.0} ns/node | pr4 {:>8.0} ns/node | {:.2}x",
            instance.name(),
            node_count,
            pr3,
            pr4,
            speedup
        );
        results.push(InstanceResult {
            instance: instance.name().to_string(),
            nodes: node_count,
            pr3_ns_per_node: pr3,
            pr4_ns_per_node: pr4,
            speedup,
        });
    }

    let geomean =
        (results.iter().map(|r| r.speedup.ln()).sum::<f64>() / results.len().max(1) as f64).exp();
    println!("geomean speedup: {geomean:.2}x");

    let mut outjson = String::new();
    outjson.push_str("{\n  \"instances\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        outjson.push_str(&format!(
            "    {{\"instance\": \"{}\", \"nodes\": {}, \"pr3_ns_per_node\": {:.1}, \
             \"pr4_ns_per_node\": {:.1}, \"speedup\": {:.4}}}{comma}\n",
            escape(&r.instance),
            r.nodes,
            r.pr3_ns_per_node,
            r.pr4_ns_per_node,
            r.speedup
        ));
    }
    outjson.push_str(&format!("  ],\n  \"geomean_speedup\": {geomean:.4}\n}}\n"));
    match std::fs::write(&json_path, &outjson) {
        Ok(()) => println!("wrote {json_path}"),
        Err(err) => {
            eprintln!("failed to write {json_path}: {err}");
            std::process::exit(1);
        }
    }
}
