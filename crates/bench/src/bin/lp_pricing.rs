//! `lp_pricing`: interleaved A/B microbenchmark of the dual simplex's
//! sparse+Devex hot path against the frozen dense baseline, and the CI
//! gate on its speedup.
//!
//! For each LPR-heavy Table-1 synthesis seed the harness builds the
//! instance's LP relaxation once per side ([`Pricing::DenseLegacy`] vs
//! [`Pricing::DevexSparse`]) and drives both solvers through the same
//! deterministic B&B-shaped walk: each step fixes or relaxes one
//! variable's bounds and re-solves warm — exactly the call pattern
//! `LprBound` puts on the simplex at every search node. The two sides
//! see identical bound sequences and alternate solve order per step, so
//! the per-call time ratio is machine-independent (same process, same
//! data, interleaved); every step also cross-checks status and objective
//! so the fast path cannot buy its speedup with wrong answers.
//!
//! The gate: sparse+Devex must hold a per-seed geometric-mean speedup of
//! at least `--min-geomean` (default 1.3x, the PR-10 floor) over the
//! dense baseline. Results go to `BENCH_lp_pricing.json`.
//!
//! ```text
//! cargo run --release -p pbo-bench --bin lp_pricing -- \
//!     [--seeds N] [--steps N] [--min-geomean R] [--json PATH]
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use pbo_benchgen::SynthesisParams;
use pbo_bounds::LprBound;
use pbo_core::Instance;
use pbo_lp::{DualSimplex, LpStatus, Pricing};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Relative objective tolerance of the per-step A/B cross-check.
const OBJ_TOL: f64 = 1e-6;

/// The LPR-heavy synthesis shape of Table 1 (`synth-p70-m110-s<seed>`).
fn synthesis_instance(seed: u64) -> Instance {
    SynthesisParams {
        primes: 70,
        minterms: 110,
        cover_density: 4.0,
        exclusions: 10,
        ..SynthesisParams::default()
    }
    .generate(seed)
}

/// One step of the scripted walk: a bound change on one variable.
#[derive(Copy, Clone)]
enum Move {
    FixOne(usize),
    FixZero(usize),
    Relax(usize),
}

/// Scripts a deterministic B&B-shaped bound walk as *batches*: one
/// batch per timed solve, mirroring how `LprBound::compute` applies a
/// whole trail suffix (propagation closure included) before a single
/// re-solve. Descent batches fix several variables at once; backtrack
/// batches relax a chunk of the deepest fixings — both directions leave
/// the warm basis several bound-violations away from feasibility, which
/// is the dual-repair work the pricing paths compete on.
fn script_walk(rng: &mut ChaCha8Rng, num_vars: usize, steps: usize) -> Vec<Vec<Move>> {
    let mut fixed: Vec<usize> = Vec::new();
    let mut walk = Vec::with_capacity(steps);
    for _ in 0..steps {
        let relax = !fixed.is_empty() && (fixed.len() >= num_vars / 2 || rng.gen_bool(0.3));
        let mut batch = Vec::new();
        if relax {
            let chunk = rng.gen_range(4..=12usize).min(fixed.len());
            for _ in 0..chunk {
                let j = fixed.swap_remove(rng.gen_range(0..fixed.len()));
                batch.push(Move::Relax(j));
            }
        } else {
            let chunk = rng.gen_range(4..=12);
            for _ in 0..chunk {
                let j = rng.gen_range(0..num_vars);
                if fixed.contains(&j) {
                    continue;
                }
                fixed.push(j);
                // Covering objectives price variables up: fixing to 1
                // keeps the relaxation feasible, fixing to 0 stresses
                // the dual repair (and sometimes proves infeasibility —
                // both sides must agree on that too).
                batch.push(if rng.gen_bool(0.7) { Move::FixOne(j) } else { Move::FixZero(j) });
            }
        }
        if !batch.is_empty() {
            walk.push(batch);
        }
    }
    walk
}

struct SideResult {
    total_ns: u128,
    objective_sum: f64,
    statuses: Vec<LpStatus>,
}

/// One interleaved pass of the walk: fresh warm solvers on both sides,
/// identical bound batches, alternating solve order per step.
fn run_walk(problem: &pbo_lp::LpProblem, walk: &[Vec<Move>], seed: u64) -> [SideResult; 2] {
    let mut dense = DualSimplex::new(problem);
    dense.set_pricing(Pricing::DenseLegacy);
    let mut sparse = DualSimplex::new(problem);
    debug_assert_eq!(sparse.pricing(), Pricing::DevexSparse);
    let mut sides = [
        SideResult { total_ns: 0, objective_sum: 0.0, statuses: Vec::new() },
        SideResult { total_ns: 0, objective_sum: 0.0, statuses: Vec::new() },
    ];
    // One untimed root solve per side so the timed walk measures warm
    // re-solves, not first factorization.
    let root = [dense.solve().status, sparse.solve().status];
    assert_eq!(root[0], root[1], "seed {seed}: root status diverged");
    for (step, batch) in walk.iter().enumerate() {
        for s in [&mut dense, &mut sparse] {
            for &mv in batch {
                match mv {
                    Move::FixOne(j) => s.set_var_bounds(j, 1.0, 1.0),
                    Move::FixZero(j) => s.set_var_bounds(j, 0.0, 0.0),
                    Move::Relax(j) => s.set_var_bounds(j, 0.0, 1.0),
                }
            }
        }
        // Alternate solve order so cache warming cannot bias a side.
        let order: [(usize, &mut DualSimplex); 2] = if step % 2 == 0 {
            [(0, &mut dense), (1, &mut sparse)]
        } else {
            [(1, &mut sparse), (0, &mut dense)]
        };
        for (idx, solver) in order {
            let start = Instant::now();
            let sol = solver.solve();
            sides[idx].total_ns += start.elapsed().as_nanos();
            sides[idx].statuses.push(sol.status);
            if sol.status == LpStatus::Optimal {
                sides[idx].objective_sum += sol.objective;
            }
        }
    }
    sides
}

struct SeedResult {
    instance: String,
    calls: usize,
    dense_ns_per_call: f64,
    sparse_ns_per_call: f64,
    speedup: f64,
}

fn main() -> ExitCode {
    let mut seeds = 3u64;
    let mut steps = 160usize;
    let mut reps = 5usize;
    let mut min_geomean = 1.3f64;
    let mut json_path = String::from("BENCH_lp_pricing.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => seeds = args.next().and_then(|v| v.parse().ok()).expect("--seeds N"),
            "--steps" => steps = args.next().and_then(|v| v.parse().ok()).expect("--steps N"),
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--min-geomean" => {
                min_geomean = args.next().and_then(|v| v.parse().ok()).expect("--min-geomean R")
            }
            "--json" => json_path = args.next().expect("--json PATH"),
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    println!(
        "lp_pricing: {seeds} synthesis seeds, {steps}-step bound walks, best of {reps} reps, \
         dense-legacy vs sparse+Devex (gate >= {min_geomean}x geomean)"
    );
    let mut results: Vec<SeedResult> = Vec::new();
    for seed in 0..seeds {
        let inst = synthesis_instance(seed);
        let problem = LprBound::relaxation_problem(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(0x1b9 ^ seed);
        let walk = script_walk(&mut rng, inst.num_vars(), steps);
        let calls = walk.len();

        // Best-of-reps per side: each rep replays the identical walk on
        // fresh solvers, interleaved; the per-side minimum filters the
        // scheduling noise a single shared-runner pass carries.
        let mut best = [u128::MAX, u128::MAX];
        for rep in 0..reps.max(1) {
            let sides = run_walk(&problem, &walk, seed);
            let [d, s] = &sides;
            if rep == 0 {
                // Cross-check once: statuses step-by-step, objectives in
                // aggregate (the walks are deterministic, so one rep's
                // agreement covers them all).
                for (step, (ds, ss)) in d.statuses.iter().zip(&s.statuses).enumerate() {
                    if ds != ss {
                        eprintln!("FAIL seed {seed} step {step}: dense {ds:?} vs sparse {ss:?}");
                        return ExitCode::FAILURE;
                    }
                }
                let scale = 1.0 + d.objective_sum.abs();
                if ((d.objective_sum - s.objective_sum) / scale).abs() > OBJ_TOL {
                    eprintln!(
                        "FAIL seed {seed}: objective checksum diverged — dense {} vs sparse {}",
                        d.objective_sum, s.objective_sum
                    );
                    return ExitCode::FAILURE;
                }
            }
            best[0] = best[0].min(d.total_ns);
            best[1] = best[1].min(s.total_ns);
        }
        let dense_per = best[0] as f64 / calls as f64;
        let sparse_per = best[1] as f64 / calls as f64;
        let speedup = dense_per / sparse_per;
        println!(
            "{:<24} {calls} warm solves | dense {:>9.0} ns/call | sparse {:>9.0} ns/call \
             | speedup {speedup:.2}x",
            inst.name(),
            dense_per,
            sparse_per,
        );
        results.push(SeedResult {
            instance: inst.name().to_string(),
            calls,
            dense_ns_per_call: dense_per,
            sparse_ns_per_call: sparse_per,
            speedup,
        });
    }
    let geomean =
        (results.iter().map(|r| r.speedup.ln()).sum::<f64>() / results.len().max(1) as f64).exp();
    println!("geomean speedup: {geomean:.2}x (gate >= {min_geomean}x)");

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"seeds\": {seeds},");
    let _ = writeln!(out, "  \"steps\": {steps},");
    out.push_str("  \"instances\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"instance\": \"{}\", \"calls\": {}, \"dense_ns_per_call\": {:.0}, \
             \"sparse_ns_per_call\": {:.0}, \"speedup\": {:.4}}}{comma}",
            pbo_bench::json::escape(&r.instance),
            r.calls,
            r.dense_ns_per_call,
            r.sparse_ns_per_call,
            r.speedup,
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"geomean_speedup\": {geomean:.4}");
    out.push_str("}\n");
    if let Err(err) = std::fs::write(&json_path, &out) {
        eprintln!("failed to write {json_path}: {err}");
        return ExitCode::from(2);
    }
    println!("wrote {json_path}");

    if geomean < min_geomean {
        eprintln!("FAIL: sparse+Devex speedup {geomean:.2}x below the {min_geomean}x gate");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
