//! Randomized crash-recovery stress harness for the fault-injection
//! probe layer (PR 9).
//!
//! Requires the `failpoints` feature:
//!
//! ```text
//! cargo run --release -p pbo-bench --features failpoints --bin fault_stress -- \
//!     [--seed N] [--rounds N] [--workers N]
//! ```
//!
//! Every round generates a seeded covering instance, solves it clean
//! under the deterministic join for a reference optimum, then re-solves
//! it in racing mode with one probe site armed to panic (site and hit
//! count drawn from the seeded schedule). The harness asserts that
//! **every** injected fault yields a well-formed, sound result:
//!
//! * a quarantined cube (a worker died holding work) forbids an
//!   `Optimal`/`Infeasible` claim — the result degrades to `Feasible`
//!   (incumbent verified against the instance, cost no better than the
//!   reference optimum) or `Unknown`;
//! * a run that still claims `Optimal` must have zero quarantined cubes
//!   and must match the reference cost exactly;
//! * a fault that unwinds the *driver* thread (head start, splitter)
//!   surfaces as a panic to the caller — the harness catches it and
//!   asserts the process state is intact by re-solving clean;
//! * with the probes compiled in but no fault firing, two
//!   deterministic-join runs stay bit-identical (status, cost, decision
//!   and conflict counts) — the parity leg.
//!
//! Exit is zero only if every round passes; the first violation panics
//! with the round's seed, site and hit schedule for replay.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pbo_core::{verify_solution, Instance, InstanceBuilder};
use pbo_fault::{install, FaultPlan};
use pbo_solver::{BsoloOptions, LbMethod, ParBsolo, SolveResult, SolveStatus};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Every planted probe site, paired with the lower-bound method that
/// reaches it (the bound dispatch probe needs a non-trivial pipeline;
/// everything else runs fastest with the trivial bound).
const SITES: &[(&str, LbMethod)] = &[
    ("par.cube", LbMethod::None),
    ("par.resplit", LbMethod::None),
    ("sched.push", LbMethod::None),
    ("sched.steal", LbMethod::None),
    ("sched.park", LbMethod::None),
    ("bound.dispatch", LbMethod::Mis),
    ("bound.escalate", LbMethod::Adaptive),
    ("cell.offer", LbMethod::None),
    ("pool.publish", LbMethod::None),
    ("pool.import", LbMethod::None),
];

/// Random covering instance: wide enough that the sequential head start
/// cannot finish it, so the cube frontier (and every probe site behind
/// it) actually runs.
fn covering_instance(rng: &mut ChaCha8Rng, n: usize) -> Instance {
    let mut b = InstanceBuilder::new();
    let vars = b.new_vars(n);
    for _ in 0..3 * n {
        let k = rng.gen_range(3..=4.min(n));
        let mut idxs: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            idxs.swap(i, j);
        }
        b.add_at_least(1, idxs[..k].iter().map(|&i| vars[i].positive()));
    }
    b.minimize(vars.iter().map(|v| (rng.gen_range(1..8), v.positive())));
    b.build().expect("covering instance is well-formed")
}

/// Racing-mode options tuned so the machinery behind every probe site
/// is exercised: aggressive re-splitting (re-split + push), constant
/// restarts (publish + import), a weak head (workers actually launch).
fn racing_options(lb: LbMethod) -> BsoloOptions {
    let mut options = BsoloOptions::with_lb(lb);
    options.probing = false;
    options.cardinality_cuts = false;
    options.resplit_conflicts = Some(4);
    options.restart_base = Some(4);
    options
}

fn solve_digest(r: &SolveResult) -> (SolveStatus, Option<i64>, u64, u64) {
    (r.status, r.best_cost, r.stats.decisions, r.stats.conflicts)
}

fn main() {
    let mut seed = 0xfa17u64;
    let mut rounds = 24usize;
    let mut workers = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = args.next().expect("--seed").parse().expect("bad seed"),
            "--rounds" => rounds = args.next().expect("--rounds").parse().expect("bad rounds"),
            "--workers" => workers = args.next().expect("--workers").parse().expect("bad workers"),
            other => panic!("unknown argument {other}"),
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut fired_rounds = 0usize;
    let mut driver_faults = 0usize;
    // Injected panics are the point of the exercise; keep their
    // backtraces out of the log. Everything else (the harness's own
    // assertion failures) still prints through the default hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected =
            info.payload().downcast_ref::<String>().is_some_and(|m| m.starts_with("failpoint: "));
        if !injected {
            default_hook(info);
        }
    }));
    for round in 0..rounds {
        let (site, lb) = SITES[round % SITES.len()];
        let nth = rng.gen_range(1..=3);
        let inst = covering_instance(&mut rng, 22 + round % 5);
        let tag = format!("round {round} (seed {seed}, site {site}, nth {nth})");

        // Reference: clean deterministic-join run, no plan installed.
        let mut det = racing_options(lb);
        det.deterministic_join = true;
        let reference = ParBsolo::new(det.clone(), workers).solve(&inst);
        assert_eq!(reference.status, SolveStatus::Optimal, "{tag}: clean reference must close");
        let optimum = reference.best_cost.expect("optimal run carries a cost");

        // Faulted racing run: one site armed, drawn from the schedule.
        let guard = install(FaultPlan::new().panic_on(site, nth));
        let options = racing_options(lb);
        let outcome =
            catch_unwind(AssertUnwindSafe(|| ParBsolo::new(options, workers).solve(&inst)));
        let fired = guard.hits(site) >= nth;
        drop(guard);
        match outcome {
            Ok(got) => {
                if fired {
                    fired_rounds += 1;
                }
                match got.status {
                    SolveStatus::Optimal | SolveStatus::Infeasible => {
                        assert_eq!(
                            got.stats.cubes_quarantined, 0,
                            "{tag}: a holed partition cannot claim exhaustion"
                        );
                        assert_eq!(got.status, SolveStatus::Optimal, "{tag}: instance is feasible");
                        assert_eq!(got.best_cost, Some(optimum), "{tag}: exact claim, exact cost");
                    }
                    SolveStatus::Feasible => {
                        let cost = got.best_cost.expect("feasible carries a cost");
                        let model = got.best_assignment.as_ref().expect("feasible carries a model");
                        assert_eq!(
                            verify_solution(&inst, model),
                            Ok(cost),
                            "{tag}: surviving incumbent must verify"
                        );
                        assert!(cost >= optimum, "{tag}: cost below the true optimum is unsound");
                    }
                    SolveStatus::Unknown => {}
                }
                if got.stats.cubes_quarantined > 0 {
                    assert!(
                        matches!(got.status, SolveStatus::Feasible | SolveStatus::Unknown),
                        "{tag}: quarantine must degrade the claim, got {:?}",
                        got.status
                    );
                    assert!(got.degraded(), "{tag}: degraded() must reflect the loss");
                }
            }
            Err(_) => {
                // The fault unwound the driver thread (head start /
                // splitter / sequential fallback). Acceptable — but the
                // process must remain usable: no poisoned global, no
                // wedged scheduler thread. Prove it with a clean solve.
                assert!(fired, "{tag}: solve panicked yet the armed fault never fired");
                driver_faults += 1;
                let again = ParBsolo::new(det.clone(), workers).solve(&inst);
                assert_eq!(again.status, SolveStatus::Optimal, "{tag}: state wedged after fault");
                assert_eq!(again.best_cost, Some(optimum), "{tag}: state torn after fault");
            }
        }

        // Parity leg: probes compiled in, armed on this site but far out
        // of reach — the deterministic join must stay bit-identical.
        let guard = install(FaultPlan::new().panic_on(site, u64::MAX));
        let a = ParBsolo::new(det.clone(), workers).solve(&inst);
        let b = ParBsolo::new(det.clone(), workers).solve(&inst);
        drop(guard);
        assert_eq!(solve_digest(&a), solve_digest(&b), "{tag}: det-join parity broke");
        assert_eq!(solve_digest(&a), solve_digest(&reference), "{tag}: unfired probes perturbed");
    }
    println!(
        "fault_stress: {rounds} rounds ok (seed {seed}, {fired_rounds} faults fired, \
         {driver_faults} surfaced as driver panics)"
    );
}
