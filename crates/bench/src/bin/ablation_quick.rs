//! One-shot measurements backing the A2-A4 rows of EXPERIMENTS.md.
use pbo_bench::budget_ms;
use pbo_benchgen::{GroutParams, SynthesisParams};
use pbo_solver::{Branching, Bsolo, BsoloOptions, LbMethod};

fn main() {
    let grout = GroutParams {
        width: 6,
        height: 6,
        nets: 22,
        paths_per_net: 6,
        capacity: 3,
        bend_penalty: 2,
    }
    .generate(0);
    let b = budget_ms(10000);
    let on = Bsolo::new(BsoloOptions::with_lb(LbMethod::Lpr).budget(b)).solve(&grout);
    let off = Bsolo::new(BsoloOptions {
        bound_conflict_learning: false,
        ..BsoloOptions::with_lb(LbMethod::Lpr).budget(b)
    })
    .solve(&grout);
    println!(
        "A2 backjump: learning {:?}/{:.3}s/{} dec | chrono {:?}/{:.3}s/{} dec",
        on.status,
        on.stats.solve_time.as_secs_f64(),
        on.stats.decisions,
        off.status,
        off.stats.solve_time.as_secs_f64(),
        off.stats.decisions
    );

    let synth = SynthesisParams {
        primes: 70,
        minterms: 110,
        cover_density: 4.0,
        exclusions: 10,
        cost: (1, 9),
    }
    .generate(0);
    let lp = Bsolo::new(BsoloOptions {
        branching: Branching::LpGuided,
        ..BsoloOptions::with_lb(LbMethod::Lpr).budget(b)
    })
    .solve(&synth);
    let vs = Bsolo::new(BsoloOptions {
        branching: Branching::Vsids,
        ..BsoloOptions::with_lb(LbMethod::Lpr).budget(b)
    })
    .solve(&synth);
    println!(
        "A3 branching: lp_guided {:?}/{:.3}s/{} dec | vsids {:?}/{:.3}s/{} dec",
        lp.status,
        lp.stats.solve_time.as_secs_f64(),
        lp.stats.decisions,
        vs.status,
        vs.stats.solve_time.as_secs_f64(),
        vs.stats.decisions
    );

    let g5 = GroutParams {
        width: 6,
        height: 6,
        nets: 22,
        paths_per_net: 6,
        capacity: 3,
        bend_penalty: 2,
    }
    .generate(2);
    for (name, kn, ca) in
        [("all_cuts", true, true), ("knapsack_only", true, false), ("no_cuts", false, false)]
    {
        let r = Bsolo::new(BsoloOptions {
            knapsack_cuts: kn,
            cardinality_cuts: ca,
            ..BsoloOptions::with_lb(LbMethod::Lpr).budget(b)
        })
        .solve(&g5);
        println!(
            "A4 cuts {name}: {:?}/{:.3}s/{} dec",
            r.status,
            r.stats.solve_time.as_secs_f64(),
            r.stats.decisions
        );
    }
}
