//! Compares two `BENCH_table1.json` reports and fails on perf
//! regressions (node throughput, solved-instance wall time).
//!
//! ```text
//! cargo run --release -p pbo-bench --bin bench_compare -- \
//!     benches/snapshots/BENCH_table1_pr2.json BENCH_table1.json \
//!     [--min-throughput-ratio 0.1] [--max-time-ratio 10.0]
//! ```
//!
//! Exit status 0 = within the gates, 1 = regression, 2 = usage/IO error.
//! The gates are coarse on purpose (see `pbo_bench::compare`): they trip
//! on order-of-magnitude collapses, not machine-to-machine noise.

use std::process::ExitCode;

use pbo_bench::compare::{
    compare, evaluate, evaluate_anytime, evaluate_bound_ladder, evaluate_scheduler_scaling, Gate,
};
use pbo_bench::parse::parse;

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare <baseline.json> <current.json> \
         [--min-throughput-ratio R] [--max-time-ratio R]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> pbo_bench::parse::JsonValue {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() -> ExitCode {
    let mut gate = Gate::default();
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-throughput-ratio" => {
                gate.min_throughput_ratio =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--max-time-ratio" => {
                gate.max_time_ratio =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => paths.push(other.to_string()),
            _ => usage(),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else { usage() };
    let baseline = load(baseline_path);
    let current = load(current_path);
    let comparison = compare(&baseline, &current);
    println!(
        "compared {} cells: node-throughput ratio {} (gate >= {:.3}), \
         solved wall-time ratio {} (gate <= {:.3})",
        comparison.common_cells,
        comparison.throughput_ratio.map_or("-".into(), |r| format!("{r:.3}")),
        gate.min_throughput_ratio,
        comparison.time_ratio.map_or("-".into(), |r| format!("{r:.3}")),
        gate.max_time_ratio,
    );
    let mut violations = evaluate(&comparison, gate);
    // Anytime dominance: the current portfolio curve must not be
    // dominated by the baseline's final (time, cost) point.
    let anytime = evaluate_anytime(&baseline, &current);
    println!("anytime gate: {} violation(s) against the baseline portfolio curve", anytime.len());
    violations.extend(anytime);
    // Scheduler scaling: optimum preserved at every worker count, queue
    // wait no order-of-magnitude blowup vs the baseline snapshot.
    let sched = evaluate_scheduler_scaling(&baseline, &current);
    println!("scheduler-scaling gate: {} violation(s)", sched.len());
    violations.extend(sched);
    // Bound ladder: adaptive proves the fixed rungs' optima, stays
    // inside the wall-time slack, and beats fixed LPR at least once.
    // Self-contained in the current report (all three methods run in
    // one process), so no baseline is consulted.
    let ladder = evaluate_bound_ladder(&current);
    println!("bound-ladder gate: {} violation(s)", ladder.len());
    violations.extend(ladder);
    if violations.is_empty() {
        println!("OK: no regression vs {baseline_path}");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("REGRESSION: {v}");
        }
        ExitCode::FAILURE
    }
}
