//! Quick diagnostic: effort breakdown of each bsolo configuration on one
//! instance of each family.

use pbo_bench::family_instances;
use pbo_solver::{Bsolo, BsoloOptions, LbMethod};

fn main() {
    let budget = pbo_bench::budget_ms(3000);
    for fam in ["grout", "ptlcmos", "synthesis"] {
        let inst = family_instances(fam, 1).pop().unwrap();
        println!("== {fam}: {} vars {} constraints", inst.num_vars(), inst.num_constraints());
        for lb in [LbMethod::Mis, LbMethod::Lagrangian, LbMethod::Lpr] {
            let r = Bsolo::new(BsoloOptions::with_lb(lb).budget(budget)).solve(&inst);
            println!(
                "{:>5}: {:?} cost={:?} dec={} conf={} bconf={} lbcalls={} lbtime={:.2}s lp_iters={} total={:.2}s",
                lb.name(), r.status, r.best_cost, r.stats.decisions, r.stats.conflicts,
                r.stats.bound_conflicts, r.stats.lb_calls, r.stats.lb_time_total.as_secs_f64(),
                r.stats.lp_iterations, r.stats.solve_time.as_secs_f64()
            );
        }
    }
}
