//! `queue_contention`: the scheduler-contention A/B behind PR 8's
//! work-stealing cube scheduler.
//!
//! The deep-split stress instance (`pbo_benchgen::DeepSplitParams`) is
//! first split by the real cube splitter to prove the stress knob does
//! what it claims — a 1k+ open-cube frontier — and then solved at
//! `--workers` workers under the same wall budget by both cube
//! schedulers in the same process, interleaved:
//!
//! * **stealing** — the default [`SchedulerKind::WorkStealing`]:
//!   per-worker Chase–Lev deques, a lock-free injector cursor over the
//!   frontier, atomic termination, idle parking;
//! * **mutex** — the [`SchedulerKind::MutexDeque`] baseline kept from
//!   PR 5: one central `Mutex<VecDeque>` + `Condvar`.
//!
//! Both sides solve the identical cube partition (`split_target` pins
//! the frontier), so `SolverStats::queue_wait_total` — the wall time
//! workers spend inside the acquire loop, see `utilization()` — is a
//! direct A/B of hand-off machinery. Each side's figure is the best of
//! `--reps` interleaved runs: queue wait is wall time, so a kernel
//! preemption that lands inside an acquire window (near-certain
//! eventually when CI schedules more workers than cores onto one box)
//! shows up as a tens-of-ms outlier on either side, and the minimum is
//! the run that dodged it.
//!
//! The gate is two-sided, for the same reason the `par_bb` CI gate
//! speaks of algorithmic rather than core-count speedups: on a machine
//! with enough cores, the central deque is a genuine convoy and the
//! stealing side must win the direct ratio (`--max-wait-ratio`); on a
//! single-core runner neither scheduler ever truly contends (only one
//! worker runs at a time, so the lock is almost always free and both
//! waits are sub-1% of wall), and the meaningful assertion is absolute:
//! the stealing scheduler's total wait stays negligible
//! (`--max-wait-abs-ms`). Passing either arm passes the gate. The
//! absolute arm is not a formality — the pre-parking prototype of this
//! scheduler spun and yielded while idle, its waiting workers competed
//! with the searching ones for the one core, and this very harness
//! measured the result at 54 ms of a 77 ms solve (a 100x blowup over
//! the condvar baseline) before idle parking fixed it. A regression to
//! busy idling fails both arms. Costs are also cross-checked: a
//! scheduler must never change the answer.
//!
//! ```text
//! cargo run --release -p pbo-bench --bin queue_contention -- \
//!     [--seed N] [--workers N] [--split-target N] [--min-frontier N] \
//!     [--timeout-ms N] [--reps N] [--max-wait-ratio R] \
//!     [--max-wait-abs-ms MS] [--json PATH]
//! ```
//!
//! Exit status 0 = within the gate, 1 = contention regression (or the
//! stress knob failed to provoke the frontier), 2 = usage error.

use std::time::Duration;

use pbo_bench::json::escape;
use pbo_benchgen::DeepSplitParams;
use pbo_solver::{
    BsoloOptions, Budget, CubeSplitter, LbMethod, ParBsolo, SchedulerKind, SolveResult,
};

/// One side's best-of-reps measurements.
struct Side {
    kind: SchedulerKind,
    queue_wait: Duration,
    time: Duration,
    nodes: u64,
    steals: u64,
    injections: u64,
    resplits: u64,
    cost: Option<i64>,
    optimal: bool,
}

fn run_side(
    instance: &pbo_core::Instance,
    kind: SchedulerKind,
    workers: usize,
    split_target: usize,
    timeout: Duration,
) -> SolveResult {
    let mut options = BsoloOptions::with_lb(LbMethod::Mis).budget(Budget::time_limit(timeout));
    options.scheduler = kind;
    options.split_target = Some(split_target);
    ParBsolo::new(options, workers).solve(instance)
}

fn main() {
    let mut seed = 0u64;
    let mut workers = 8usize;
    let mut split_target = 2048usize;
    let mut min_frontier = 1000usize;
    let mut timeout_ms = 4_000u64;
    let mut reps = 5usize;
    let mut max_wait_ratio = 1.0f64;
    let mut max_wait_abs_ms = 2.5f64;
    let mut json_path = String::from("BENCH_queue_contention.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = args.next().expect("--seed").parse().expect("bad seed"),
            "--workers" => workers = args.next().expect("--workers").parse().expect("bad workers"),
            "--split-target" => {
                split_target =
                    args.next().expect("--split-target").parse().expect("bad split target")
            }
            "--min-frontier" => {
                min_frontier =
                    args.next().expect("--min-frontier").parse().expect("bad min frontier")
            }
            "--timeout-ms" => {
                timeout_ms = args.next().expect("--timeout-ms").parse().expect("bad timeout")
            }
            "--reps" => reps = args.next().expect("--reps").parse().expect("bad reps"),
            "--max-wait-ratio" => {
                max_wait_ratio = args.next().expect("--max-wait-ratio").parse().expect("bad ratio")
            }
            "--max-wait-abs-ms" => {
                max_wait_abs_ms =
                    args.next().expect("--max-wait-abs-ms").parse().expect("bad abs gate")
            }
            "--json" => json_path = args.next().expect("--json"),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let instance = DeepSplitParams::default().generate(seed);
    println!(
        "queue_contention: {} ({} vars, {} clauses), {workers} workers, best of {reps} reps, \
         gate wait ratio <= {max_wait_ratio:.2} OR stealing wait <= {max_wait_abs_ms:.2} ms",
        instance.name(),
        instance.num_vars(),
        instance.num_constraints(),
    );

    // The stress-knob claim first: the deep-split instance must hand the
    // scheduler a 1k+ open-cube frontier, not a handful of cubes.
    let split = CubeSplitter::split(&instance, split_target);
    println!(
        "splitter frontier: {} open cubes (target {split_target}, refuted {}, solved {})",
        split.open.len(),
        split.refuted.len(),
        split.solved.len(),
    );
    if split.open.len() < min_frontier {
        eprintln!(
            "REGRESSION: deep-split stress knob provoked only {} open cubes (< {min_frontier})",
            split.open.len()
        );
        std::process::exit(1);
    }

    // Interleaved A/B, best-of-reps per side (minimum total queue wait:
    // the run of each scheduler that dodged the preemption noise).
    let timeout = Duration::from_millis(timeout_ms);
    let mut sides = [
        Side {
            kind: SchedulerKind::WorkStealing,
            queue_wait: Duration::MAX,
            time: Duration::ZERO,
            nodes: 0,
            steals: 0,
            injections: 0,
            resplits: 0,
            cost: None,
            optimal: false,
        },
        Side {
            kind: SchedulerKind::MutexDeque,
            queue_wait: Duration::MAX,
            time: Duration::ZERO,
            nodes: 0,
            steals: 0,
            injections: 0,
            resplits: 0,
            cost: None,
            optimal: false,
        },
    ];
    let mut costs: Vec<Option<i64>> = Vec::new();
    for rep in 0..reps {
        for side in sides.iter_mut() {
            let result = run_side(&instance, side.kind, workers, split_target, timeout);
            let wait = result.stats.queue_wait_total;
            println!(
                "rep {rep} {:<13} wait {:>8.2} ms | wall {:>8.1} ms | {:>7} nodes | \
                 steals {:>5} | injected {:>5} | resplits {:>3} | cost {} ({})",
                side.kind.name(),
                wait.as_secs_f64() * 1e3,
                result.stats.solve_time.as_secs_f64() * 1e3,
                result.stats.decisions,
                result.stats.steals,
                result.stats.injections,
                result.stats.resplits,
                result.best_cost.map_or("-".into(), |c| c.to_string()),
                if result.is_optimal() { "optimal" } else { "budget" },
            );
            if result.is_optimal() {
                costs.push(result.best_cost);
            }
            if wait < side.queue_wait {
                side.queue_wait = wait;
                side.time = result.stats.solve_time;
                side.nodes = result.stats.decisions;
                side.steals = result.stats.steals;
                side.injections = result.stats.injections;
                side.resplits = result.stats.resplits;
                side.cost = result.best_cost;
                side.optimal = result.is_optimal();
            }
        }
    }
    // A scheduler is hand-off machinery, not search: every run that
    // proved optimality must agree on the optimum.
    if costs.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("REGRESSION: schedulers disagree on the optimum: {costs:?}");
        std::process::exit(1);
    }

    let [steal, mutex] = &sides;
    let steal_ms = steal.queue_wait.as_secs_f64() * 1e3;
    let mutex_ms = mutex.queue_wait.as_secs_f64() * 1e3;
    let ratio = if mutex_ms > 0.0 {
        steal_ms / mutex_ms
    } else if steal_ms > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    let ratio_ok = ratio <= max_wait_ratio;
    let abs_ok = steal_ms <= max_wait_abs_ms;
    println!(
        "best-of-reps queue wait: stealing {steal_ms:.2} ms vs mutex {mutex_ms:.2} ms -> \
         ratio {ratio:.3} ({}), absolute {steal_ms:.2} ms ({})",
        if ratio_ok { "<= gate" } else { "over gate" },
        if abs_ok { "<= gate" } else { "over gate" },
    );

    let side_json = |s: &Side| {
        format!(
            "{{\"scheduler\": \"{}\", \"queue_wait_ms\": {:.3}, \"time_ms\": {:.3}, \
             \"nodes\": {}, \"steals\": {}, \"injections\": {}, \"resplits\": {}, \
             \"cost\": {}, \"optimal\": {}}}",
            s.kind.name(),
            s.queue_wait.as_secs_f64() * 1e3,
            s.time.as_secs_f64() * 1e3,
            s.nodes,
            s.steals,
            s.injections,
            s.resplits,
            s.cost.map_or("null".into(), |c| c.to_string()),
            s.optimal,
        )
    };
    let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
    let json = format!(
        "{{\n  \"instance\": \"{}\",\n  \"workers\": {workers},\n  \
         \"available_parallelism\": {avail},\n  \"frontier\": {},\n  \
         \"split_target\": {split_target},\n  \"reps\": {reps},\n  \
         \"stealing\": {},\n  \"mutex\": {},\n  \"wait_ratio\": {:.4},\n  \
         \"max_wait_ratio_gate\": {max_wait_ratio:.4},\n  \
         \"max_wait_abs_ms_gate\": {max_wait_abs_ms:.4}\n}}\n",
        escape(instance.name()),
        split.open.len(),
        side_json(steal),
        side_json(mutex),
        ratio,
    );
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(err) => {
            eprintln!("failed to write {json_path}: {err}");
            std::process::exit(1);
        }
    }
    if !ratio_ok && !abs_ok {
        eprintln!(
            "REGRESSION: stealing scheduler queue wait {steal_ms:.2} ms is {ratio:.3}x the \
             mutex baseline (gates: ratio <= {max_wait_ratio:.2}, absolute <= \
             {max_wait_abs_ms:.2} ms)"
        );
        std::process::exit(1);
    }
}
