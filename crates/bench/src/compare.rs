//! Snapshot comparison: flags node-throughput or wall-time regressions
//! between two `BENCH_table1.json` reports.
//!
//! Per-PR snapshots live under `benches/snapshots/`; CI regenerates the
//! report with the same parameters and runs `bench_compare` against the
//! previous snapshot. Wall times move with the machine, so the gates are
//! deliberately coarse ratios over geometric means: they catch a hot
//! path collapsing (an accidental O(instance) per node, a pruning bug
//! exploding the tree), not percent-level noise.

use std::collections::BTreeMap;

use crate::parse::JsonValue;

/// Per-cell performance extracted from a report.
#[derive(Copy, Clone, Debug)]
pub struct CellPerf {
    /// Wall time in milliseconds.
    pub time_ms: f64,
    /// Nodes (decisions) explored.
    pub nodes: f64,
    /// Whether the solve finished (optimal or infeasible).
    pub solved: bool,
}

/// `(family, instance, solver)` → performance, for every cell of the
/// report.
pub fn extract_cells(report: &JsonValue) -> BTreeMap<(String, String, String), CellPerf> {
    let mut out = BTreeMap::new();
    let Some(families) = report.get("families").and_then(JsonValue::items) else {
        return out;
    };
    for fam in families {
        let family = fam.get("family").and_then(JsonValue::as_str).unwrap_or("?").to_string();
        let Some(instances) = fam.get("instances").and_then(JsonValue::items) else { continue };
        for inst in instances {
            let name = inst.get("instance").and_then(JsonValue::as_str).unwrap_or("?").to_string();
            let Some(cells) = inst.get("cells").and_then(JsonValue::items) else { continue };
            for cell in cells {
                let solver =
                    cell.get("solver").and_then(JsonValue::as_str).unwrap_or("?").to_string();
                let time_ms = cell.get("time_ms").and_then(JsonValue::as_f64).unwrap_or(0.0);
                let nodes = cell.get("nodes").and_then(JsonValue::as_f64).unwrap_or(0.0);
                let status = cell.get("status").and_then(JsonValue::as_str).unwrap_or("");
                out.insert(
                    (family.clone(), name.clone(), solver),
                    CellPerf {
                        time_ms,
                        nodes,
                        solved: status == "optimal" || status == "infeasible",
                    },
                );
            }
        }
    }
    out
}

/// Outcome of comparing a current report against a baseline.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Cells present in both reports.
    pub common_cells: usize,
    /// Geometric mean over common cells of
    /// `current node throughput / baseline node throughput`
    /// (cells with zero nodes or time on either side are skipped).
    pub throughput_ratio: Option<f64>,
    /// Geometric mean over cells *solved on both sides* of
    /// `current wall time / baseline wall time`.
    pub time_ratio: Option<f64>,
}

fn geomean(ratios: &[f64]) -> Option<f64> {
    let logs: Vec<f64> =
        ratios.iter().copied().filter(|r| r.is_finite() && *r > 0.0).map(f64::ln).collect();
    if logs.is_empty() {
        return None;
    }
    Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
}

/// Compares two parsed reports cell by cell.
pub fn compare(baseline: &JsonValue, current: &JsonValue) -> Comparison {
    let base = extract_cells(baseline);
    let cur = extract_cells(current);
    let mut throughput = Vec::new();
    let mut times = Vec::new();
    let mut common = 0usize;
    for (key, b) in &base {
        let Some(c) = cur.get(key) else { continue };
        common += 1;
        if b.nodes > 0.0 && b.time_ms > 0.0 && c.nodes > 0.0 && c.time_ms > 0.0 {
            let b_tp = b.nodes / b.time_ms;
            let c_tp = c.nodes / c.time_ms;
            throughput.push(c_tp / b_tp);
        }
        if b.solved && c.solved && b.time_ms > 0.0 && c.time_ms > 0.0 {
            times.push(c.time_ms / b.time_ms);
        }
    }
    Comparison {
        common_cells: common,
        throughput_ratio: geomean(&throughput),
        time_ratio: geomean(&times),
    }
}

/// Regression thresholds.
#[derive(Copy, Clone, Debug)]
pub struct Gate {
    /// Fail when the throughput geomean drops below this (e.g. `0.1` =
    /// a >10x slowdown in nodes/second).
    pub min_throughput_ratio: f64,
    /// Fail when the solved-instance wall-time geomean rises above this.
    pub max_time_ratio: f64,
}

impl Default for Gate {
    fn default() -> Gate {
        // Coarse by design: CI runners and dev laptops differ by small
        // integer factors; an order of magnitude means a real regression.
        Gate { min_throughput_ratio: 0.1, max_time_ratio: 10.0 }
    }
}

/// Evaluates a comparison against the gate; the returned list of
/// violations is empty on pass.
pub fn evaluate(comparison: &Comparison, gate: Gate) -> Vec<String> {
    let mut violations = Vec::new();
    if comparison.common_cells == 0 {
        violations
            .push("no common cells between the reports (different families/seeds?)".to_string());
        return violations;
    }
    if comparison.throughput_ratio.is_none() && comparison.time_ratio.is_none() {
        // Cells exist but none were comparable: every current-side solve
        // returned instantly with zero nodes and nothing solved — the
        // exact collapse the gate exists to catch, not a pass.
        violations.push(
            "no comparable cells: the current report has no solved instances and no \
             node counts (total solver collapse?)"
                .to_string(),
        );
        return violations;
    }
    if let Some(tp) = comparison.throughput_ratio {
        if tp < gate.min_throughput_ratio {
            violations.push(format!(
                "node throughput regressed to {:.3}x of the baseline (gate {:.3}x)",
                tp, gate.min_throughput_ratio
            ));
        }
    }
    if let Some(t) = comparison.time_ratio {
        if t > gate.max_time_ratio {
            violations.push(format!(
                "solved-instance wall time rose to {:.3}x of the baseline (gate {:.3}x)",
                t, gate.max_time_ratio
            ));
        }
    }
    violations
}

/// Wall-clock slack applied to the baseline's reference time in the
/// anytime-dominance gate: snapshots are recorded on whatever machine
/// ran them, so "reach the same cost by the same time" is asserted with
/// a 2x allowance (plus an absolute floor, sub-millisecond reference
/// points being pure scheduling noise).
pub const ANYTIME_TIME_SLACK: f64 = 2.0;

/// Absolute floor (ms) on the anytime deadline.
pub const ANYTIME_TIME_FLOOR_MS: f64 = 50.0;

/// One portfolio instance's anytime data extracted from a report.
#[derive(Clone, Debug, Default)]
pub struct AnytimePerf {
    /// The incumbent trajectory as `(time_ms, cost)`, improving in cost.
    /// Empty when the report predates the `anytime` field; the final
    /// point is synthesized from `warm_cost` at `warm_time_ms` then.
    pub curve: Vec<(f64, i64)>,
    /// The portfolio's final cost (`warm_cost`).
    pub final_cost: Option<i64>,
    /// Reference time: when this report's own curve first attained
    /// `final_cost` (its last improvement). Falls back to the full
    /// `warm_time_ms` for pre-anytime reports. Deliberately *not*
    /// `warm_time_to_target_ms` — that clock stops at the *cold run's*
    /// cost, a different (usually far earlier) point than the final
    /// incumbent this gate asks the current curve to match.
    pub ref_time_ms: Option<f64>,
}

/// Extracts per-instance anytime curves from a report's portfolio
/// section (empty map when the report has none).
pub fn extract_anytime(report: &JsonValue) -> BTreeMap<String, AnytimePerf> {
    let mut out = BTreeMap::new();
    let Some(instances) =
        report.get("portfolio").and_then(|p| p.get("instances")).and_then(JsonValue::items)
    else {
        return out;
    };
    for inst in instances {
        let name = inst.get("instance").and_then(JsonValue::as_str).unwrap_or("?").to_string();
        let final_cost = inst.get("warm_cost").and_then(JsonValue::as_f64).map(|c| c as i64);
        let warm_time = inst.get("warm_time_ms").and_then(JsonValue::as_f64);
        let mut curve: Vec<(f64, i64)> = inst
            .get("anytime")
            .and_then(JsonValue::items)
            .map(|points| {
                points
                    .iter()
                    .filter_map(|p| {
                        let pair = p.items()?;
                        let t = pair.first()?.as_f64()?;
                        let c = pair.get(1)?.as_f64()? as i64;
                        Some((t, c))
                    })
                    .collect()
            })
            .unwrap_or_default();
        if curve.is_empty() {
            // Pre-anytime report: its final point is all we know.
            if let (Some(c), Some(t)) = (final_cost, warm_time) {
                curve.push((t, c));
            }
        }
        let ref_time_ms = final_cost
            .and_then(|fc| curve.iter().find(|&&(_, c)| c <= fc).map(|&(t, _)| t))
            .or(warm_time);
        out.insert(name, AnytimePerf { curve, final_cost, ref_time_ms });
    }
    out
}

/// The anytime-dominance gate: on every portfolio instance both reports
/// cover, the current curve must reach the baseline's final cost within
/// the baseline's reference time (x [`ANYTIME_TIME_SLACK`], floored at
/// [`ANYTIME_TIME_FLOOR_MS`]) — or end strictly better. A pass means the
/// current portfolio's anytime behaviour is never dominated by the
/// snapshot's final-cost point; returns the violations, empty on pass.
pub fn evaluate_anytime(baseline: &JsonValue, current: &JsonValue) -> Vec<String> {
    let base = extract_anytime(baseline);
    let cur = extract_anytime(current);
    let mut violations = Vec::new();
    for (name, b) in &base {
        let Some(c) = cur.get(name) else { continue };
        let (Some(b_cost), Some(b_time)) = (b.final_cost, b.ref_time_ms) else { continue };
        let deadline = (b_time * ANYTIME_TIME_SLACK).max(ANYTIME_TIME_FLOOR_MS);
        let reached = c.curve.iter().any(|&(t, cost)| t <= deadline && cost <= b_cost);
        let better_final = c.final_cost.is_some_and(|f| f < b_cost);
        if !reached && !better_final {
            violations.push(format!(
                "{name}: anytime curve dominated by the baseline — no incumbent <= {b_cost} \
                 within {deadline:.1}ms (baseline reached it at {b_time:.1}ms; current curve \
                 {:?}, final cost {:?})",
                c.curve, c.final_cost
            ));
        }
    }
    violations
}

/// Queue-wait slack of the scheduler-scaling gate: the current report's
/// 8-worker wait may grow to this multiple of the baseline's before the
/// gate trips. Coarse on purpose — wall-clock waits on shared CI runners
/// carry preemption noise; the gate exists to catch the busy-idling
/// class of regression (the pre-parking scheduler prototype measured a
/// 100x blowup), not millisecond drift.
pub const SCHED_WAIT_SLACK: f64 = 10.0;

/// Absolute floor (ms) under which the scheduler-scaling queue wait
/// passes regardless of ratio.
pub const SCHED_WAIT_FLOOR_MS: f64 = 50.0;

/// One worker-count row of a report's scheduler-scaling section.
#[derive(Clone, Debug)]
pub struct SchedScalingRow {
    /// Worker count.
    pub workers: f64,
    /// Final cost (None when the run found no solution).
    pub cost: Option<i64>,
    /// Whether the run proved optimality.
    pub optimal: bool,
    /// Total queue wait in milliseconds.
    pub wait_ms: f64,
}

/// Extracts the scheduler-scaling rows from a report (`None` when the
/// report predates the section).
pub fn extract_scheduler_scaling(report: &JsonValue) -> Option<Vec<SchedScalingRow>> {
    let runs = report.get("scheduler_scaling")?.get("runs")?.items()?;
    Some(
        runs.iter()
            .filter_map(|r| {
                Some(SchedScalingRow {
                    workers: r.get("workers")?.as_f64()?,
                    cost: r.get("cost").and_then(JsonValue::as_f64).map(|c| c as i64),
                    optimal: r.get("optimal").and_then(JsonValue::as_bool).unwrap_or(false),
                    wait_ms: r.get("queue_wait_ms")?.as_f64()?,
                })
            })
            .collect(),
    )
}

/// The scheduler-scaling gate. Within the current report: every worker
/// count must reach the 1-worker run's optimum (a scheduler re-routes
/// work, it must never change the answer). Against the baseline: the
/// widest run's queue wait must stay within [`SCHED_WAIT_SLACK`] of the
/// baseline's, floored at [`SCHED_WAIT_FLOOR_MS`] — the busy-idling
/// regression detector. Reports without the section pass vacuously.
pub fn evaluate_scheduler_scaling(baseline: &JsonValue, current: &JsonValue) -> Vec<String> {
    let Some(cur) = extract_scheduler_scaling(current) else { return Vec::new() };
    let mut violations = Vec::new();
    if let Some(base_run) = cur.first() {
        for run in cur.iter().skip(1) {
            match (base_run.cost, run.cost) {
                (Some(b), Some(c)) if c > b => violations.push(format!(
                    "scheduler_scaling: {} workers found cost {c}, worse than the 1-worker \
                     optimum {b}",
                    run.workers
                )),
                (Some(b), None) => violations.push(format!(
                    "scheduler_scaling: {} workers found no solution where 1 worker proved {b}",
                    run.workers
                )),
                _ => {}
            }
            if base_run.optimal && !run.optimal {
                violations.push(format!(
                    "scheduler_scaling: {} workers failed to prove optimality where 1 worker did",
                    run.workers
                ));
            }
        }
    }
    if let (Some(base), Some(cur_widest)) =
        (extract_scheduler_scaling(baseline).as_ref().and_then(|b| b.last()), cur.last())
    {
        let bound = (base.wait_ms * SCHED_WAIT_SLACK).max(SCHED_WAIT_FLOOR_MS);
        if cur_widest.wait_ms > bound {
            violations.push(format!(
                "scheduler_scaling: queue wait at {} workers is {:.1}ms, over {bound:.1}ms \
                 (baseline {:.1}ms x{SCHED_WAIT_SLACK} slack, {SCHED_WAIT_FLOOR_MS}ms floor)",
                cur_widest.workers, cur_widest.wait_ms, base.wait_ms
            ));
        }
    }
    violations
}

/// Wall-time slack of the bound-ladder gate: the adaptive column may
/// take up to this multiple of the best fixed rung's time on a gated
/// instance. Coarse because the probe's fixed sides are measured in the
/// same process on the same (possibly noisy) runner.
pub const BOUND_LADDER_TIME_SLACK: f64 = 2.0;

/// Absolute floor (ms) under which the bound-ladder wall-time arm passes
/// regardless of ratio — sub-50 ms solves are scheduling noise.
pub const BOUND_LADDER_TIME_FLOOR_MS: f64 = 50.0;

/// One method's run extracted from a report's bound-ladder section.
#[derive(Clone, Debug)]
pub struct BoundLadderRow {
    /// Method key (`lgr` / `lpr` / `adaptive`).
    pub method: String,
    /// Final cost.
    pub cost: Option<i64>,
    /// Whether the run proved optimality.
    pub optimal: bool,
    /// Wall time in milliseconds.
    pub time_ms: f64,
}

/// Extracts the bound-ladder section as `instance → rows` (`None` when
/// the report predates the section).
pub fn extract_bound_ladder(report: &JsonValue) -> Option<BTreeMap<String, Vec<BoundLadderRow>>> {
    let instances = report.get("bound_ladder")?.get("instances")?.items()?;
    let mut out = BTreeMap::new();
    for inst in instances {
        let name = inst.get("instance").and_then(JsonValue::as_str).unwrap_or("?").to_string();
        let rows = inst
            .get("runs")
            .and_then(JsonValue::items)
            .map(|runs| {
                runs.iter()
                    .filter_map(|r| {
                        Some(BoundLadderRow {
                            method: r.get("method")?.as_str()?.to_string(),
                            cost: r.get("cost").and_then(JsonValue::as_f64).map(|c| c as i64),
                            optimal: r.get("optimal").and_then(JsonValue::as_bool).unwrap_or(false),
                            time_ms: r.get("time_ms")?.as_f64()?,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        out.insert(name, rows);
    }
    Some(out)
}

/// The bound-ladder gate, evaluated within the current report (the
/// probe runs all three methods in one process, so the comparison is
/// machine-independent). On every gated instance — one where a fixed
/// rung (LGR or LPR) proved optimality — the adaptive column must prove
/// the same optimum and finish within [`BOUND_LADDER_TIME_SLACK`] of the
/// best fixed rung's wall time (floored at
/// [`BOUND_LADDER_TIME_FLOOR_MS`]); and across the gated seeds it must
/// beat fixed LPR outright at least once (an optimum LPR missed, or the
/// same optimum in strictly less time). Reports without the section
/// pass vacuously.
pub fn evaluate_bound_ladder(current: &JsonValue) -> Vec<String> {
    let Some(instances) = extract_bound_ladder(current) else { return Vec::new() };
    let mut violations = Vec::new();
    let mut gated = 0usize;
    let mut beats_lpr = 0usize;
    for (name, rows) in &instances {
        let run = |m: &str| rows.iter().find(|r| r.method == m);
        let (Some(lgr), Some(lpr), Some(ada)) = (run("lgr"), run("lpr"), run("adaptive")) else {
            violations.push(format!("{name}: bound_ladder runs incomplete ({rows:?})"));
            continue;
        };
        if ada.optimal && (!lpr.optimal || ada.time_ms < lpr.time_ms) {
            beats_lpr += 1;
        }
        let fixed: Vec<&BoundLadderRow> = [lgr, lpr].into_iter().filter(|r| r.optimal).collect();
        let Some(best_cost) = fixed.iter().filter_map(|r| r.cost).min() else { continue };
        gated += 1;
        if !ada.optimal || ada.cost != Some(best_cost) {
            violations.push(format!(
                "{name}: adaptive ladder missed the fixed-rung optimum {best_cost} \
                 (optimal {}, cost {:?})",
                ada.optimal, ada.cost
            ));
            continue;
        }
        let best_time = fixed.iter().map(|r| r.time_ms).fold(f64::INFINITY, f64::min);
        let bound = (best_time * BOUND_LADDER_TIME_SLACK).max(BOUND_LADDER_TIME_FLOOR_MS);
        if ada.time_ms > bound {
            violations.push(format!(
                "{name}: adaptive ladder took {:.1}ms, over {bound:.1}ms (best fixed rung \
                 {best_time:.1}ms x{BOUND_LADDER_TIME_SLACK} slack, \
                 {BOUND_LADDER_TIME_FLOOR_MS}ms floor)",
                ada.time_ms
            ));
        }
    }
    if gated > 0 && beats_lpr == 0 {
        violations.push(format!(
            "bound_ladder: adaptive never beat fixed LPR on any of the {gated} gated \
             instance(s) — the ladder is not paying for itself"
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn report(time_ms: f64, nodes: u64) -> JsonValue {
        let text = format!(
            r#"{{"budget_ms": 500, "seeds": 1, "families": [
                {{"family": "synthesis", "instances": [
                    {{"instance": "synth-0", "cells": [
                        {{"solver": "LPR", "status": "optimal", "cost": 5,
                          "time_ms": {time_ms}, "nodes": {nodes},
                          "lb_calls": 10, "lb_time_ms": 1.0, "sub_time_ms": 0.5}}
                    ]}}
                ]}}
            ], "portfolio": null, "residual_ablation": null}}"#
        );
        parse(&text).unwrap()
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(100.0, 1000);
        let c = compare(&a, &a);
        assert_eq!(c.common_cells, 1);
        assert!((c.throughput_ratio.unwrap() - 1.0).abs() < 1e-9);
        assert!((c.time_ratio.unwrap() - 1.0).abs() < 1e-9);
        assert!(evaluate(&c, Gate::default()).is_empty());
    }

    #[test]
    fn throughput_collapse_is_flagged() {
        // Same nodes, 20x the time: throughput ratio 0.05 < 0.1.
        let base = report(100.0, 1000);
        let cur = report(2000.0, 1000);
        let c = compare(&base, &cur);
        let violations = evaluate(&c, Gate::default());
        assert!(!violations.is_empty(), "{c:?}");
        assert!(violations.iter().any(|v| v.contains("throughput")), "{violations:?}");
    }

    #[test]
    fn modest_machine_noise_passes() {
        // 2x slower machine: within the coarse gates.
        let base = report(100.0, 1000);
        let cur = report(200.0, 1000);
        let c = compare(&base, &cur);
        assert!(evaluate(&c, Gate::default()).is_empty());
    }

    #[test]
    fn total_collapse_with_common_cells_is_a_violation() {
        // Same cell keys, but the current side solved nothing and
        // explored zero nodes: both geomeans are None, which must fail,
        // not pass.
        let base = report(100.0, 1000);
        let collapsed = parse(
            r#"{"budget_ms": 500, "seeds": 1, "families": [
                {"family": "synthesis", "instances": [
                    {"instance": "synth-0", "cells": [
                        {"solver": "LPR", "status": "unknown (budget)", "cost": null,
                         "time_ms": 0.1, "nodes": 0,
                         "lb_calls": 0, "lb_time_ms": 0.0, "sub_time_ms": 0.0}
                    ]}
                ]}
            ], "portfolio": null, "residual_ablation": null}"#,
        )
        .unwrap();
        let c = compare(&base, &collapsed);
        assert_eq!(c.common_cells, 1);
        let violations = evaluate(&c, Gate::default());
        assert!(!violations.is_empty(), "{c:?}");
        assert!(violations.iter().any(|v| v.contains("no comparable cells")), "{violations:?}");
    }

    fn portfolio_report(warm_cost: i64, warm_tt_ms: f64, anytime: &str) -> JsonValue {
        let text = format!(
            r#"{{"budget_ms": 500, "seeds": 1, "families": [],
                "portfolio": {{"instances": [
                    {{"instance": "synth-0", "target_cost": {warm_cost},
                      "warm_time_to_target_ms": {warm_tt_ms}, "warm_time_ms": 400.0,
                      "warm_cost": {warm_cost}, "anytime": {anytime}}}
                ]}},
                "residual_ablation": null}}"#
        );
        parse(&text).unwrap()
    }

    #[test]
    fn matching_anytime_curves_pass() {
        let base = portfolio_report(5, 100.0, "[[50.0, 8], [100.0, 5]]");
        let cur = portfolio_report(5, 120.0, "[[60.0, 7], [120.0, 5]]");
        assert!(evaluate_anytime(&base, &cur).is_empty());
    }

    #[test]
    fn dominated_curve_is_flagged() {
        // Baseline had cost 5 by 100ms; current never gets below 7
        // inside 2x100ms and ends worse.
        let base = portfolio_report(5, 100.0, "[[100.0, 5]]");
        let cur = portfolio_report(7, 150.0, "[[150.0, 7]]");
        let violations = evaluate_anytime(&base, &cur);
        assert!(!violations.is_empty());
        assert!(violations[0].contains("dominated"), "{violations:?}");
    }

    #[test]
    fn strictly_better_final_cost_excuses_a_late_curve() {
        // Current reaches the baseline cost late, but its final cost is
        // strictly better: improved quality is not a regression.
        let base = portfolio_report(5, 10.0, "[[10.0, 5]]");
        let cur = portfolio_report(4, 300.0, "[[300.0, 4]]");
        assert!(evaluate_anytime(&base, &cur).is_empty());
    }

    #[test]
    fn pre_anytime_baseline_still_gates_on_its_final_point() {
        // A PR-6-era snapshot has no "anytime" array; its warm point
        // still anchors the gate, and a current run matching it passes.
        let base = parse(
            r#"{"budget_ms": 500, "seeds": 1, "families": [],
                "portfolio": {"instances": [
                    {"instance": "synth-0", "target_cost": 5,
                     "warm_time_to_target_ms": 100.0, "warm_time_ms": 400.0,
                     "warm_cost": 5}
                ]},
                "residual_ablation": null}"#,
        )
        .unwrap();
        let good = portfolio_report(5, 90.0, "[[90.0, 5]]");
        assert!(evaluate_anytime(&base, &good).is_empty());
        let bad = portfolio_report(9, 350.0, "[[350.0, 9]]");
        assert!(!evaluate_anytime(&base, &bad).is_empty());
    }

    fn sched_report(runs: &str) -> JsonValue {
        let text = format!(
            r#"{{"budget_ms": 500, "seeds": 1, "families": [],
                "portfolio": null,
                "scheduler_scaling": {{"instance": "deepsplit-v48-c150-s0",
                    "frontier": 2048, "split_target": 2048,
                    "available_parallelism": 1, "runs": {runs}}},
                "residual_ablation": null}}"#
        );
        parse(&text).unwrap()
    }

    fn sched_run(workers: usize, cost: i64, optimal: bool, wait_ms: f64) -> String {
        format!(
            r#"{{"workers": {workers}, "cost": {cost}, "optimal": {optimal},
                "time_ms": 80.0, "nodes": 38831, "steals": 0, "injections": 2048,
                "resplits": 0, "queue_wait_ms": {wait_ms}}}"#
        )
    }

    #[test]
    fn matching_scheduler_scaling_passes() {
        let runs = format!("[{}, {}]", sched_run(1, 15, true, 0.0), sched_run(8, 15, true, 0.5));
        let base = sched_report(&runs);
        assert!(evaluate_scheduler_scaling(&base, &base).is_empty());
    }

    #[test]
    fn scheduler_changing_the_answer_is_flagged() {
        let base = sched_report(&format!(
            "[{}, {}]",
            sched_run(1, 15, true, 0.0),
            sched_run(8, 15, true, 0.5)
        ));
        let worse_cost = sched_report(&format!(
            "[{}, {}]",
            sched_run(1, 15, true, 0.0),
            sched_run(8, 16, true, 0.5)
        ));
        let violations = evaluate_scheduler_scaling(&base, &worse_cost);
        assert!(violations.iter().any(|v| v.contains("worse than the 1-worker")), "{violations:?}");
        let lost_proof = sched_report(&format!(
            "[{}, {}]",
            sched_run(1, 15, true, 0.0),
            sched_run(8, 15, false, 0.5)
        ));
        let violations = evaluate_scheduler_scaling(&base, &lost_proof);
        assert!(violations.iter().any(|v| v.contains("prove optimality")), "{violations:?}");
    }

    #[test]
    fn queue_wait_blowup_is_flagged_but_noise_is_not() {
        // The busy-idling class of regression: baseline waited 0.5ms at 8
        // workers, current waits 54ms (the measured pre-parking figure) —
        // over both the 10x slack and the 50ms floor.
        let base = sched_report(&format!(
            "[{}, {}]",
            sched_run(1, 15, true, 0.0),
            sched_run(8, 15, true, 0.5)
        ));
        let blowup = sched_report(&format!(
            "[{}, {}]",
            sched_run(1, 15, true, 0.0),
            sched_run(8, 15, true, 54.0)
        ));
        let violations = evaluate_scheduler_scaling(&base, &blowup);
        assert!(violations.iter().any(|v| v.contains("queue wait")), "{violations:?}");
        // 30ms is a preemption outlier on a busy runner: under the floor.
        let noisy = sched_report(&format!(
            "[{}, {}]",
            sched_run(1, 15, true, 0.0),
            sched_run(8, 15, true, 30.0)
        ));
        assert!(evaluate_scheduler_scaling(&base, &noisy).is_empty());
    }

    #[test]
    fn reports_without_scheduler_scaling_pass_vacuously() {
        // PR-7-era snapshots predate the section on both sides, and an
        // old baseline cannot gate a new current's queue wait.
        let old = report(100.0, 1000);
        assert!(evaluate_scheduler_scaling(&old, &old).is_empty());
        let cur = sched_report(&format!(
            "[{}, {}]",
            sched_run(1, 15, true, 0.0),
            sched_run(8, 15, true, 0.5)
        ));
        assert!(evaluate_scheduler_scaling(&old, &cur).is_empty());
    }

    fn ladder_report(runs: &str) -> JsonValue {
        let text = format!(
            r#"{{"budget_ms": 500, "seeds": 1, "families": [],
                "portfolio": null,
                "bound_ladder": {{"instances": [
                    {{"instance": "synth-0", "runs": {runs}}}
                ], "summary": {{"gated_instances": 1, "same_optima": true, "beats_lpr": 1}}}},
                "residual_ablation": null}}"#
        );
        parse(&text).unwrap()
    }

    fn ladder_run(method: &str, cost: i64, optimal: bool, time_ms: f64) -> String {
        format!(
            r#"{{"method": "{method}", "cost": {cost}, "optimal": {optimal},
                "time_ms": {time_ms}, "nodes": 100, "lb_calls": 50,
                "lb_time_ms": 10.0, "escalations": 0}}"#
        )
    }

    #[test]
    fn healthy_ladder_passes() {
        // LGR solves in 60ms, LPR exhausts the budget, adaptive matches
        // LGR's optimum in 80ms: same optimum, inside 2x60ms, beats LPR.
        let cur = ladder_report(&format!(
            "[{}, {}, {}]",
            ladder_run("lgr", 15, true, 60.0),
            ladder_run("lpr", 15, false, 500.0),
            ladder_run("adaptive", 15, true, 80.0)
        ));
        assert!(evaluate_bound_ladder(&cur).is_empty());
    }

    #[test]
    fn ladder_missing_the_optimum_is_flagged() {
        let cur = ladder_report(&format!(
            "[{}, {}, {}]",
            ladder_run("lgr", 15, true, 60.0),
            ladder_run("lpr", 15, true, 200.0),
            ladder_run("adaptive", 16, true, 80.0)
        ));
        let violations = evaluate_bound_ladder(&cur);
        assert!(
            violations.iter().any(|v| v.contains("missed the fixed-rung optimum")),
            "{violations:?}"
        );
    }

    #[test]
    fn ladder_slower_than_slack_is_flagged_but_floor_protects_noise() {
        // 300ms vs best fixed 100ms: over 2x slack.
        let slow = ladder_report(&format!(
            "[{}, {}, {}]",
            ladder_run("lgr", 15, true, 100.0),
            ladder_run("lpr", 15, true, 400.0),
            ladder_run("adaptive", 15, true, 300.0)
        ));
        let violations = evaluate_bound_ladder(&slow);
        assert!(violations.iter().any(|v| v.contains("over")), "{violations:?}");
        // 40ms vs 10ms is over 2x but under the 50ms floor: noise.
        let noisy = ladder_report(&format!(
            "[{}, {}, {}]",
            ladder_run("lgr", 15, true, 10.0),
            ladder_run("lpr", 15, true, 45.0),
            ladder_run("adaptive", 15, true, 40.0)
        ));
        assert!(evaluate_bound_ladder(&noisy).is_empty());
    }

    #[test]
    fn ladder_never_beating_lpr_is_flagged() {
        // Adaptive matches the optimum but is slower than LPR itself.
        let cur = ladder_report(&format!(
            "[{}, {}, {}]",
            ladder_run("lgr", 15, true, 60.0),
            ladder_run("lpr", 15, true, 30.0),
            ladder_run("adaptive", 15, true, 40.0)
        ));
        let violations = evaluate_bound_ladder(&cur);
        assert!(violations.iter().any(|v| v.contains("never beat fixed LPR")), "{violations:?}");
    }

    #[test]
    fn reports_without_bound_ladder_pass_vacuously() {
        let old = report(100.0, 1000);
        assert!(evaluate_bound_ladder(&old).is_empty());
    }

    #[test]
    fn disjoint_reports_are_a_violation() {
        let base = report(100.0, 1000);
        let other = parse(
            r#"{"budget_ms": 1, "seeds": 1, "families": [],
                "portfolio": null, "residual_ablation": null}"#,
        )
        .unwrap();
        let c = compare(&base, &other);
        assert_eq!(c.common_cells, 0);
        assert!(!evaluate(&c, Gate::default()).is_empty());
    }
}
