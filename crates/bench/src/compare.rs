//! Snapshot comparison: flags node-throughput or wall-time regressions
//! between two `BENCH_table1.json` reports.
//!
//! Per-PR snapshots live under `benches/snapshots/`; CI regenerates the
//! report with the same parameters and runs `bench_compare` against the
//! previous snapshot. Wall times move with the machine, so the gates are
//! deliberately coarse ratios over geometric means: they catch a hot
//! path collapsing (an accidental O(instance) per node, a pruning bug
//! exploding the tree), not percent-level noise.

use std::collections::BTreeMap;

use crate::parse::JsonValue;

/// Per-cell performance extracted from a report.
#[derive(Copy, Clone, Debug)]
pub struct CellPerf {
    /// Wall time in milliseconds.
    pub time_ms: f64,
    /// Nodes (decisions) explored.
    pub nodes: f64,
    /// Whether the solve finished (optimal or infeasible).
    pub solved: bool,
}

/// `(family, instance, solver)` → performance, for every cell of the
/// report.
pub fn extract_cells(report: &JsonValue) -> BTreeMap<(String, String, String), CellPerf> {
    let mut out = BTreeMap::new();
    let Some(families) = report.get("families").and_then(JsonValue::items) else {
        return out;
    };
    for fam in families {
        let family = fam.get("family").and_then(JsonValue::as_str).unwrap_or("?").to_string();
        let Some(instances) = fam.get("instances").and_then(JsonValue::items) else { continue };
        for inst in instances {
            let name = inst.get("instance").and_then(JsonValue::as_str).unwrap_or("?").to_string();
            let Some(cells) = inst.get("cells").and_then(JsonValue::items) else { continue };
            for cell in cells {
                let solver =
                    cell.get("solver").and_then(JsonValue::as_str).unwrap_or("?").to_string();
                let time_ms = cell.get("time_ms").and_then(JsonValue::as_f64).unwrap_or(0.0);
                let nodes = cell.get("nodes").and_then(JsonValue::as_f64).unwrap_or(0.0);
                let status = cell.get("status").and_then(JsonValue::as_str).unwrap_or("");
                out.insert(
                    (family.clone(), name.clone(), solver),
                    CellPerf {
                        time_ms,
                        nodes,
                        solved: status == "optimal" || status == "infeasible",
                    },
                );
            }
        }
    }
    out
}

/// Outcome of comparing a current report against a baseline.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Cells present in both reports.
    pub common_cells: usize,
    /// Geometric mean over common cells of
    /// `current node throughput / baseline node throughput`
    /// (cells with zero nodes or time on either side are skipped).
    pub throughput_ratio: Option<f64>,
    /// Geometric mean over cells *solved on both sides* of
    /// `current wall time / baseline wall time`.
    pub time_ratio: Option<f64>,
}

fn geomean(ratios: &[f64]) -> Option<f64> {
    let logs: Vec<f64> =
        ratios.iter().copied().filter(|r| r.is_finite() && *r > 0.0).map(f64::ln).collect();
    if logs.is_empty() {
        return None;
    }
    Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
}

/// Compares two parsed reports cell by cell.
pub fn compare(baseline: &JsonValue, current: &JsonValue) -> Comparison {
    let base = extract_cells(baseline);
    let cur = extract_cells(current);
    let mut throughput = Vec::new();
    let mut times = Vec::new();
    let mut common = 0usize;
    for (key, b) in &base {
        let Some(c) = cur.get(key) else { continue };
        common += 1;
        if b.nodes > 0.0 && b.time_ms > 0.0 && c.nodes > 0.0 && c.time_ms > 0.0 {
            let b_tp = b.nodes / b.time_ms;
            let c_tp = c.nodes / c.time_ms;
            throughput.push(c_tp / b_tp);
        }
        if b.solved && c.solved && b.time_ms > 0.0 && c.time_ms > 0.0 {
            times.push(c.time_ms / b.time_ms);
        }
    }
    Comparison {
        common_cells: common,
        throughput_ratio: geomean(&throughput),
        time_ratio: geomean(&times),
    }
}

/// Regression thresholds.
#[derive(Copy, Clone, Debug)]
pub struct Gate {
    /// Fail when the throughput geomean drops below this (e.g. `0.1` =
    /// a >10x slowdown in nodes/second).
    pub min_throughput_ratio: f64,
    /// Fail when the solved-instance wall-time geomean rises above this.
    pub max_time_ratio: f64,
}

impl Default for Gate {
    fn default() -> Gate {
        // Coarse by design: CI runners and dev laptops differ by small
        // integer factors; an order of magnitude means a real regression.
        Gate { min_throughput_ratio: 0.1, max_time_ratio: 10.0 }
    }
}

/// Evaluates a comparison against the gate; the returned list of
/// violations is empty on pass.
pub fn evaluate(comparison: &Comparison, gate: Gate) -> Vec<String> {
    let mut violations = Vec::new();
    if comparison.common_cells == 0 {
        violations
            .push("no common cells between the reports (different families/seeds?)".to_string());
        return violations;
    }
    if comparison.throughput_ratio.is_none() && comparison.time_ratio.is_none() {
        // Cells exist but none were comparable: every current-side solve
        // returned instantly with zero nodes and nothing solved — the
        // exact collapse the gate exists to catch, not a pass.
        violations.push(
            "no comparable cells: the current report has no solved instances and no \
             node counts (total solver collapse?)"
                .to_string(),
        );
        return violations;
    }
    if let Some(tp) = comparison.throughput_ratio {
        if tp < gate.min_throughput_ratio {
            violations.push(format!(
                "node throughput regressed to {:.3}x of the baseline (gate {:.3}x)",
                tp, gate.min_throughput_ratio
            ));
        }
    }
    if let Some(t) = comparison.time_ratio {
        if t > gate.max_time_ratio {
            violations.push(format!(
                "solved-instance wall time rose to {:.3}x of the baseline (gate {:.3}x)",
                t, gate.max_time_ratio
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn report(time_ms: f64, nodes: u64) -> JsonValue {
        let text = format!(
            r#"{{"budget_ms": 500, "seeds": 1, "families": [
                {{"family": "synthesis", "instances": [
                    {{"instance": "synth-0", "cells": [
                        {{"solver": "LPR", "status": "optimal", "cost": 5,
                          "time_ms": {time_ms}, "nodes": {nodes},
                          "lb_calls": 10, "lb_time_ms": 1.0, "sub_time_ms": 0.5}}
                    ]}}
                ]}}
            ], "portfolio": null, "residual_ablation": null}}"#
        );
        parse(&text).unwrap()
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(100.0, 1000);
        let c = compare(&a, &a);
        assert_eq!(c.common_cells, 1);
        assert!((c.throughput_ratio.unwrap() - 1.0).abs() < 1e-9);
        assert!((c.time_ratio.unwrap() - 1.0).abs() < 1e-9);
        assert!(evaluate(&c, Gate::default()).is_empty());
    }

    #[test]
    fn throughput_collapse_is_flagged() {
        // Same nodes, 20x the time: throughput ratio 0.05 < 0.1.
        let base = report(100.0, 1000);
        let cur = report(2000.0, 1000);
        let c = compare(&base, &cur);
        let violations = evaluate(&c, Gate::default());
        assert!(!violations.is_empty(), "{c:?}");
        assert!(violations.iter().any(|v| v.contains("throughput")), "{violations:?}");
    }

    #[test]
    fn modest_machine_noise_passes() {
        // 2x slower machine: within the coarse gates.
        let base = report(100.0, 1000);
        let cur = report(200.0, 1000);
        let c = compare(&base, &cur);
        assert!(evaluate(&c, Gate::default()).is_empty());
    }

    #[test]
    fn total_collapse_with_common_cells_is_a_violation() {
        // Same cell keys, but the current side solved nothing and
        // explored zero nodes: both geomeans are None, which must fail,
        // not pass.
        let base = report(100.0, 1000);
        let collapsed = parse(
            r#"{"budget_ms": 500, "seeds": 1, "families": [
                {"family": "synthesis", "instances": [
                    {"instance": "synth-0", "cells": [
                        {"solver": "LPR", "status": "unknown (budget)", "cost": null,
                         "time_ms": 0.1, "nodes": 0,
                         "lb_calls": 0, "lb_time_ms": 0.0, "sub_time_ms": 0.0}
                    ]}
                ]}
            ], "portfolio": null, "residual_ablation": null}"#,
        )
        .unwrap();
        let c = compare(&base, &collapsed);
        assert_eq!(c.common_cells, 1);
        let violations = evaluate(&c, Gate::default());
        assert!(!violations.is_empty(), "{c:?}");
        assert!(violations.iter().any(|v| v.contains("no comparable cells")), "{violations:?}");
    }

    #[test]
    fn disjoint_reports_are_a_violation() {
        let base = report(100.0, 1000);
        let other = parse(
            r#"{"budget_ms": 1, "seeds": 1, "families": [],
                "portfolio": null, "residual_ablation": null}"#,
        )
        .unwrap();
        let c = compare(&base, &other);
        assert_eq!(c.common_cells, 0);
        assert!(!evaluate(&c, Gate::default()).is_empty());
    }
}
