//! T1-ptlcmos: the mixed PTL/CMOS synthesis rows of Table 1 (binate
//! area-minimization instances with implication chains).

use criterion::{criterion_group, criterion_main, Criterion};

use pbo_bench::{budget_ms, SolverKind};
use pbo_benchgen::PtlCmosParams;

fn bench(c: &mut Criterion) {
    let instance = PtlCmosParams { gates: 30, ..PtlCmosParams::default() }.generate(1);
    let budget = budget_ms(500);
    let mut group = c.benchmark_group("table1_ptlcmos");
    group.sample_size(10);
    for kind in SolverKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| std::hint::black_box(kind.run(&instance, budget)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
