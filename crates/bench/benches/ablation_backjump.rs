//! A2-backjump: the paper's sec. 4 mechanism — learning bound-conflict
//! clauses and backtracking non-chronologically — against the
//! chronological alternative (same bound, no learned `omega_bc`).

use criterion::{criterion_group, criterion_main, Criterion};

use pbo_bench::budget_ms;
use pbo_benchgen::GroutParams;
use pbo_solver::{Bsolo, BsoloOptions, LbMethod};

fn bench(c: &mut Criterion) {
    let instance = GroutParams {
        width: 5,
        height: 5,
        nets: 12,
        paths_per_net: 4,
        capacity: 3,
        bend_penalty: 2,
    }
    .generate(3);
    let budget = budget_ms(2_000);
    let mut group = c.benchmark_group("ablation_backjump");
    group.sample_size(10);
    group.bench_function("bound_conflict_learning", |b| {
        let opts = BsoloOptions::with_lb(LbMethod::Lpr).budget(budget);
        b.iter(|| std::hint::black_box(Bsolo::new(opts.clone()).solve(&instance)))
    });
    group.bench_function("chronological", |b| {
        let opts = BsoloOptions {
            bound_conflict_learning: false,
            ..BsoloOptions::with_lb(LbMethod::Lpr).budget(budget)
        };
        b.iter(|| std::hint::black_box(Bsolo::new(opts.clone()).solve(&instance)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
