//! B-residual: per-node subproblem-maintenance cost, rebuild vs
//! incremental residual state (this PR's tentpole ablation).
//!
//! Three measurements on a Table-1-style synthesis instance:
//!
//! * `view_rebuild` — one `Subproblem::new` re-scan per node (the seed's
//!   behaviour);
//! * `view_incremental` — one `ResidualState::view` snapshot per node;
//! * `delta_roundtrip` — applying and unwinding one assignment (the O(Δ)
//!   trail-hook cost the incremental mode pays per assignment).

use criterion::{criterion_group, criterion_main, Criterion};

use pbo_benchgen::SynthesisParams;
use pbo_bounds::{ResidualState, Subproblem};
use pbo_core::{Assignment, Var};

fn bench(c: &mut Criterion) {
    let instance = SynthesisParams {
        primes: 70,
        minterms: 110,
        cover_density: 4.0,
        exclusions: 10,
        ..SynthesisParams::default()
    }
    .generate(0);

    // A representative mid-search node: a third of the variables fixed.
    let mut assignment = Assignment::new(instance.num_vars());
    let mut state = ResidualState::new(&instance);
    for v in (0..instance.num_vars()).step_by(3) {
        let lit = Var::new(v).lit(v % 2 == 0);
        assignment.assign_lit(lit);
        state.apply(&instance, lit);
    }

    let mut group = c.benchmark_group("ablation_residual");
    group.sample_size(50);
    group.bench_function("view_rebuild", |b| {
        b.iter(|| std::hint::black_box(Subproblem::new(&instance, &assignment).active().len()))
    });
    group.bench_function("view_incremental", |b| {
        b.iter(|| std::hint::black_box(state.view(&instance, &assignment).active().len()))
    });
    let free_lit = Var::new(1).positive();
    group.bench_function("delta_roundtrip", |b| {
        b.iter(|| {
            let len = state.len();
            state.apply(&instance, free_lit);
            state.unwind_to(&instance, len);
            std::hint::black_box(state.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
