//! T1-grout: the global-routing rows of Table 1. Each solver column runs
//! on a fixed seeded instance under a hard per-solve time cap, so the
//! measurements are bounded; solvers that cannot finish saturate at the
//! cap (the paper's `ub` rows).

use criterion::{criterion_group, criterion_main, Criterion};

use pbo_bench::{budget_ms, SolverKind};
use pbo_benchgen::GroutParams;

fn bench(c: &mut Criterion) {
    let instance = GroutParams {
        width: 4,
        height: 4,
        nets: 8,
        paths_per_net: 4,
        capacity: 3,
        bend_penalty: 2,
    }
    .generate(1);
    let budget = budget_ms(500);
    let mut group = c.benchmark_group("table1_grout");
    group.sample_size(10);
    for kind in SolverKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| std::hint::black_box(kind.run(&instance, budget)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
