//! A3-branching: LP-guided branching (sec. 5: most-fractional variable,
//! closest to 0.5) against plain VSIDS, both under the LPR bound.

use criterion::{criterion_group, criterion_main, Criterion};

use pbo_bench::budget_ms;
use pbo_benchgen::SynthesisParams;
use pbo_solver::{Branching, Bsolo, BsoloOptions, LbMethod};

fn bench(c: &mut Criterion) {
    let instance = SynthesisParams {
        primes: 40,
        minterms: 55,
        cover_density: 4.0,
        exclusions: 6,
        cost: (1, 9),
    }
    .generate(2);
    let budget = budget_ms(2_000);
    let mut group = c.benchmark_group("ablation_branching");
    group.sample_size(10);
    for (name, branching) in [("lp_guided", Branching::LpGuided), ("vsids", Branching::Vsids)] {
        let opts =
            BsoloOptions { branching, ..BsoloOptions::with_lb(LbMethod::Lpr).budget(budget) };
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(Bsolo::new(opts.clone()).solve(&instance)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
