//! T1-synth: the MCNC two-level covering rows of Table 1 (weighted
//! binate covering).

use criterion::{criterion_group, criterion_main, Criterion};

use pbo_bench::{budget_ms, SolverKind};
use pbo_benchgen::SynthesisParams;

fn bench(c: &mut Criterion) {
    let instance = SynthesisParams {
        primes: 30,
        minterms: 40,
        cover_density: 3.5,
        exclusions: 5,
        cost: (1, 9),
    }
    .generate(1);
    let budget = budget_ms(500);
    let mut group = c.benchmark_group("table1_synthesis");
    group.sample_size(10);
    for kind in SolverKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| std::hint::black_box(kind.run(&instance, budget)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
