//! B-lp: dual simplex infrastructure scaling — cold solves over growing
//! relaxations and the warm re-solve after one variable fixing (the
//! branch-and-bound hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use pbo_lp::{DualSimplex, LpProblem};

fn random_lp(n: usize, m: usize, seed: u64) -> LpProblem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut p = LpProblem::new(n);
    for j in 0..n {
        p.set_cost(j, rng.gen_range(0..10) as f64);
    }
    for _ in 0..m {
        let mut terms = Vec::new();
        for j in 0..n {
            if rng.gen_bool(4.0 / n as f64) {
                terms.push((j, rng.gen_range(1..4) as f64));
            }
        }
        if terms.is_empty() {
            terms.push((rng.gen_range(0..n), 1.0));
        }
        let maxw: f64 = terms.iter().map(|t| t.1).sum();
        p.add_row_ge(&terms, rng.gen_range(1.0..maxw.max(1.5)));
    }
    p
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_lp");
    for size in [20usize, 60, 140] {
        let p = random_lp(size, size, 0xb1);
        group.bench_with_input(BenchmarkId::new("cold_solve", size), &p, |b, p| {
            b.iter(|| std::hint::black_box(DualSimplex::new(p).solve().objective))
        });
        group.bench_with_input(BenchmarkId::new("warm_refix", size), &p, |b, p| {
            let mut s = DualSimplex::new(p);
            let _ = s.solve();
            let mut flip = false;
            b.iter(|| {
                // Fix/unfix one variable: the canonical B&B node step.
                if flip {
                    s.set_var_bounds(0, 0.0, 1.0);
                } else {
                    s.set_var_bounds(0, 1.0, 1.0);
                }
                flip = !flip;
                std::hint::black_box(s.solve().objective)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
