//! B-prop: engine infrastructure throughput — decide/propagate/backjump
//! cycles over clause-heavy and PB-heavy formulas.

use criterion::{criterion_group, criterion_main, Criterion};

use pbo_benchgen::RandomParams;
use pbo_core::{Lit, Value};
use pbo_engine::Engine;

fn engine_for(params: &RandomParams, seed: u64) -> Engine {
    let inst = params.generate(seed);
    let mut e = Engine::new(inst.num_vars());
    for c in inst.constraints() {
        let _ = e.add_constraint(c);
    }
    e
}

fn propagation_storm(e: &mut Engine) -> u64 {
    // Decide every variable in order (forcing cascades), then undo.
    let before = e.stats.propagations;
    for v in 0..e.num_vars() {
        let lit = Lit::new(v, false);
        if e.assignment().lit_value(lit) == Value::Unassigned {
            e.decide(lit);
            if e.propagate().is_some() {
                break;
            }
        }
    }
    e.backjump_to(0);
    e.stats.propagations - before
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_propagation");
    let clause_heavy = RandomParams {
        vars: 200,
        constraints: 600,
        arity: (2, 3),
        coeff: (1, 1),
        optimization: false,
        ..RandomParams::default()
    };
    let pb_heavy = RandomParams {
        vars: 200,
        constraints: 400,
        arity: (4, 8),
        coeff: (1, 6),
        optimization: false,
        ..RandomParams::default()
    };
    group.bench_function("clause_heavy", |b| {
        let mut e = engine_for(&clause_heavy, 1);
        b.iter(|| std::hint::black_box(propagation_storm(&mut e)))
    });
    group.bench_function("pb_heavy", |b| {
        let mut e = engine_for(&pb_heavy, 1);
        b.iter(|| std::hint::black_box(propagation_storm(&mut e)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
