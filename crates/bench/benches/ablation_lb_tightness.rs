//! A1-lb-tightness: cost and quality of one lower-bound evaluation per
//! method (sec. 3 comparison). The paper's qualitative claims: the LPR
//! bound is usually at least as tight as MIS; LGR can approach LPR but
//! converges slowly. The bound *values* are printed once; criterion
//! measures the per-call time.

use criterion::{criterion_group, criterion_main, Criterion};

use pbo_benchgen::GroutParams;
use pbo_bounds::{LagrangianBound, LowerBound, LprBound, MisBound, Subproblem};
use pbo_core::Assignment;

fn bench(c: &mut Criterion) {
    let instance = GroutParams {
        width: 5,
        height: 5,
        nets: 12,
        paths_per_net: 4,
        capacity: 3,
        bend_penalty: 2,
    }
    .generate(2);
    let assignment = Assignment::new(instance.num_vars());
    let sub = Subproblem::new(&instance, &assignment);

    let mut mis = MisBound::new();
    let mut lgr = LagrangianBound::new(instance.num_constraints());
    let mut lpr = LprBound::new(&instance);
    eprintln!(
        "root bounds on {}: mis={} lgr={} lpr={}",
        instance.name(),
        mis.lower_bound(&sub, None).bound,
        lgr.lower_bound(&sub, None).bound,
        lpr.lower_bound(&sub, None).bound,
    );

    let mut group = c.benchmark_group("ablation_lb_tightness");
    group.bench_function("mis", |b| {
        b.iter(|| std::hint::black_box(mis.lower_bound(&sub, None).bound))
    });
    group.bench_function("lgr", |b| {
        b.iter(|| std::hint::black_box(lgr.lower_bound(&sub, None).bound))
    });
    group.bench_function("lpr_warm", |b| {
        b.iter(|| std::hint::black_box(lpr.lower_bound(&sub, None).bound))
    });
    group.bench_function("lpr_cold", |b| {
        b.iter(|| {
            let mut fresh = LprBound::new(&instance);
            std::hint::black_box(fresh.lower_bound(&sub, None).bound)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
