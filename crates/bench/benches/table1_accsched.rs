//! T1-acc: the scheduling (pure satisfaction) rows of Table 1. No cost
//! function: SAT-based solvers dominate, the MILP baseline flounders,
//! and all bsolo configurations coincide (footnote *a* of the table).

use criterion::{criterion_group, criterion_main, Criterion};

use pbo_bench::{budget_ms, SolverKind};
use pbo_benchgen::AccSchedParams;

fn bench(c: &mut Criterion) {
    let instance = AccSchedParams { teams: 8, home_away: true }.generate(1);
    let budget = budget_ms(500);
    let mut group = c.benchmark_group("table1_accsched");
    group.sample_size(10);
    for kind in SolverKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| std::hint::black_box(kind.run(&instance, budget)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
