//! A4-cuts: the sec. 5 cut machinery — the knapsack cut of eq. 10 and
//! the cardinality cost cuts of eqs. 11–13 — toggled on and off.

use criterion::{criterion_group, criterion_main, Criterion};

use pbo_bench::budget_ms;
use pbo_benchgen::GroutParams;
use pbo_solver::{Bsolo, BsoloOptions, LbMethod};

fn bench(c: &mut Criterion) {
    let instance = GroutParams {
        width: 5,
        height: 5,
        nets: 12,
        paths_per_net: 4,
        capacity: 3,
        bend_penalty: 2,
    }
    .generate(5);
    let budget = budget_ms(2_000);
    let mut group = c.benchmark_group("ablation_cuts");
    group.sample_size(10);
    let configs =
        [("all_cuts", true, true), ("knapsack_only", true, false), ("no_cuts", false, false)];
    for (name, knapsack, cardinality) in configs {
        let opts = BsoloOptions {
            knapsack_cuts: knapsack,
            cardinality_cuts: cardinality,
            ..BsoloOptions::with_lb(LbMethod::Lpr).budget(budget)
        };
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(Bsolo::new(opts.clone()).solve(&instance)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
