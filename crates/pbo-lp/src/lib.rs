//! A small linear-programming solver for branch-and-bound relaxations.
//!
//! The DATE'05 paper computes lower bounds by linear-programming
//! relaxation (sec. 3.1): `min cx, Ax >= b, 0 <= x <= 1`. This crate
//! implements exactly that shape from scratch — a bounded-variable
//! **dual simplex** ([`DualSimplex`]) over an [`LpProblem`] — because the
//! relaxation must be re-solved at every search node after variable
//! fixings, and the dual method warm-starts perfectly across bound
//! changes.
//!
//! Besides the optimum, [`LpSolution`] reports everything the
//! bound-conflict analysis of sec. 4.2 needs: per-row activities, the set
//! of *tight* rows (zero slack — the paper's set `S`), duals, and Farkas
//! rows when the relaxation is infeasible.
//!
//! # Examples
//!
//! ```
//! use pbo_lp::{DualSimplex, LpProblem, LpStatus};
//!
//! // Fractional vertex: min x0 + x1, x0 + x1 >= 1.5 over [0,1]^2.
//! let mut p = LpProblem::new(2);
//! p.set_cost(0, 1.0);
//! p.set_cost(1, 1.0);
//! p.add_row_ge(&[(0, 1.0), (1, 1.0)], 1.5);
//! let mut s = DualSimplex::new(&p);
//! let sol = s.solve();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - 1.5).abs() < 1e-6);
//!
//! // Warm start after fixing x0 = 0: the relaxation becomes infeasible
//! // (x1 alone cannot reach 1.5).
//! s.set_var_bounds(0, 0.0, 0.0);
//! assert_eq!(s.solve().status, LpStatus::Infeasible);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
mod simplex;
mod solution;

pub use problem::{LpProblem, RowId};
pub use simplex::{DualSimplex, Pricing};
pub use solution::{LpSolution, LpStatus};

#[cfg(test)]
mod simplex_tests;
