// Dense tableau arithmetic is written with explicit row/column indices;
// iterator forms would hide the pivot structure.
#![allow(clippy::needless_range_loop)]

//! Bounded-variable dual simplex.
//!
//! The solver targets the LPs arising from pseudo-Boolean relaxations
//! inside branch-and-bound: minimization with non-negative-ish costs,
//! `>=` rows, box-bounded variables, and *frequent re-solves after bound
//! changes* (variable fixings). The dual simplex is the natural method:
//! the all-logical starting basis is dual feasible by construction (the
//! nonbasic bound of each structural variable is chosen by the sign of
//! its reduced cost), and bound changes never disturb dual feasibility,
//! so warm starts typically re-optimize in a handful of pivots.
//!
//! Implementation notes:
//! * rows are turned into equalities `a_i.x - s_i = b_i` with surplus
//!   ("logical") variables `s_i in [0, inf)`;
//! * the basis inverse is kept dense and updated by the product form;
//!   it is refactorized (Gauss-Jordan with partial pivoting) periodically
//!   and on demand;
//! * two pricing strategies are available (see [`Pricing`]): the default
//!   sparse path prices the pivot row in one pass over the row nonzeros,
//!   maintains reduced costs incrementally, selects the leaving row by
//!   dual Devex reference weights and runs a bound-flipping ratio test;
//!   the dense legacy path (full column scans, fresh reduced costs per
//!   candidate, Harris-lite ratio test) is kept verbatim as a frozen
//!   baseline for differential tests and the `lp_pricing` microbench;
//! * primal values and duals are maintained incrementally across pivots
//!   and bound changes (the branch-and-bound hot path makes thousands of
//!   one-pivot re-solves), and recomputed from scratch at every
//!   refactorization to bound numerical drift.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::problem::LpProblem;
use crate::solution::{LpSolution, LpStatus};

const FEAS_TOL: f64 = 1e-7;
const DUAL_TOL: f64 = 1e-9;
const PIVOT_TOL: f64 = 1e-8;
const ZERO_TOL: f64 = 1e-9;
const TIGHT_TOL: f64 = 1e-6;
const REFACTOR_INTERVAL: u64 = 80;
const BLAND_THRESHOLD: u64 = 2_000;
/// Pivots between cooperative-cancellation polls: cheap enough to keep
/// deadline overshoot bounded by a few dozen dense pivots, rare enough
/// that `Instant::now` stays off the per-pivot path.
const CANCEL_CHECK_INTERVAL: u64 = 64;
/// Devex reference weights above this trigger a reference-framework
/// reset (all weights back to 1): the weights are a heuristic norm
/// estimate and lose meaning once they explode.
const DEVEX_RESET: f64 = 1e7;

/// Pricing strategy of the dual simplex (see [`DualSimplex::set_pricing`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Pricing {
    /// Frozen dense baseline: leaving row by most-infeasible scan,
    /// entering column by a full scan over all columns computing the
    /// pivot-row coefficient *and* a fresh reduced cost per candidate
    /// (Harris-lite tie-break on pivot magnitude). Kept verbatim so the
    /// sparse path can be differential-tested and benchmarked against it.
    DenseLegacy,
    /// Sparse hot path: the pivot row is priced in a single pass over the
    /// matrix row nonzeros, reduced costs are maintained incrementally
    /// across pivots, the leaving row is chosen by dual Devex reference
    /// weights, and the ratio test is bound-flipping (boxed nonbasic
    /// columns whose breakpoint is passed flip bounds instead of
    /// entering, often absorbing several breakpoints per pivot).
    #[default]
    DevexSparse,
}

/// One step of the pivot loop (shared between pricing strategies).
enum Step {
    Optimal,
    Infeasible(Vec<usize>),
    Pivoted,
}

/// Warm-startable bounded-variable dual simplex solver.
///
/// # Examples
///
/// ```
/// use pbo_lp::{DualSimplex, LpProblem, LpStatus};
///
/// let mut p = LpProblem::new(2);
/// p.set_cost(0, 1.0);
/// p.set_cost(1, 2.0);
/// p.add_row_ge(&[(0, 1.0), (1, 1.0)], 1.5);
/// let mut s = DualSimplex::new(&p);
/// let sol = s.solve();
/// assert_eq!(sol.status, LpStatus::Optimal);
/// assert!((sol.objective - 2.0).abs() < 1e-6); // x0 = 1, x1 = 0.5
/// ```
#[derive(Clone, Debug)]
pub struct DualSimplex {
    n: usize,
    m: usize,
    /// Sparse structural columns: `(row, coeff)` pairs.
    cols: Vec<Vec<(usize, f64)>>,
    /// Sparse rows (structural part): `(col, coeff)` pairs. The sparse
    /// pricing path computes the whole pivot-row coefficient vector in
    /// one pass over these.
    rows_sp: Vec<Vec<(usize, f64)>>,
    costs: Vec<f64>,
    rhs: Vec<f64>,
    /// Bounds over all `n + m` columns (logicals: `[0, inf)`).
    lower: Vec<f64>,
    upper: Vec<f64>,
    basis: Vec<usize>,
    /// Position of a column in the basis, or -1.
    basis_pos: Vec<i32>,
    at_upper: Vec<bool>,
    /// Dense row-major basis inverse.
    binv: Vec<f64>,
    /// Duals `y = c_B B^-1`, maintained incrementally across pivots and
    /// recomputed at refactorization.
    y: Vec<f64>,
    /// Basic primal values `x_B = B^-1 (b - N x_N)`, maintained
    /// incrementally across pivots and nonbasic value changes, recomputed
    /// at refactorization.
    xb: Vec<f64>,
    /// Reduced costs over all `n + m` columns, maintained incrementally
    /// by the sparse pricing path (zero on basic columns) and rebuilt at
    /// refactorization. Untouched (stale) under `Pricing::DenseLegacy`.
    d: Vec<f64>,
    /// Dual Devex reference weights, one per basis row.
    devex: Vec<f64>,
    /// Running maximum of `devex`, to trigger reference resets without a
    /// scan.
    devex_max: f64,
    pricing: Pricing,
    /// Scratch: pivot-row coefficients `alpha_j = rho . col_j` over all
    /// columns; only the entries listed in `alpha_touched` are nonzero.
    alpha: Vec<f64>,
    /// Scratch: stamp per column marking membership in `alpha_touched`.
    alpha_mark: Vec<u64>,
    alpha_stamp: u64,
    alpha_touched: Vec<usize>,
    /// Scratch: ratio-test candidates `(theta, col, signed alpha)`.
    cand: Vec<(f64, usize, f64)>,
    /// Scratch: indices into `cand` of the candidates to bound-flip.
    flips: Vec<usize>,
    /// Scratch: entering column `w = B^-1 A_enter`.
    w: Vec<f64>,
    pivots_since_refactor: u64,
    max_iterations: u64,
    /// Structural variables whose bounds changed since the last solve;
    /// only these need a dual-feasibility placement repair.
    dirty: Vec<usize>,
    /// Wall-clock deadline polled mid-solve (see `set_cancel`).
    deadline: Option<Instant>,
    /// External stop latch polled mid-solve (see `set_cancel`).
    stop: Option<Arc<AtomicBool>>,
    /// Cumulative iteration count across solves.
    pub total_iterations: u64,
}

impl DualSimplex {
    /// Builds a solver for `problem`, starting from the all-logical basis
    /// with each structural variable placed on the dual-feasible bound.
    pub fn new(problem: &LpProblem) -> DualSimplex {
        let n = problem.num_vars();
        let m = problem.num_rows();
        let mut cols = vec![Vec::new(); n];
        let mut rows_sp = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for (i, (terms, b)) in problem.rows().enumerate() {
            for &(j, a) in terms {
                cols[j].push((i, a));
            }
            rows_sp.push(terms.to_vec());
            rhs.push(b);
        }
        let mut lower = problem.lower().to_vec();
        let mut upper = problem.upper().to_vec();
        lower.extend(std::iter::repeat_n(0.0, m));
        upper.extend(std::iter::repeat_n(f64::INFINITY, m));
        let costs = problem.costs().to_vec();
        let mut at_upper = vec![false; n + m];
        for j in 0..n {
            // Dual-feasible placement: negative reduced cost -> upper.
            at_upper[j] = costs[j] < 0.0 && upper[j].is_finite();
        }
        let basis: Vec<usize> = (n..n + m).collect();
        let mut basis_pos = vec![-1i32; n + m];
        for (r, &j) in basis.iter().enumerate() {
            basis_pos[j] = r as i32;
        }
        // The all-logical basis matrix is -I (surplus columns are -e_i),
        // so its inverse is -I as well.
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = -1.0;
        }
        // With y = 0 the reduced cost of a structural column is its cost;
        // logicals (cost zero) are basic with reduced cost zero.
        let mut d = vec![0.0; n + m];
        d[..n].copy_from_slice(&costs);
        let mut simplex = DualSimplex {
            n,
            m,
            cols,
            rows_sp,
            costs,
            rhs,
            lower,
            upper,
            basis,
            basis_pos,
            at_upper,
            binv,
            y: vec![0.0; m],
            xb: Vec::new(),
            d,
            devex: vec![1.0; m],
            devex_max: 1.0,
            pricing: Pricing::default(),
            alpha: vec![0.0; n + m],
            alpha_mark: vec![0; n + m],
            alpha_stamp: 0,
            alpha_touched: Vec::new(),
            cand: Vec::new(),
            flips: Vec::new(),
            w: vec![0.0; m],
            pivots_since_refactor: 0,
            max_iterations: 20_000,
            dirty: Vec::new(),
            deadline: None,
            stop: None,
            total_iterations: 0,
        };
        simplex.xb = simplex.basic_values();
        simplex
    }

    /// Sets the per-solve iteration budget.
    pub fn set_max_iterations(&mut self, limit: u64) {
        self.max_iterations = limit;
    }

    /// Selects the pricing strategy. Switching rebuilds the maintained
    /// reduced costs and resets the Devex reference framework, so it is
    /// safe at any point between solves.
    pub fn set_pricing(&mut self, pricing: Pricing) {
        self.pricing = pricing;
        self.rebuild_reduced_costs();
        self.reset_devex();
    }

    /// The active pricing strategy.
    pub fn pricing(&self) -> Pricing {
        self.pricing
    }

    /// Arms cooperative cancellation: [`solve`](Self::solve) returns
    /// [`LpStatus::Cancelled`] (basis warm-startable, like an iteration
    /// limit) once the deadline passes or the stop latch is set, polled
    /// every [`CANCEL_CHECK_INTERVAL`] pivots — so a deadline landing
    /// mid-solve is honored within a bounded overshoot instead of only
    /// between solves. `None`/`None` disarms.
    pub fn set_cancel(&mut self, deadline: Option<Instant>, stop: Option<Arc<AtomicBool>>) {
        self.deadline = deadline;
        self.stop = stop;
    }

    /// Whether an armed cancellation condition has tripped.
    fn cancelled(&self) -> bool {
        self.stop.as_ref().is_some_and(|s| s.load(Ordering::Acquire))
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Changes the bounds of structural variable `j`. The basis (and dual
    /// feasibility) is preserved, making the next [`solve`](Self::solve) a
    /// warm start.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or `j` is out of range.
    pub fn set_var_bounds(&mut self, j: usize, lower: f64, upper: f64) {
        assert!(j < self.n, "structural variable out of range");
        assert!(lower <= upper, "empty bound interval");
        let nonbasic = self.basis_pos[j] < 0;
        let v_old = if nonbasic { self.nonbasic_value(j) } else { 0.0 };
        self.lower[j] = lower;
        self.upper[j] = upper;
        if nonbasic && self.at_upper[j] && !upper.is_finite() {
            self.at_upper[j] = false;
        }
        if nonbasic {
            let v_new = self.nonbasic_value(j);
            self.shift_nonbasic(j, v_new - v_old);
        }
        self.dirty.push(j);
    }

    /// Appends the row `sum coeff * x_col >= rhs` to the system *without
    /// discarding the basis*: the new surplus logical enters the basis
    /// directly, which extends the basis matrix by a bordered identity
    /// block — `B' = [[B, 0], [C, -I]]` has the closed-form inverse
    /// `[[B^-1, 0], [C B^-1, -I]]`, so the inverse, duals, primal values
    /// and maintained reduced costs all extend in `O(m * nnz(row))`
    /// instead of a full `O(m^3)` refactorization. Dual feasibility is
    /// preserved (the new row's dual starts at zero); if the current
    /// point violates the new row, the next [`solve`](Self::solve) picks
    /// it up as an ordinary warm start.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of structural range.
    pub fn append_row_ge(&mut self, terms: &[(usize, f64)], rhs: f64) {
        let n = self.n;
        let m_old = self.m;
        let m_new = m_old + 1;
        for &(j, _) in terms {
            assert!(j < n, "append_row_ge: column {j} out of range");
        }
        debug_assert!(
            (0..terms.len()).all(|a| (a + 1..terms.len()).all(|b| terms[a].0 != terms[b].0)),
            "append_row_ge: repeated column in row"
        );
        // New-row primal activity at the current point, before any state
        // grows (structural basis positions are still valid).
        let mut activity = 0.0;
        for &(j, a) in terms {
            let p = self.basis_pos[j];
            let v = if p >= 0 { self.xb[p as usize] } else { self.nonbasic_value(j) };
            activity += a * v;
        }
        // Grow the inverse: old rows gain a zero column, the new row is
        // C B^-1 with -1 on the new diagonal (C has entries only on
        // structural basic columns; old logicals do not appear in the new
        // row).
        let mut binv = vec![0.0; m_new * m_new];
        for i in 0..m_old {
            binv[i * m_new..i * m_new + m_old]
                .copy_from_slice(&self.binv[i * m_old..(i + 1) * m_old]);
        }
        let last = m_new - 1;
        for &(j, a) in terms {
            let p = self.basis_pos[j];
            if p >= 0 {
                let p = p as usize;
                for k in 0..m_old {
                    let bv = self.binv[p * m_old + k];
                    if bv != 0.0 {
                        binv[last * m_new + k] += a * bv;
                    }
                }
            }
        }
        binv[last * m_new + last] = -1.0;
        self.binv = binv;
        // Column storage and per-column state for the new logical
        // (index n + m_old: logicals are the tail, so appending a row
        // keeps every existing column index valid).
        for &(j, a) in terms {
            self.cols[j].push((m_old, a));
        }
        self.rows_sp.push(terms.to_vec());
        self.rhs.push(rhs);
        self.lower.push(0.0);
        self.upper.push(f64::INFINITY);
        self.at_upper.push(false);
        self.basis.push(n + m_old);
        self.basis_pos.push(m_old as i32);
        // The new logical is basic with zero cost: its dual starts at
        // zero, so no existing reduced cost moves.
        self.y.push(0.0);
        self.d.push(0.0);
        self.xb.push(activity - rhs);
        self.devex.push(1.0);
        self.alpha.push(0.0);
        self.alpha_mark.push(0);
        self.m = m_new;
    }

    /// Replaces the right-hand side of row `i`, keeping the basis. The
    /// duals and reduced costs do not depend on `b`, so dual feasibility
    /// is untouched; the maintained basic values shift by
    /// `delta * B^-1 e_i` and the next [`solve`](Self::solve) warm-starts
    /// from the same basis.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn update_row_rhs(&mut self, i: usize, rhs: f64) {
        assert!(i < self.m, "row out of range");
        let delta = rhs - self.rhs[i];
        if delta == 0.0 {
            return;
        }
        self.rhs[i] = rhs;
        let m = self.m;
        for k in 0..m {
            let bv = self.binv[k * m + i];
            if bv != 0.0 {
                self.xb[k] += delta * bv;
            }
        }
    }

    /// Applies a nonbasic value change of `delta` on column `j` to the
    /// maintained basic values: `x_B -= delta * B^-1 A_j`.
    fn shift_nonbasic(&mut self, j: usize, delta: f64) {
        if delta == 0.0 {
            return;
        }
        let m = self.m;
        let binv = &self.binv;
        let xb = &mut self.xb;
        let mut apply = |i: usize, a: f64| {
            let da = delta * a;
            for k in 0..m {
                let bv = binv[k * m + i];
                if bv != 0.0 {
                    xb[k] -= da * bv;
                }
            }
        };
        if j < self.n {
            for &(i, a) in &self.cols[j] {
                apply(i, a);
            }
        } else {
            apply(j - self.n, -1.0);
        }
    }

    /// Current bounds of structural variable `j`.
    pub fn var_bounds(&self, j: usize) -> (f64, f64) {
        (self.lower[j], self.upper[j])
    }

    fn nonbasic_value(&self, j: usize) -> f64 {
        if self.at_upper[j] {
            self.upper[j]
        } else {
            self.lower[j]
        }
    }

    /// Column `j` of the equality system `[A | -I]`, as `(row, coeff)`.
    fn column(&self, j: usize) -> ColumnIter<'_> {
        if j < self.n {
            ColumnIter::Structural(self.cols[j].iter())
        } else {
            ColumnIter::Logical(Some(j - self.n))
        }
    }

    /// `x_B = B^-1 (b - N x_N)`.
    fn basic_values(&self) -> Vec<f64> {
        let m = self.m;
        let mut t = self.rhs.clone();
        for j in 0..self.n + m {
            if self.basis_pos[j] >= 0 {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v.abs() <= ZERO_TOL {
                continue;
            }
            for (i, a) in self.column(j) {
                t[i] -= a * v;
            }
        }
        let mut xb = vec![0.0; m];
        for r in 0..m {
            let row = &self.binv[r * m..(r + 1) * m];
            let mut acc = 0.0;
            for (k, &bv) in row.iter().enumerate() {
                if bv != 0.0 {
                    acc += bv * t[k];
                }
            }
            xb[r] = acc;
        }
        xb
    }

    /// Recomputes `y = c_B B^-1` from scratch (refactorization path).
    fn recompute_duals(&mut self) {
        let m = self.m;
        let mut y = vec![0.0; m];
        for (r, &j) in self.basis.iter().enumerate() {
            let c = if j < self.n { self.costs[j] } else { 0.0 };
            if c == 0.0 {
                continue;
            }
            let row = &self.binv[r * m..(r + 1) * m];
            for (k, &bv) in row.iter().enumerate() {
                y[k] += c * bv;
            }
        }
        self.y = y;
    }

    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let c = if j < self.n { self.costs[j] } else { 0.0 };
        let mut d = c;
        for (i, a) in self.column(j) {
            d -= y[i] * a;
        }
        d
    }

    /// Rebuilds the maintained reduced-cost vector from the current
    /// duals (sparse pricing path; basic columns get exact zeros).
    fn rebuild_reduced_costs(&mut self) {
        for j in 0..self.n + self.m {
            self.d[j] = if self.basis_pos[j] >= 0 { 0.0 } else { self.reduced_cost(j, &self.y) };
        }
    }

    /// Resets the Devex reference framework (all weights to 1).
    fn reset_devex(&mut self) {
        for g in self.devex.iter_mut() {
            *g = 1.0;
        }
        self.devex_max = 1.0;
    }

    /// Rebuilds the dense basis inverse from scratch. Returns `false` if
    /// the basis matrix is numerically singular (in which case the solver
    /// resets to the all-logical basis).
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        // Assemble the basis matrix.
        let mut a = vec![0.0; m * m];
        for (r, &j) in self.basis.iter().enumerate() {
            for (i, v) in self.column(j) {
                a[i * m + r] = v;
            }
        }
        // Gauss-Jordan with partial pivoting on [A | I].
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv = col;
            let mut best = a[col * m + col].abs();
            for r in col + 1..m {
                let v = a[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-11 {
                self.reset_basis();
                return false;
            }
            if piv != col {
                for k in 0..m {
                    a.swap(col * m + k, piv * m + k);
                    inv.swap(col * m + k, piv * m + k);
                }
            }
            let p = a[col * m + col];
            for k in 0..m {
                a[col * m + k] /= p;
                inv[col * m + k] /= p;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = a[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    a[r * m + k] -= f * a[col * m + k];
                    inv[r * m + k] -= f * inv[col * m + k];
                }
            }
        }
        self.binv = inv;
        self.pivots_since_refactor = 0;
        self.recompute_duals();
        self.xb = self.basic_values();
        if self.pricing == Pricing::DevexSparse {
            self.rebuild_reduced_costs();
        }
        true
    }

    /// Abandons the current basis and restarts from the all-logical one
    /// (identity inverse, dual-feasible nonbasic placement).
    fn reset_basis(&mut self) {
        let m = self.m;
        let n = self.n;
        self.basis = (n..n + m).collect();
        for p in self.basis_pos.iter_mut() {
            *p = -1;
        }
        for (r, &j) in self.basis.iter().enumerate() {
            self.basis_pos[j] = r as i32;
        }
        for j in 0..n {
            self.at_upper[j] = self.costs[j] < 0.0 && self.upper[j].is_finite();
        }
        for j in n..n + m {
            self.at_upper[j] = false;
        }
        self.binv = vec![0.0; m * m];
        for i in 0..m {
            self.binv[i * m + i] = -1.0;
        }
        self.y = vec![0.0; m];
        self.pivots_since_refactor = 0;
        self.xb = self.basic_values();
        if self.pricing == Pricing::DevexSparse {
            self.rebuild_reduced_costs();
        }
        self.reset_devex();
    }

    /// Runs the dual simplex to optimality, infeasibility or the
    /// iteration limit.
    pub fn solve(&mut self) -> LpSolution {
        // Restore dual feasibility of nonbasic placements for variables
        // whose bounds changed since the last solve. While a variable is
        // fixed (l == u) it is excluded from the ratio test, so its
        // reduced cost may drift to the "wrong" side of its stored bound
        // status; after unfixing, that stale placement would let the
        // solve terminate at a dual-infeasible (suboptimal) point. Moving
        // a nonbasic variable to the other bound never changes the duals,
        // so this repair is free — and only bound-changed variables can
        // be stale, so only those are inspected.
        if !self.dirty.is_empty() {
            let y = self.y.clone();
            let dirty = std::mem::take(&mut self.dirty);
            for j in dirty {
                if self.basis_pos[j] >= 0 || self.lower[j] == self.upper[j] {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let v_old = self.nonbasic_value(j);
                if d < -DUAL_TOL {
                    self.at_upper[j] = self.upper[j].is_finite();
                } else if d > DUAL_TOL {
                    self.at_upper[j] = false;
                }
                let v_new = self.nonbasic_value(j);
                self.shift_nonbasic(j, v_new - v_old);
            }
        }
        let mut iterations = 0u64;
        let mut bound_flips = 0u64;
        loop {
            if iterations >= self.max_iterations {
                return self.emit(LpStatus::IterationLimit, Vec::new(), iterations, bound_flips);
            }
            if iterations.is_multiple_of(CANCEL_CHECK_INTERVAL)
                && (self.deadline.is_some() || self.stop.is_some())
                && self.cancelled()
            {
                return self.emit(LpStatus::Cancelled, Vec::new(), iterations, bound_flips);
            }
            if self.pivots_since_refactor >= REFACTOR_INTERVAL {
                self.refactorize();
            }
            let step = match self.pricing {
                Pricing::DenseLegacy => self.step_dense(iterations),
                Pricing::DevexSparse => self.step_devex(iterations, &mut bound_flips),
            };
            match step {
                Step::Optimal => return self.finish_optimal(iterations, bound_flips),
                Step::Infeasible(farkas) => {
                    return self.emit_infeasible(farkas, iterations, bound_flips)
                }
                Step::Pivoted => {
                    iterations += 1;
                    self.total_iterations += 1;
                }
            }
        }
    }

    /// One pivot of the frozen dense baseline: most-infeasible leaving
    /// row, full column scan with fresh reduced costs, Harris-lite ratio
    /// test. Kept byte-for-byte equivalent to the pre-Devex solver.
    fn step_dense(&mut self, iterations: u64) -> Step {
        let m = self.m;
        let xb = &self.xb;
        // Leaving variable: the most infeasible basic.
        let mut leave: Option<(usize, f64, f64)> = None; // (row, violation, sigma)
        let bland = iterations >= BLAND_THRESHOLD;
        for r in 0..m {
            let j = self.basis[r];
            let v = xb[r];
            let (lo, hi) = (self.lower[j], self.upper[j]);
            let (viol, sigma) = if v < lo - FEAS_TOL {
                (lo - v, -1.0)
            } else if v > hi + FEAS_TOL {
                (v - hi, 1.0)
            } else {
                continue;
            };
            let take = match leave {
                None => true,
                Some((_, best, _)) => {
                    if bland {
                        false // first (smallest row) violated wins
                    } else {
                        viol > best
                    }
                }
            };
            if take {
                leave = Some((r, viol, sigma));
                if bland {
                    break;
                }
            }
        }
        let Some((r, _, sigma)) = leave else {
            return Step::Optimal;
        };

        // Pivot row rho = e_r B^-1, alpha'_j = sigma * rho . col_j.
        let rho: Vec<f64> = self.binv[r * m..(r + 1) * m].to_vec();
        let y = self.y.clone();
        let mut best: Option<(usize, f64, f64)> = None; // (col, theta, |alpha|)
        for j in 0..self.n + m {
            if self.basis_pos[j] >= 0 {
                continue;
            }
            if self.lower[j] == self.upper[j] && j < self.n {
                // Fixed variable: entering it cannot restore
                // feasibility in a useful way; skip to keep pivots
                // meaningful (it may still be skipped safely because a
                // fixed column constrains nothing).
                continue;
            }
            let mut alpha = 0.0;
            for (i, a) in self.column(j) {
                alpha += rho[i] * a;
            }
            let alpha_s = sigma * alpha;
            let eligible =
                if self.at_upper[j] { alpha_s < -PIVOT_TOL } else { alpha_s > PIVOT_TOL };
            if !eligible {
                continue;
            }
            let d = self.reduced_cost(j, &y);
            let theta = (d / alpha_s).max(0.0); // clamp tiny dual infeasibilities
            let better = match best {
                None => true,
                Some((bj, bt, ba)) => {
                    if bland {
                        // Smallest index among minimal ratios.
                        theta < bt - DUAL_TOL || (theta <= bt + DUAL_TOL && j < bj)
                    } else {
                        // Harris-lite: among near-minimal ratios take
                        // the largest pivot magnitude.
                        theta < bt - 1e-9 || (theta <= bt + 1e-9 && alpha_s.abs() > ba)
                    }
                }
            };
            if better {
                best = Some((j, theta, alpha_s.abs()));
            }
        }
        let Some((enter, _, _)) = best else {
            // Infeasible: rho is (up to sign) a Farkas certificate.
            let farkas: Vec<usize> = (0..m).filter(|&i| rho[i].abs() > 1e-7).collect();
            return Step::Infeasible(farkas);
        };

        self.compute_w(enter);
        self.pivot_core(r, enter, sigma);
        Step::Pivoted
    }

    /// One pivot of the sparse hot path: Devex-weighted leaving row, one
    /// row-wise pass for the pivot-row coefficients, maintained reduced
    /// costs, bound-flipping ratio test.
    fn step_devex(&mut self, iterations: u64, bound_flips: &mut u64) -> Step {
        let m = self.m;
        let n = self.n;
        let bland = iterations >= BLAND_THRESHOLD;
        // Leaving row: largest violation^2 / devex weight (plain first
        // violated under the Bland anti-cycling regime).
        let mut leave: Option<(usize, f64, f64, f64)> = None; // (row, viol, sigma, score)
        for r in 0..m {
            let j = self.basis[r];
            let v = self.xb[r];
            let (lo, hi) = (self.lower[j], self.upper[j]);
            let (viol, sigma) = if v < lo - FEAS_TOL {
                (lo - v, -1.0)
            } else if v > hi + FEAS_TOL {
                (v - hi, 1.0)
            } else {
                continue;
            };
            if bland {
                leave = Some((r, viol, sigma, 0.0));
                break;
            }
            let score = viol * viol / self.devex[r];
            if leave.is_none_or(|(_, _, _, bs)| score > bs) {
                leave = Some((r, viol, sigma, score));
            }
        }
        let Some((r, viol, sigma, _)) = leave else {
            return Step::Optimal;
        };

        // Pivot-row coefficients in one pass over the row nonzeros:
        // alpha_j = sum_i rho_i a_ij with rho = e_r B^-1, plus the
        // logical diagonal alpha_{n+i} = -rho_i.
        self.alpha_stamp += 1;
        let stamp = self.alpha_stamp;
        self.alpha_touched.clear();
        for i in 0..m {
            let rv = self.binv[r * m + i];
            if rv == 0.0 {
                continue;
            }
            for &(j, a) in &self.rows_sp[i] {
                if self.alpha_mark[j] != stamp {
                    self.alpha_mark[j] = stamp;
                    self.alpha[j] = 0.0;
                    self.alpha_touched.push(j);
                }
                self.alpha[j] += rv * a;
            }
            let lj = n + i;
            if self.alpha_mark[lj] != stamp {
                self.alpha_mark[lj] = stamp;
                self.alpha[lj] = 0.0;
                self.alpha_touched.push(lj);
            }
            self.alpha[lj] -= rv;
        }

        // Ratio-test candidates among the touched (nonzero-alpha)
        // columns, priced with the maintained reduced costs.
        self.cand.clear();
        for idx in 0..self.alpha_touched.len() {
            let j = self.alpha_touched[idx];
            if self.basis_pos[j] >= 0 {
                continue;
            }
            if j < n && self.lower[j] == self.upper[j] {
                continue; // fixed variables stay out of the basis
            }
            let alpha_s = sigma * self.alpha[j];
            let eligible =
                if self.at_upper[j] { alpha_s < -PIVOT_TOL } else { alpha_s > PIVOT_TOL };
            if !eligible {
                continue;
            }
            let theta = (self.d[j] / alpha_s).max(0.0);
            self.cand.push((theta, j, alpha_s));
        }
        if self.cand.is_empty() {
            let farkas: Vec<usize> =
                (0..m).filter(|&i| self.binv[r * m + i].abs() > 1e-7).collect();
            return Step::Infeasible(farkas);
        }

        // Bound-flipping ratio test: walk the breakpoints in ratio order;
        // while flipping a boxed candidate to its other bound still
        // leaves the leaving row infeasible, absorb the breakpoint as a
        // bound flip and keep going. Under Bland, fall back to the plain
        // smallest-ratio / smallest-index rule with no flips.
        self.flips.clear();
        let chosen = if bland {
            let mut best = 0usize;
            for i in 1..self.cand.len() {
                let (t, j, _) = self.cand[i];
                let (bt, bj, _) = self.cand[best];
                if t < bt - DUAL_TOL || (t <= bt + DUAL_TOL && j < bj) {
                    best = i;
                }
            }
            best
        } else {
            // Ratio order; among equal ratios prefer the larger pivot.
            self.cand.sort_unstable_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| b.2.abs().partial_cmp(&a.2.abs()).unwrap())
                    .then_with(|| a.1.cmp(&b.1))
            });
            let last = self.cand.len() - 1;
            let mut remaining = viol;
            let mut chosen = last;
            for idx in 0..self.cand.len() {
                let (_, j, alpha_s) = self.cand[idx];
                let range = self.upper[j] - self.lower[j];
                if idx == last || !range.is_finite() {
                    chosen = idx;
                    break;
                }
                let gain = alpha_s.abs() * range;
                if remaining - gain > FEAS_TOL {
                    self.flips.push(idx);
                    remaining -= gain;
                } else {
                    chosen = idx;
                    break;
                }
            }
            chosen
        };

        // Apply the bound flips before the pivot: each flip moves the
        // maintained basic values (including the leaving row, which
        // stays infeasible by construction of the slope walk).
        for fi in 0..self.flips.len() {
            let j = self.cand[self.flips[fi]].1;
            let delta = if self.at_upper[j] {
                self.lower[j] - self.upper[j]
            } else {
                self.upper[j] - self.lower[j]
            };
            self.at_upper[j] = !self.at_upper[j];
            self.shift_nonbasic(j, delta);
            *bound_flips += 1;
        }

        let (_, enter, _) = self.cand[chosen];
        // Maintained reduced costs: one dual step of size theta_d moves
        // every nonbasic reduced cost by -theta_d * alpha_j; the entering
        // column's becomes exactly zero and the leaving column's lands at
        // -theta_d (its alpha is exactly 1).
        let theta_d = self.d[enter] / self.alpha[enter];
        if theta_d != 0.0 {
            for idx in 0..self.alpha_touched.len() {
                let j = self.alpha_touched[idx];
                if self.basis_pos[j] >= 0 || j == enter {
                    continue;
                }
                self.d[j] -= theta_d * self.alpha[j];
            }
        }
        let leave_col = self.basis[r];

        self.compute_w(enter);
        // Dual Devex reference-weight update (Forrest-Goldfarb): the
        // entering row inherits gamma_r / w_r^2 (floored at 1), every
        // other touched row takes max(gamma_i, (w_i/w_r)^2 gamma_r).
        let piv = self.w[r];
        let piv2 = piv * piv;
        let gr = self.devex[r];
        for i in 0..m {
            if i == r {
                continue;
            }
            let wi = self.w[i];
            if wi != 0.0 {
                let cand = (wi * wi / piv2) * gr;
                if cand > self.devex[i] {
                    self.devex[i] = cand;
                    if cand > self.devex_max {
                        self.devex_max = cand;
                    }
                }
            }
        }
        self.devex[r] = (gr / piv2).max(1.0);
        if self.devex[r] > self.devex_max {
            self.devex_max = self.devex[r];
        }
        if self.devex_max > DEVEX_RESET {
            self.reset_devex();
        }

        self.pivot_core(r, enter, sigma);
        self.d[enter] = 0.0;
        self.d[leave_col] = -theta_d;
        Step::Pivoted
    }

    /// Fills the scratch entering column `w = B^-1 A_enter`.
    fn compute_w(&mut self, enter: usize) {
        let m = self.m;
        self.w.clear();
        self.w.resize(m, 0.0);
        let binv = &self.binv;
        let w = &mut self.w;
        let mut apply = |i: usize, a: f64| {
            for k in 0..m {
                let bv = binv[k * m + i];
                if bv != 0.0 {
                    w[k] += bv * a;
                }
            }
        };
        if enter < self.n {
            for &(i, a) in &self.cols[enter] {
                apply(i, a);
            }
        } else {
            apply(enter - self.n, -1.0);
        }
    }

    /// Performs the basis exchange at row `r` with the entering column,
    /// assuming [`compute_w`](Self::compute_w) has filled the scratch
    /// column.
    fn pivot_core(&mut self, r: usize, enter: usize, sigma: f64) {
        let m = self.m;
        let piv = self.w[r];
        debug_assert!(piv.abs() > 1e-12, "pivot too small: {piv}");
        // Incremental primal update: the entering variable moves from its
        // bound value by delta so that the leaving variable lands exactly
        // on its violated bound.
        let leave0 = self.basis[r];
        let target = if sigma > 0.0 { self.upper[leave0] } else { self.lower[leave0] };
        let delta = (self.xb[r] - target) / piv;
        let enter_value = self.nonbasic_value(enter) + delta;
        for i in 0..m {
            if i != r && self.w[i] != 0.0 {
                self.xb[i] -= delta * self.w[i];
            }
        }
        self.xb[r] = enter_value;
        // Incremental dual update: y += theta * rho with theta = d_e /
        // alpha_e, so the entering column's reduced cost becomes zero.
        // (rho is row r of the *pre-pivot* inverse; alpha_e = rho.A_e =
        // w[r].)
        let d_enter = self.reduced_cost(enter, &self.y);
        let theta = d_enter / piv;
        if theta != 0.0 {
            for k in 0..m {
                self.y[k] += theta * self.binv[r * m + k];
            }
        }
        // Update B^-1 (product form).
        for k in 0..m {
            self.binv[r * m + k] /= piv;
        }
        for i in 0..m {
            if i == r || self.w[i] == 0.0 {
                continue;
            }
            let f = self.w[i];
            for k in 0..m {
                self.binv[i * m + k] -= f * self.binv[r * m + k];
            }
        }
        // Status bookkeeping.
        let leave = self.basis[r];
        self.basis[r] = enter;
        self.basis_pos[enter] = r as i32;
        self.basis_pos[leave] = -1;
        self.at_upper[leave] = sigma > 0.0;
        self.pivots_since_refactor += 1;
    }

    fn full_x(&self, xb: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        for j in 0..self.n {
            let p = self.basis_pos[j];
            x[j] = if p >= 0 { xb[p as usize] } else { self.nonbasic_value(j) };
        }
        x
    }

    fn finish_optimal(&mut self, iterations: u64, bound_flips: u64) -> LpSolution {
        let x = self.full_x(&self.xb);
        let objective: f64 = x.iter().zip(&self.costs).map(|(v, c)| v * c).sum();
        let duals = self.y.clone();
        let mut row_activity = vec![0.0; self.m];
        for (j, xv) in x.iter().enumerate() {
            if xv.abs() <= ZERO_TOL {
                continue;
            }
            for &(i, a) in &self.cols[j] {
                row_activity[i] += a * xv;
            }
        }
        let tight_rows: Vec<usize> = (0..self.m)
            .filter(|&i| {
                let scale = self.rhs[i].abs().max(1.0);
                (row_activity[i] - self.rhs[i]).abs() <= TIGHT_TOL * scale
            })
            .collect();
        LpSolution {
            status: LpStatus::Optimal,
            objective,
            x,
            duals,
            row_activity,
            tight_rows,
            farkas_rows: Vec::new(),
            iterations,
            bound_flips,
        }
    }

    fn emit_infeasible(
        &self,
        farkas_rows: Vec<usize>,
        iterations: u64,
        bound_flips: u64,
    ) -> LpSolution {
        LpSolution {
            status: LpStatus::Infeasible,
            objective: f64::INFINITY,
            x: vec![0.0; self.n],
            duals: vec![0.0; self.m],
            row_activity: vec![0.0; self.m],
            tight_rows: Vec::new(),
            farkas_rows,
            iterations,
            bound_flips,
        }
    }

    fn emit(
        &self,
        status: LpStatus,
        farkas_rows: Vec<usize>,
        iterations: u64,
        bound_flips: u64,
    ) -> LpSolution {
        LpSolution {
            status,
            objective: f64::NAN,
            x: vec![0.0; self.n],
            duals: vec![0.0; self.m],
            row_activity: vec![0.0; self.m],
            tight_rows: Vec::new(),
            farkas_rows,
            iterations,
            bound_flips,
        }
    }
}

enum ColumnIter<'a> {
    Structural(std::slice::Iter<'a, (usize, f64)>),
    Logical(Option<usize>),
}

impl Iterator for ColumnIter<'_> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<(usize, f64)> {
        match self {
            ColumnIter::Structural(it) => it.next().copied(),
            ColumnIter::Logical(slot) => slot.take().map(|i| (i, -1.0)),
        }
    }
}
