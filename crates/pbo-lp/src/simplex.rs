// Dense tableau arithmetic is written with explicit row/column indices;
// iterator forms would hide the pivot structure.
#![allow(clippy::needless_range_loop)]

//! Bounded-variable dual simplex.
//!
//! The solver targets the LPs arising from pseudo-Boolean relaxations
//! inside branch-and-bound: minimization with non-negative-ish costs,
//! `>=` rows, box-bounded variables, and *frequent re-solves after bound
//! changes* (variable fixings). The dual simplex is the natural method:
//! the all-logical starting basis is dual feasible by construction (the
//! nonbasic bound of each structural variable is chosen by the sign of
//! its reduced cost), and bound changes never disturb dual feasibility,
//! so warm starts typically re-optimize in a handful of pivots.
//!
//! Implementation notes:
//! * rows are turned into equalities `a_i.x - s_i = b_i` with surplus
//!   ("logical") variables `s_i in [0, inf)`;
//! * the basis inverse is kept dense and updated by the product form;
//!   it is refactorized (Gauss-Jordan with partial pivoting) periodically
//!   and on demand;
//! * the ratio test is a light Harris variant (among near-minimal ratios
//!   pick the largest pivot), with smallest-index tie-breaking after an
//!   iteration threshold as a cycling guard;
//! * primal values and duals are maintained incrementally across pivots
//!   and bound changes (the branch-and-bound hot path makes thousands of
//!   one-pivot re-solves), and recomputed from scratch at every
//!   refactorization to bound numerical drift.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::problem::LpProblem;
use crate::solution::{LpSolution, LpStatus};

const FEAS_TOL: f64 = 1e-7;
const DUAL_TOL: f64 = 1e-9;
const PIVOT_TOL: f64 = 1e-8;
const ZERO_TOL: f64 = 1e-9;
const TIGHT_TOL: f64 = 1e-6;
const REFACTOR_INTERVAL: u64 = 80;
const BLAND_THRESHOLD: u64 = 2_000;
/// Pivots between cooperative-cancellation polls: cheap enough to keep
/// deadline overshoot bounded by a few dozen dense pivots, rare enough
/// that `Instant::now` stays off the per-pivot path.
const CANCEL_CHECK_INTERVAL: u64 = 64;

/// Warm-startable bounded-variable dual simplex solver.
///
/// # Examples
///
/// ```
/// use pbo_lp::{DualSimplex, LpProblem, LpStatus};
///
/// let mut p = LpProblem::new(2);
/// p.set_cost(0, 1.0);
/// p.set_cost(1, 2.0);
/// p.add_row_ge(&[(0, 1.0), (1, 1.0)], 1.5);
/// let mut s = DualSimplex::new(&p);
/// let sol = s.solve();
/// assert_eq!(sol.status, LpStatus::Optimal);
/// assert!((sol.objective - 2.0).abs() < 1e-6); // x0 = 1, x1 = 0.5
/// ```
#[derive(Clone, Debug)]
pub struct DualSimplex {
    n: usize,
    m: usize,
    /// Sparse structural columns: `(row, coeff)` pairs.
    cols: Vec<Vec<(usize, f64)>>,
    costs: Vec<f64>,
    rhs: Vec<f64>,
    /// Bounds over all `n + m` columns (logicals: `[0, inf)`).
    lower: Vec<f64>,
    upper: Vec<f64>,
    basis: Vec<usize>,
    /// Position of a column in the basis, or -1.
    basis_pos: Vec<i32>,
    at_upper: Vec<bool>,
    /// Dense row-major basis inverse.
    binv: Vec<f64>,
    /// Duals `y = c_B B^-1`, maintained incrementally across pivots and
    /// recomputed at refactorization.
    y: Vec<f64>,
    /// Basic primal values `x_B = B^-1 (b - N x_N)`, maintained
    /// incrementally across pivots and nonbasic value changes, recomputed
    /// at refactorization.
    xb: Vec<f64>,
    pivots_since_refactor: u64,
    max_iterations: u64,
    /// Structural variables whose bounds changed since the last solve;
    /// only these need a dual-feasibility placement repair.
    dirty: Vec<usize>,
    /// Wall-clock deadline polled mid-solve (see `set_cancel`).
    deadline: Option<Instant>,
    /// External stop latch polled mid-solve (see `set_cancel`).
    stop: Option<Arc<AtomicBool>>,
    /// Cumulative iteration count across solves.
    pub total_iterations: u64,
}

impl DualSimplex {
    /// Builds a solver for `problem`, starting from the all-logical basis
    /// with each structural variable placed on the dual-feasible bound.
    pub fn new(problem: &LpProblem) -> DualSimplex {
        let n = problem.num_vars();
        let m = problem.num_rows();
        let mut cols = vec![Vec::new(); n];
        let mut rhs = Vec::with_capacity(m);
        for (i, (terms, b)) in problem.rows().enumerate() {
            for &(j, a) in terms {
                cols[j].push((i, a));
            }
            rhs.push(b);
        }
        let mut lower = problem.lower().to_vec();
        let mut upper = problem.upper().to_vec();
        lower.extend(std::iter::repeat_n(0.0, m));
        upper.extend(std::iter::repeat_n(f64::INFINITY, m));
        let costs = problem.costs().to_vec();
        let mut at_upper = vec![false; n + m];
        for j in 0..n {
            // Dual-feasible placement: negative reduced cost -> upper.
            at_upper[j] = costs[j] < 0.0 && upper[j].is_finite();
        }
        let basis: Vec<usize> = (n..n + m).collect();
        let mut basis_pos = vec![-1i32; n + m];
        for (r, &j) in basis.iter().enumerate() {
            basis_pos[j] = r as i32;
        }
        // The all-logical basis matrix is -I (surplus columns are -e_i),
        // so its inverse is -I as well.
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = -1.0;
        }
        let mut simplex = DualSimplex {
            n,
            m,
            cols,
            costs,
            rhs,
            lower,
            upper,
            basis,
            basis_pos,
            at_upper,
            binv,
            y: vec![0.0; m],
            xb: Vec::new(),
            pivots_since_refactor: 0,
            max_iterations: 20_000,
            dirty: Vec::new(),
            deadline: None,
            stop: None,
            total_iterations: 0,
        };
        simplex.xb = simplex.basic_values();
        simplex
    }

    /// Sets the per-solve iteration budget.
    pub fn set_max_iterations(&mut self, limit: u64) {
        self.max_iterations = limit;
    }

    /// Arms cooperative cancellation: [`solve`](Self::solve) returns
    /// [`LpStatus::Cancelled`] (basis warm-startable, like an iteration
    /// limit) once the deadline passes or the stop latch is set, polled
    /// every [`CANCEL_CHECK_INTERVAL`] pivots — so a deadline landing
    /// mid-solve is honored within a bounded overshoot instead of only
    /// between solves. `None`/`None` disarms.
    pub fn set_cancel(&mut self, deadline: Option<Instant>, stop: Option<Arc<AtomicBool>>) {
        self.deadline = deadline;
        self.stop = stop;
    }

    /// Whether an armed cancellation condition has tripped.
    fn cancelled(&self) -> bool {
        self.stop.as_ref().is_some_and(|s| s.load(Ordering::Acquire))
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Changes the bounds of structural variable `j`. The basis (and dual
    /// feasibility) is preserved, making the next [`solve`](Self::solve) a
    /// warm start.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or `j` is out of range.
    pub fn set_var_bounds(&mut self, j: usize, lower: f64, upper: f64) {
        assert!(j < self.n, "structural variable out of range");
        assert!(lower <= upper, "empty bound interval");
        let nonbasic = self.basis_pos[j] < 0;
        let v_old = if nonbasic { self.nonbasic_value(j) } else { 0.0 };
        self.lower[j] = lower;
        self.upper[j] = upper;
        if nonbasic && self.at_upper[j] && !upper.is_finite() {
            self.at_upper[j] = false;
        }
        if nonbasic {
            let v_new = self.nonbasic_value(j);
            self.shift_nonbasic(j, v_new - v_old);
        }
        self.dirty.push(j);
    }

    /// Applies a nonbasic value change of `delta` on column `j` to the
    /// maintained basic values: `x_B -= delta * B^-1 A_j`.
    fn shift_nonbasic(&mut self, j: usize, delta: f64) {
        if delta == 0.0 {
            return;
        }
        let m = self.m;
        let terms: Vec<(usize, f64)> = self.column(j).collect();
        for (i, a) in terms {
            let da = delta * a;
            for k in 0..m {
                let bv = self.binv[k * m + i];
                if bv != 0.0 {
                    self.xb[k] -= da * bv;
                }
            }
        }
    }

    /// Current bounds of structural variable `j`.
    pub fn var_bounds(&self, j: usize) -> (f64, f64) {
        (self.lower[j], self.upper[j])
    }

    fn nonbasic_value(&self, j: usize) -> f64 {
        if self.at_upper[j] {
            self.upper[j]
        } else {
            self.lower[j]
        }
    }

    /// Column `j` of the equality system `[A | -I]`, as `(row, coeff)`.
    fn column(&self, j: usize) -> ColumnIter<'_> {
        if j < self.n {
            ColumnIter::Structural(self.cols[j].iter())
        } else {
            ColumnIter::Logical(Some(j - self.n))
        }
    }

    /// `x_B = B^-1 (b - N x_N)`.
    fn basic_values(&self) -> Vec<f64> {
        let m = self.m;
        let mut t = self.rhs.clone();
        for j in 0..self.n + m {
            if self.basis_pos[j] >= 0 {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v.abs() <= ZERO_TOL {
                continue;
            }
            for (i, a) in self.column(j) {
                t[i] -= a * v;
            }
        }
        let mut xb = vec![0.0; m];
        for r in 0..m {
            let row = &self.binv[r * m..(r + 1) * m];
            let mut acc = 0.0;
            for (k, &bv) in row.iter().enumerate() {
                if bv != 0.0 {
                    acc += bv * t[k];
                }
            }
            xb[r] = acc;
        }
        xb
    }

    /// Recomputes `y = c_B B^-1` from scratch (refactorization path).
    fn recompute_duals(&mut self) {
        let m = self.m;
        let mut y = vec![0.0; m];
        for (r, &j) in self.basis.iter().enumerate() {
            let c = if j < self.n { self.costs[j] } else { 0.0 };
            if c == 0.0 {
                continue;
            }
            let row = &self.binv[r * m..(r + 1) * m];
            for (k, &bv) in row.iter().enumerate() {
                y[k] += c * bv;
            }
        }
        self.y = y;
    }

    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let c = if j < self.n { self.costs[j] } else { 0.0 };
        let mut d = c;
        for (i, a) in self.column(j) {
            d -= y[i] * a;
        }
        d
    }

    /// Rebuilds the dense basis inverse from scratch. Returns `false` if
    /// the basis matrix is numerically singular (in which case the solver
    /// resets to the all-logical basis).
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        // Assemble the basis matrix.
        let mut a = vec![0.0; m * m];
        for (r, &j) in self.basis.iter().enumerate() {
            for (i, v) in self.column(j) {
                a[i * m + r] = v;
            }
        }
        // Gauss-Jordan with partial pivoting on [A | I].
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv = col;
            let mut best = a[col * m + col].abs();
            for r in col + 1..m {
                let v = a[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-11 {
                self.reset_basis();
                return false;
            }
            if piv != col {
                for k in 0..m {
                    a.swap(col * m + k, piv * m + k);
                    inv.swap(col * m + k, piv * m + k);
                }
            }
            let p = a[col * m + col];
            for k in 0..m {
                a[col * m + k] /= p;
                inv[col * m + k] /= p;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = a[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    a[r * m + k] -= f * a[col * m + k];
                    inv[r * m + k] -= f * inv[col * m + k];
                }
            }
        }
        self.binv = inv;
        self.pivots_since_refactor = 0;
        self.recompute_duals();
        self.xb = self.basic_values();
        true
    }

    /// Abandons the current basis and restarts from the all-logical one
    /// (identity inverse, dual-feasible nonbasic placement).
    fn reset_basis(&mut self) {
        let m = self.m;
        let n = self.n;
        self.basis = (n..n + m).collect();
        for p in self.basis_pos.iter_mut() {
            *p = -1;
        }
        for (r, &j) in self.basis.iter().enumerate() {
            self.basis_pos[j] = r as i32;
        }
        for j in 0..n {
            self.at_upper[j] = self.costs[j] < 0.0 && self.upper[j].is_finite();
        }
        for j in n..n + m {
            self.at_upper[j] = false;
        }
        self.binv = vec![0.0; m * m];
        for i in 0..m {
            self.binv[i * m + i] = -1.0;
        }
        self.y = vec![0.0; m];
        self.pivots_since_refactor = 0;
        self.xb = self.basic_values();
    }

    /// Runs the dual simplex to optimality, infeasibility or the
    /// iteration limit.
    pub fn solve(&mut self) -> LpSolution {
        let m = self.m;
        // Restore dual feasibility of nonbasic placements for variables
        // whose bounds changed since the last solve. While a variable is
        // fixed (l == u) it is excluded from the ratio test, so its
        // reduced cost may drift to the "wrong" side of its stored bound
        // status; after unfixing, that stale placement would let the
        // solve terminate at a dual-infeasible (suboptimal) point. Moving
        // a nonbasic variable to the other bound never changes the duals,
        // so this repair is free — and only bound-changed variables can
        // be stale, so only those are inspected.
        if !self.dirty.is_empty() {
            let y = self.y.clone();
            let dirty = std::mem::take(&mut self.dirty);
            for j in dirty {
                if self.basis_pos[j] >= 0 || self.lower[j] == self.upper[j] {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let v_old = self.nonbasic_value(j);
                if d < -DUAL_TOL {
                    self.at_upper[j] = self.upper[j].is_finite();
                } else if d > DUAL_TOL {
                    self.at_upper[j] = false;
                }
                let v_new = self.nonbasic_value(j);
                self.shift_nonbasic(j, v_new - v_old);
            }
        }
        let mut iterations = 0u64;
        loop {
            if iterations >= self.max_iterations {
                return self.emit(LpStatus::IterationLimit, Vec::new(), iterations);
            }
            if iterations.is_multiple_of(CANCEL_CHECK_INTERVAL)
                && (self.deadline.is_some() || self.stop.is_some())
                && self.cancelled()
            {
                return self.emit(LpStatus::Cancelled, Vec::new(), iterations);
            }
            if self.pivots_since_refactor >= REFACTOR_INTERVAL {
                self.refactorize();
            }
            let xb = &self.xb;
            // Leaving variable: the most infeasible basic.
            let mut leave: Option<(usize, f64, f64)> = None; // (row, violation, sigma)
            let bland = iterations >= BLAND_THRESHOLD;
            for r in 0..m {
                let j = self.basis[r];
                let v = xb[r];
                let (lo, hi) = (self.lower[j], self.upper[j]);
                let (viol, sigma) = if v < lo - FEAS_TOL {
                    (lo - v, -1.0)
                } else if v > hi + FEAS_TOL {
                    (v - hi, 1.0)
                } else {
                    continue;
                };
                let take = match leave {
                    None => true,
                    Some((_, best, _)) => {
                        if bland {
                            false // first (smallest row) violated wins
                        } else {
                            viol > best
                        }
                    }
                };
                if take {
                    leave = Some((r, viol, sigma));
                    if bland {
                        break;
                    }
                }
            }
            let Some((r, _, sigma)) = leave else {
                return self.finish_optimal(iterations);
            };

            // Pivot row rho = e_r B^-1, alpha'_j = sigma * rho . col_j.
            let rho: Vec<f64> = self.binv[r * m..(r + 1) * m].to_vec();
            let y = self.y.clone();
            let mut best: Option<(usize, f64, f64)> = None; // (col, theta, |alpha|)
            for j in 0..self.n + m {
                if self.basis_pos[j] >= 0 {
                    continue;
                }
                if self.lower[j] == self.upper[j] && j < self.n {
                    // Fixed variable: entering it cannot restore
                    // feasibility in a useful way; skip to keep pivots
                    // meaningful (it may still be skipped safely because a
                    // fixed column constrains nothing).
                    continue;
                }
                let mut alpha = 0.0;
                for (i, a) in self.column(j) {
                    alpha += rho[i] * a;
                }
                let alpha_s = sigma * alpha;
                let eligible =
                    if self.at_upper[j] { alpha_s < -PIVOT_TOL } else { alpha_s > PIVOT_TOL };
                if !eligible {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let theta = (d / alpha_s).max(0.0); // clamp tiny dual infeasibilities
                let better = match best {
                    None => true,
                    Some((bj, bt, ba)) => {
                        if bland {
                            // Smallest index among minimal ratios.
                            theta < bt - DUAL_TOL || (theta <= bt + DUAL_TOL && j < bj)
                        } else {
                            // Harris-lite: among near-minimal ratios take
                            // the largest pivot magnitude.
                            theta < bt - 1e-9 || (theta <= bt + 1e-9 && alpha_s.abs() > ba)
                        }
                    }
                };
                if better {
                    best = Some((j, theta, alpha_s.abs()));
                }
            }
            let Some((enter, _, _)) = best else {
                // Infeasible: rho is (up to sign) a Farkas certificate.
                let farkas: Vec<usize> = (0..m).filter(|&i| rho[i].abs() > 1e-7).collect();
                return self.emit_infeasible(farkas, iterations);
            };

            self.pivot(r, enter, sigma);
            iterations += 1;
            self.total_iterations += 1;
        }
    }

    fn pivot(&mut self, r: usize, enter: usize, sigma: f64) {
        let m = self.m;
        // w = B^-1 A_enter
        let mut w = vec![0.0; m];
        for (i, a) in self.column(enter) {
            for k in 0..m {
                w[k] += self.binv[k * m + i] * a;
            }
        }
        let piv = w[r];
        debug_assert!(piv.abs() > 1e-12, "pivot too small: {piv}");
        // Incremental primal update: the entering variable moves from its
        // bound value by delta so that the leaving variable lands exactly
        // on its violated bound.
        let leave0 = self.basis[r];
        let target = if sigma > 0.0 { self.upper[leave0] } else { self.lower[leave0] };
        let delta = (self.xb[r] - target) / piv;
        let enter_value = self.nonbasic_value(enter) + delta;
        for i in 0..m {
            if i != r && w[i] != 0.0 {
                self.xb[i] -= delta * w[i];
            }
        }
        self.xb[r] = enter_value;
        // Incremental dual update: y += theta * rho with theta = d_e /
        // alpha_e, so the entering column's reduced cost becomes zero.
        // (rho is row r of the *pre-pivot* inverse; alpha_e = rho.A_e =
        // w[r].)
        let d_enter = self.reduced_cost(enter, &self.y.clone());
        let theta = d_enter / piv;
        if theta != 0.0 {
            for k in 0..m {
                self.y[k] += theta * self.binv[r * m + k];
            }
        }
        // Update B^-1 (product form).
        for k in 0..m {
            self.binv[r * m + k] /= piv;
        }
        for i in 0..m {
            if i == r || w[i] == 0.0 {
                continue;
            }
            let f = w[i];
            for k in 0..m {
                self.binv[i * m + k] -= f * self.binv[r * m + k];
            }
        }
        // Status bookkeeping.
        let leave = self.basis[r];
        self.basis[r] = enter;
        self.basis_pos[enter] = r as i32;
        self.basis_pos[leave] = -1;
        self.at_upper[leave] = sigma > 0.0;
        self.pivots_since_refactor += 1;
    }

    fn full_x(&self, xb: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        for j in 0..self.n {
            let p = self.basis_pos[j];
            x[j] = if p >= 0 { xb[p as usize] } else { self.nonbasic_value(j) };
        }
        x
    }

    fn finish_optimal(&mut self, iterations: u64) -> LpSolution {
        let x = self.full_x(&self.xb);
        let objective: f64 = x.iter().zip(&self.costs).map(|(v, c)| v * c).sum();
        let duals = self.y.clone();
        let mut row_activity = vec![0.0; self.m];
        for (j, xv) in x.iter().enumerate() {
            if xv.abs() <= ZERO_TOL {
                continue;
            }
            for &(i, a) in &self.cols[j] {
                row_activity[i] += a * xv;
            }
        }
        let tight_rows: Vec<usize> = (0..self.m)
            .filter(|&i| {
                let scale = self.rhs[i].abs().max(1.0);
                (row_activity[i] - self.rhs[i]).abs() <= TIGHT_TOL * scale
            })
            .collect();
        LpSolution {
            status: LpStatus::Optimal,
            objective,
            x,
            duals,
            row_activity,
            tight_rows,
            farkas_rows: Vec::new(),
            iterations,
        }
    }

    fn emit_infeasible(&self, farkas_rows: Vec<usize>, iterations: u64) -> LpSolution {
        LpSolution {
            status: LpStatus::Infeasible,
            objective: f64::INFINITY,
            x: vec![0.0; self.n],
            duals: vec![0.0; self.m],
            row_activity: vec![0.0; self.m],
            tight_rows: Vec::new(),
            farkas_rows,
            iterations,
        }
    }

    fn emit(&self, status: LpStatus, farkas_rows: Vec<usize>, iterations: u64) -> LpSolution {
        LpSolution {
            status,
            objective: f64::NAN,
            x: vec![0.0; self.n],
            duals: vec![0.0; self.m],
            row_activity: vec![0.0; self.m],
            tight_rows: Vec::new(),
            farkas_rows,
            iterations,
        }
    }
}

enum ColumnIter<'a> {
    Structural(std::slice::Iter<'a, (usize, f64)>),
    Logical(Option<usize>),
}

impl Iterator for ColumnIter<'_> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<(usize, f64)> {
        match self {
            ColumnIter::Structural(it) => it.next().copied(),
            ColumnIter::Logical(slot) => slot.take().map(|i| (i, -1.0)),
        }
    }
}
