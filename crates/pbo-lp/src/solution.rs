//! LP solve outcomes.

/// Termination status of a simplex solve.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LpStatus {
    /// An optimal (primal and dual feasible) basis was found.
    Optimal,
    /// The constraints admit no point inside the variable bounds.
    Infeasible,
    /// The iteration budget was exhausted before convergence.
    IterationLimit,
    /// A cooperative cancellation (deadline or stop flag) interrupted
    /// the solve before convergence. Like `IterationLimit`, the basis is
    /// left warm-startable and no bound information is available.
    Cancelled,
}

/// Result of a simplex solve.
///
/// For `Optimal` solves every field is meaningful. For `Infeasible`
/// solves, `farkas_rows` lists the rows participating in the infeasibility
/// certificate (the rows with nonzero multiplier in the Farkas
/// combination) — this is the set `S` used to explain LP-based bound
/// conflicts when the relaxation itself is infeasible.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value (meaningful for `Optimal`).
    pub objective: f64,
    /// Primal values per variable.
    pub x: Vec<f64>,
    /// Dual value per row (`>=` rows have non-negative duals at
    /// optimality).
    pub duals: Vec<f64>,
    /// Row activity `a_i . x` per row.
    pub row_activity: Vec<f64>,
    /// Rows satisfied with equality (zero slack) — the paper's set `S`
    /// (sec. 4.2) when the relaxation is feasible.
    pub tight_rows: Vec<usize>,
    /// Rows in the Farkas infeasibility certificate (empty unless
    /// `Infeasible`).
    pub farkas_rows: Vec<usize>,
    /// Simplex iterations performed in this call.
    pub iterations: u64,
    /// Nonbasic bound flips absorbed by the bound-flipping ratio test in
    /// this call (always zero under the dense legacy pricing, which has
    /// no flipping ratio test).
    pub bound_flips: u64,
}

impl LpSolution {
    /// Returns `true` if the solve reached optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }

    /// Returns `true` if the relaxation is infeasible.
    pub fn is_infeasible(&self) -> bool {
        self.status == LpStatus::Infeasible
    }

    /// The variables whose value is further than `tol` from both 0 and 1,
    /// i.e. the fractional variables an LP-guided branching heuristic
    /// considers (sec. 5 of the paper).
    pub fn fractional_vars(&self, tol: f64) -> Vec<usize> {
        self.x
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > tol && v < 1.0 - tol)
            .map(|(j, _)| j)
            .collect()
    }
}
