//! LP problem description: `min c^T x` subject to `A x >= b` and box
//! bounds `l <= x <= u`.

/// Identifier of a row (constraint) in an [`LpProblem`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RowId(pub(crate) usize);

impl RowId {
    /// The row's index in construction order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A linear program in the shape produced by relaxing a pseudo-Boolean
/// instance: minimization, `>=` rows, boxed variables.
///
/// # Examples
///
/// ```
/// use pbo_lp::LpProblem;
///
/// // min x0 + x1  s.t.  x0 + x1 >= 1.5,  0 <= x <= 1
/// let mut p = LpProblem::new(2);
/// p.set_cost(0, 1.0);
/// p.set_cost(1, 1.0);
/// p.add_row_ge(&[(0, 1.0), (1, 1.0)], 1.5);
/// assert_eq!(p.num_rows(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct LpProblem {
    num_vars: usize,
    costs: Vec<f64>,
    rows: Vec<(Vec<(usize, f64)>, f64)>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Reusable duplicate-column detector for [`LpProblem::add_row_ge`]:
    /// `seen[j] == stamp` marks column `j` as present in the row being
    /// validated, without a fresh allocation per row (relaxation rebuilds
    /// add hundreds of rows back to back).
    seen: Vec<u64>,
    stamp: u64,
}

impl LpProblem {
    /// Creates a problem over `num_vars` variables with zero costs and
    /// default bounds `[0, 1]`.
    pub fn new(num_vars: usize) -> LpProblem {
        LpProblem {
            num_vars,
            costs: vec![0.0; num_vars],
            rows: Vec::new(),
            lower: vec![0.0; num_vars],
            upper: vec![1.0; num_vars],
            seen: vec![0; num_vars],
            stamp: 0,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficient of variable `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn set_cost(&mut self, j: usize, c: f64) {
        self.costs[j] = c;
    }

    /// Objective coefficients.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Adds the row `sum coeff * x_col >= rhs` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range or repeated.
    pub fn add_row_ge(&mut self, terms: &[(usize, f64)], rhs: f64) -> RowId {
        self.stamp += 1;
        for &(j, _) in terms {
            assert!(j < self.num_vars, "column {j} out of range");
            assert!(self.seen[j] != self.stamp, "column {j} repeated in row");
            self.seen[j] = self.stamp;
        }
        self.rows.push((terms.to_vec(), rhs));
        RowId(self.rows.len() - 1)
    }

    /// The terms and right-hand side of a row.
    pub fn row(&self, id: RowId) -> (&[(usize, f64)], f64) {
        let (terms, rhs) = &self.rows[id.0];
        (terms, *rhs)
    }

    /// Sets the bounds of variable `j`.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`.
    pub fn set_bounds(&mut self, j: usize, lower: f64, upper: f64) {
        assert!(lower <= upper, "empty bound interval for x{j}: [{lower}, {upper}]");
        self.lower[j] = lower;
        self.upper[j] = upper;
    }

    /// Lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Iterates over `(terms, rhs)` for all rows.
    pub fn rows(&self) -> impl Iterator<Item = (&[(usize, f64)], f64)> {
        self.rows.iter().map(|(t, r)| (t.as_slice(), *r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut p = LpProblem::new(3);
        p.set_cost(1, 2.5);
        let r = p.add_row_ge(&[(0, 1.0), (2, -1.0)], 0.5);
        p.set_bounds(2, 0.0, 0.0);
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.num_rows(), 1);
        assert_eq!(p.costs()[1], 2.5);
        let (terms, rhs) = p.row(r);
        assert_eq!(terms.len(), 2);
        assert_eq!(rhs, 0.5);
        assert_eq!(p.upper()[2], 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_bounds_panic() {
        let mut p = LpProblem::new(1);
        p.set_bounds(0, 1.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn repeated_column_panics() {
        let mut p = LpProblem::new(2);
        p.add_row_ge(&[(0, 1.0), (0, 2.0)], 1.0);
    }
}
