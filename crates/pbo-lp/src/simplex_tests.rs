//! Dual simplex tests: known optima, infeasibility certificates, warm
//! starts, and randomized KKT / relaxation-bound property checks.

use rand::{Rng, SeedableRng};

use crate::problem::LpProblem;
use crate::simplex::{DualSimplex, Pricing};
use crate::solution::LpStatus;

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "expected {b}, got {a}");
}

#[test]
fn trivial_empty_problem() {
    let p = LpProblem::new(3);
    let sol = DualSimplex::new(&p).solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 0.0, 1e-9);
}

#[test]
fn unconstrained_vars_sit_on_cheap_bound() {
    let mut p = LpProblem::new(2);
    p.set_cost(0, 3.0);
    p.set_cost(1, -2.0); // negative cost: optimal at upper bound
    let sol = DualSimplex::new(&p).solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.x[0], 0.0, 1e-9);
    assert_close(sol.x[1], 1.0, 1e-9);
    assert_close(sol.objective, -2.0, 1e-9);
}

#[test]
fn covers_fractional_vertex() {
    // min x0 + x1 st x0 + x1 >= 1.5 -> 1.5 split across the box.
    let mut p = LpProblem::new(2);
    p.set_cost(0, 1.0);
    p.set_cost(1, 1.0);
    p.add_row_ge(&[(0, 1.0), (1, 1.0)], 1.5);
    let sol = DualSimplex::new(&p).solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 1.5, 1e-7);
    assert_eq!(sol.tight_rows, vec![0]);
    assert!(sol.duals[0] >= -1e-9);
}

#[test]
fn weighted_cover_picks_cheapest_mix() {
    // min 1*x0 + 3*x1 st x0 + x1 >= 1, x1 >= 0.25
    let mut p = LpProblem::new(2);
    p.set_cost(0, 1.0);
    p.set_cost(1, 3.0);
    p.add_row_ge(&[(0, 1.0), (1, 1.0)], 1.0);
    p.add_row_ge(&[(1, 1.0)], 0.25);
    let sol = DualSimplex::new(&p).solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    // x1 = 0.25 (forced), x0 = 0.75 -> z = 0.75 + 0.75 = 1.5
    assert_close(sol.objective, 1.5, 1e-7);
    assert_close(sol.x[1], 0.25, 1e-7);
}

#[test]
fn detects_infeasibility_with_farkas_rows() {
    let mut p = LpProblem::new(2);
    p.add_row_ge(&[(0, 1.0), (1, 1.0)], 3.0); // impossible in [0,1]^2
    let sol = DualSimplex::new(&p).solve();
    assert_eq!(sol.status, LpStatus::Infeasible);
    assert_eq!(sol.farkas_rows, vec![0]);
}

#[test]
fn negative_coefficients_handled() {
    // min x0 st x0 - x1 >= 0, x1 >= 0.5  -> x0 = 0.5
    let mut p = LpProblem::new(2);
    p.set_cost(0, 1.0);
    p.add_row_ge(&[(0, 1.0), (1, -1.0)], 0.0);
    p.add_row_ge(&[(1, 1.0)], 0.5);
    let sol = DualSimplex::new(&p).solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 0.5, 1e-7);
}

#[test]
fn warm_start_after_fixings() {
    // min x0 + 2*x1 + 3*x2 st x0 + x1 + x2 >= 2
    let mut p = LpProblem::new(3);
    for (j, c) in [(0, 1.0), (1, 2.0), (2, 3.0)] {
        p.set_cost(j, c);
    }
    p.add_row_ge(&[(0, 1.0), (1, 1.0), (2, 1.0)], 2.0);
    let mut s = DualSimplex::new(&p);
    let sol = s.solve();
    assert_close(sol.objective, 3.0, 1e-7); // x0 = x1 = 1

    // Fix x1 = 0: optimum must move to x0 = x2 = 1 -> 4.
    s.set_var_bounds(1, 0.0, 0.0);
    let sol = s.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 4.0, 1e-7);

    // Unfix: back to 3.
    s.set_var_bounds(1, 0.0, 1.0);
    let sol = s.solve();
    assert_close(sol.objective, 3.0, 1e-7);

    // Fix two to 0: infeasible (only one unit of mass left).
    s.set_var_bounds(0, 0.0, 0.0);
    s.set_var_bounds(1, 0.0, 0.0);
    assert_eq!(s.solve().status, LpStatus::Infeasible);
}

#[test]
fn fixed_to_one_contributes() {
    let mut p = LpProblem::new(2);
    p.set_cost(0, 5.0);
    p.set_cost(1, 1.0);
    p.add_row_ge(&[(0, 1.0), (1, 1.0)], 1.0);
    let mut s = DualSimplex::new(&p);
    s.set_var_bounds(0, 1.0, 1.0);
    let sol = s.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    // x0 fixed to 1 already satisfies the row; x1 free at 0.
    assert_close(sol.objective, 5.0, 1e-7);
    assert_close(sol.x[0], 1.0, 1e-9);
    assert_close(sol.x[1], 0.0, 1e-9);
}

/// Random box LPs: verify KKT conditions at the reported optimum.
#[test]
fn random_lps_satisfy_kkt() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x1b);
    let mut optimal_seen = 0;
    for round in 0..80 {
        let n = rng.gen_range(2..8);
        let m = rng.gen_range(1..8);
        let mut p = LpProblem::new(n);
        for j in 0..n {
            p.set_cost(j, rng.gen_range(-3..6) as f64);
        }
        for _ in 0..m {
            let mut terms = Vec::new();
            for j in 0..n {
                if rng.gen_bool(0.6) {
                    let c = rng.gen_range(-2..4) as f64;
                    if c != 0.0 {
                        terms.push((j, c));
                    }
                }
            }
            if terms.is_empty() {
                terms.push((0, 1.0));
            }
            let max_act: f64 = terms.iter().map(|&(_, c): &(usize, f64)| c.max(0.0)).sum();
            let rhs = rng.gen_range(-1.0..max_act.max(0.5));
            p.add_row_ge(&terms, rhs);
        }
        let mut s = DualSimplex::new(&p);
        let sol = s.solve();
        match sol.status {
            LpStatus::Optimal => {
                optimal_seen += 1;
                // Primal feasibility.
                for (i, (terms, rhs)) in p.rows().enumerate() {
                    let act: f64 = terms.iter().map(|&(j, a)| a * sol.x[j]).sum();
                    assert!(act >= rhs - 1e-6, "round {round}: row {i} violated: {act} < {rhs}");
                }
                for j in 0..n {
                    assert!(sol.x[j] >= -1e-7 && sol.x[j] <= 1.0 + 1e-7, "round {round}");
                }
                // Dual feasibility + complementary slackness.
                for (i, (_, rhs)) in p.rows().enumerate() {
                    assert!(sol.duals[i] >= -1e-6, "round {round}: negative dual on >= row");
                    let slack = sol.row_activity[i] - rhs;
                    assert!(
                        sol.duals[i].abs() * slack.abs() <= 1e-4,
                        "round {round}: row {i} violates complementary slackness \
                         (dual {}, slack {slack})",
                        sol.duals[i]
                    );
                }
                // Stationarity on interior variables.
                for j in 0..n {
                    let mut d = p.costs()[j];
                    for (i, (terms, _)) in p.rows().enumerate() {
                        for &(jj, a) in terms {
                            if jj == j {
                                d -= sol.duals[i] * a;
                            }
                        }
                    }
                    if sol.x[j] > 1e-6 && sol.x[j] < 1.0 - 1e-6 {
                        assert!(d.abs() <= 1e-5, "round {round}: interior var with d = {d}");
                    } else if sol.x[j] <= 1e-6 {
                        assert!(d >= -1e-5, "round {round}: at lower with d = {d}");
                    } else {
                        assert!(d <= 1e-5, "round {round}: at upper with d = {d}");
                    }
                }
            }
            LpStatus::Infeasible => {
                // Spot-check: no corner of the box is feasible.
                if n <= 6 {
                    for mask in 0u32..(1 << n) {
                        let ok = p.rows().all(|(terms, rhs)| {
                            let act: f64 = terms
                                .iter()
                                .map(|&(j, a)| if (mask >> j) & 1 == 1 { a } else { 0.0 })
                                .sum();
                            act >= rhs - 1e-9
                        });
                        assert!(!ok, "round {round}: infeasible LP has feasible corner {mask:b}");
                    }
                }
            }
            LpStatus::IterationLimit => panic!("round {round}: iteration limit on tiny LP"),
            LpStatus::Cancelled => panic!("round {round}: cancelled without a token"),
        }
    }
    assert!(optimal_seen > 20, "too few optimal instances to be meaningful");
}

/// The LP relaxation value never exceeds the best 0-1 point.
#[test]
fn relaxation_lower_bounds_integer_optimum() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x2c);
    for round in 0..60 {
        let n = rng.gen_range(2..7);
        let m = rng.gen_range(1..6);
        let mut p = LpProblem::new(n);
        for j in 0..n {
            p.set_cost(j, rng.gen_range(0..8) as f64);
        }
        for _ in 0..m {
            let mut terms = Vec::new();
            for j in 0..n {
                if rng.gen_bool(0.7) {
                    terms.push((j, rng.gen_range(1..4) as f64));
                }
            }
            if terms.is_empty() {
                terms.push((0, 1.0));
            }
            let max_act: f64 = terms.iter().map(|&(_, c)| c).sum();
            let rhs = rng.gen_range(1.0..=max_act);
            p.add_row_ge(&terms, rhs);
        }
        // Enumerate 0-1 corners.
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << n) {
            let feas = p.rows().all(|(terms, rhs)| {
                let act: f64 =
                    terms.iter().map(|&(j, a)| if (mask >> j) & 1 == 1 { a } else { 0.0 }).sum();
                act >= rhs - 1e-9
            });
            if feas {
                let cost: f64 =
                    (0..n).map(|j| if (mask >> j) & 1 == 1 { p.costs()[j] } else { 0.0 }).sum();
                best = Some(best.map_or(cost, |b: f64| b.min(cost)));
            }
        }
        let sol = DualSimplex::new(&p).solve();
        match (sol.status, best) {
            (LpStatus::Optimal, Some(b)) => {
                assert!(
                    sol.objective <= b + 1e-6,
                    "round {round}: LP bound {} exceeds ILP optimum {b}",
                    sol.objective
                );
            }
            (LpStatus::Optimal, None) => {} // LP feasible, ILP not: fine
            (LpStatus::Infeasible, Some(_)) => {
                panic!("round {round}: LP infeasible but ILP feasible")
            }
            (LpStatus::Infeasible, None) => {}
            (LpStatus::IterationLimit, _) => panic!("round {round}: iteration limit"),
            (LpStatus::Cancelled, _) => panic!("round {round}: cancelled without a token"),
        }
    }
}

#[test]
fn repeated_warm_starts_stay_consistent() {
    // Fix/unfix variables in a loop; every re-solve must match a fresh
    // solve of the same bounds.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x3d);
    let n = 6;
    let mut p = LpProblem::new(n);
    for j in 0..n {
        p.set_cost(j, (j + 1) as f64);
    }
    p.add_row_ge(&[(0, 1.0), (1, 1.0), (2, 1.0)], 2.0);
    p.add_row_ge(&[(2, 1.0), (3, 1.0), (4, 1.0)], 1.0);
    p.add_row_ge(&[(1, 2.0), (4, 1.0), (5, 1.0)], 2.0);
    let mut warm = DualSimplex::new(&p);
    for _ in 0..40 {
        let mut bounds = Vec::new();
        for j in 0..n {
            let (lo, hi) = match rng.gen_range(0..3) {
                0 => (0.0, 1.0),
                1 => (0.0, 0.0),
                _ => (1.0, 1.0),
            };
            bounds.push((j, lo, hi));
        }
        let mut fresh_p = p.clone();
        for &(j, lo, hi) in &bounds {
            warm.set_var_bounds(j, lo, hi);
            fresh_p.set_bounds(j, lo, hi);
        }
        let warm_sol = warm.solve();
        let fresh_sol = DualSimplex::new(&fresh_p).solve();
        assert_eq!(warm_sol.status, fresh_sol.status, "bounds {bounds:?}");
        if warm_sol.status == LpStatus::Optimal {
            assert_close(warm_sol.objective, fresh_sol.objective, 1e-6);
        }
    }
}

/// Differential: the sparse Devex path and the frozen dense baseline
/// must agree on status and optimal value across random LPs and random
/// warm-start bound-change schedules (bases may differ on degenerate
/// instances; objectives may not).
#[test]
fn devex_and_dense_pricing_agree() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x4e);
    for round in 0..60 {
        let n = rng.gen_range(2..10);
        let m = rng.gen_range(1..10);
        let mut p = LpProblem::new(n);
        for j in 0..n {
            p.set_cost(j, rng.gen_range(-3..7) as f64);
        }
        for _ in 0..m {
            let mut terms = Vec::new();
            for j in 0..n {
                if rng.gen_bool(0.5) {
                    let c = rng.gen_range(-2..4) as f64;
                    if c != 0.0 {
                        terms.push((j, c));
                    }
                }
            }
            if terms.is_empty() {
                terms.push((0, 1.0));
            }
            let max_act: f64 = terms.iter().map(|&(_, c): &(usize, f64)| c.max(0.0)).sum();
            p.add_row_ge(&terms, rng.gen_range(-1.0..max_act.max(0.5)));
        }
        let mut devex = DualSimplex::new(&p);
        assert_eq!(devex.pricing(), Pricing::DevexSparse);
        let mut dense = DualSimplex::new(&p);
        dense.set_pricing(Pricing::DenseLegacy);
        // Root solve plus a random fix/unfix schedule of warm starts.
        for step in 0..8 {
            if step > 0 {
                let j = rng.gen_range(0..n);
                let (lo, hi) = match rng.gen_range(0..3) {
                    0 => (0.0, 1.0),
                    1 => (0.0, 0.0),
                    _ => (1.0, 1.0),
                };
                devex.set_var_bounds(j, lo, hi);
                dense.set_var_bounds(j, lo, hi);
            }
            let a = devex.solve();
            let b = dense.solve();
            assert_eq!(a.status, b.status, "round {round} step {step}");
            if a.status == LpStatus::Optimal {
                assert_close(a.objective, b.objective, 1e-5);
            }
            assert_eq!(b.bound_flips, 0, "dense baseline has no flipping ratio test");
        }
    }
}

/// `append_row_ge` extends the warm basis: solving after an append must
/// match a fresh solver built with the row present from the start, and
/// the appended solver must keep warm-starting correctly afterwards.
#[test]
fn append_row_matches_fresh_rebuild() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x5f);
    for round in 0..40 {
        let n = rng.gen_range(3..9);
        let m0 = rng.gen_range(1..5);
        let mut rows: Vec<(Vec<(usize, f64)>, f64)> = Vec::new();
        let gen_row = |rng: &mut rand_chacha::ChaCha8Rng| {
            let mut terms = Vec::new();
            for j in 0..n {
                if rng.gen_bool(0.6) {
                    let c = rng.gen_range(-2..4) as f64;
                    if c != 0.0 {
                        terms.push((j, c));
                    }
                }
            }
            if terms.is_empty() {
                terms.push((0, 1.0));
            }
            let max_act: f64 = terms.iter().map(|&(_, c): &(usize, f64)| c.max(0.0)).sum();
            let rhs = rng.gen_range(-1.0..max_act.max(0.5));
            (terms, rhs)
        };
        let mut p = LpProblem::new(n);
        for j in 0..n {
            p.set_cost(j, rng.gen_range(0..7) as f64);
        }
        for _ in 0..m0 {
            let (terms, rhs) = gen_row(&mut rng);
            p.add_row_ge(&terms, rhs);
            rows.push((terms, rhs));
        }
        let mut warm = DualSimplex::new(&p);
        let _ = warm.solve(); // establish a warm, typically non-trivial basis
                              // Append 1..4 new rows one at a time, re-solving after each.
        for _ in 0..rng.gen_range(1..5) {
            let (terms, rhs) = gen_row(&mut rng);
            warm.append_row_ge(&terms, rhs);
            rows.push((terms.clone(), rhs));
            let mut fresh_p = LpProblem::new(n);
            for j in 0..n {
                fresh_p.set_cost(j, p.costs()[j]);
            }
            for (t, r) in &rows {
                fresh_p.add_row_ge(t, *r);
            }
            let a = warm.solve();
            let b = DualSimplex::new(&fresh_p).solve();
            assert_eq!(a.status, b.status, "round {round} after append");
            if a.status == LpStatus::Optimal {
                assert_close(a.objective, b.objective, 1e-5);
            }
        }
        // The appended basis must still warm-start across bound changes.
        let j = rng.gen_range(0..n);
        warm.set_var_bounds(j, 1.0, 1.0);
        let mut fresh_p = LpProblem::new(n);
        for jj in 0..n {
            fresh_p.set_cost(jj, p.costs()[jj]);
        }
        for (t, r) in &rows {
            fresh_p.add_row_ge(t, *r);
        }
        fresh_p.set_bounds(j, 1.0, 1.0);
        let a = warm.solve();
        let b = DualSimplex::new(&fresh_p).solve();
        assert_eq!(a.status, b.status, "round {round} after fix");
        if a.status == LpStatus::Optimal {
            assert_close(a.objective, b.objective, 1e-5);
        }
    }
}

/// A pre-set stop latch cancels before the first pivot: the poll at
/// iteration zero fires ahead of any basis work, so teardown cost is
/// one atomic load.
#[test]
fn preset_stop_latch_cancels_immediately() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut p = LpProblem::new(4);
    for j in 0..4 {
        p.set_cost(j, (j + 1) as f64);
    }
    p.add_row_ge(&[(0, 1.0), (1, 1.0)], 1.0);
    p.add_row_ge(&[(2, 1.0), (3, 1.0)], 1.0);
    let stop = Arc::new(AtomicBool::new(true));
    let mut s = DualSimplex::new(&p);
    s.set_cancel(None, Some(stop.clone()));
    let sol = s.solve();
    assert_eq!(sol.status, LpStatus::Cancelled);
    // Disarming restores normal solves on the same (warm) basis.
    stop.store(false, Ordering::Release);
    let sol = s.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 1.0 + 3.0, 1e-7);
}

/// An already-expired deadline is honored the same way, and clearing it
/// re-enables the solve.
#[test]
fn expired_deadline_cancels_immediately() {
    use std::time::{Duration, Instant};

    let mut p = LpProblem::new(3);
    p.set_cost(0, 1.0);
    p.add_row_ge(&[(0, 1.0), (1, 1.0), (2, 1.0)], 1.5);
    let mut s = DualSimplex::new(&p);
    s.set_cancel(Some(Instant::now() - Duration::from_millis(1)), None);
    assert_eq!(s.solve().status, LpStatus::Cancelled);
    s.set_cancel(None, None);
    assert_eq!(s.solve().status, LpStatus::Optimal);
}

/// The mid-solve guarantee: a stop latch set ~10ms into a long dual
/// simplex run returns `Cancelled` within a bounded overshoot instead
/// of running to optimality. Timing-sensitive, so ignored by default;
/// the fault-injection CI job runs it explicitly.
#[test]
#[ignore = "timing-sensitive: run explicitly (CI fault-injection job)"]
fn stop_latch_mid_solve_returns_in_bounded_time() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // A dense LP big enough to pivot for a while: overlapping cover
    // rows over 400 variables with mixed-sign coefficients.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xcab);
    let n = 400;
    let mut p = LpProblem::new(n);
    for j in 0..n {
        p.set_cost(j, rng.gen_range(1..10) as f64);
    }
    for i in 0..n {
        let mut terms = Vec::new();
        for k in 0..40 {
            let j = (i * 7 + k * 13) % n;
            terms.push((j, rng.gen_range(-2i32..5).max(1) as f64));
        }
        p.add_row_ge(&terms, rng.gen_range(4.0..12.0));
        let _ = i;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut s = DualSimplex::new(&p);
    s.set_cancel(None, Some(stop.clone()));
    let flipper = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            stop.store(true, Ordering::Release);
        })
    };
    let t0 = Instant::now();
    let sol = s.solve();
    let elapsed = t0.elapsed();
    flipper.join().unwrap();
    // Either the solve finished inside the 10ms head start (fine) or it
    // was cancelled; a cancelled return must land well inside a second
    // — the poll interval is 64 pivots, each far under a millisecond.
    if sol.status == LpStatus::Cancelled {
        assert!(elapsed < Duration::from_millis(500), "cancel honored too slowly: {elapsed:?}");
    } else {
        assert_eq!(sol.status, LpStatus::Optimal);
    }
}
