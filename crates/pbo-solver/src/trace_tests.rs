//! Trace/counter coherence: the event stream and [`SolverStats`] are two
//! views of the same run, recorded at the same increment sites — these
//! tests assert they reconcile **exactly**, sequential and parallel,
//! racing and deterministic. A drifting count means an emission site
//! moved away from its counter (or a counter gained a second increment
//! path the trace does not see).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use pbo_core::{Instance, InstanceBuilder, Lit, RelOp};
use pbo_trace::{Event, TraceEvent};

use crate::{Bsolo, BsoloOptions, LbMethod, ParBsolo, SolverStats, LB_METHOD_NAMES};

/// Random optimization instance (the solver_tests generator shape).
fn random_instance(rng: &mut ChaCha8Rng, n_max: usize) -> Instance {
    let n = rng.gen_range(4..=n_max);
    let mut b = InstanceBuilder::new();
    let vars = b.new_vars(n);
    let m = rng.gen_range(3..10);
    for _ in 0..m {
        let k = rng.gen_range(1..=3.min(n));
        let mut idxs: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            idxs.swap(i, j);
        }
        let terms: Vec<(i64, Lit)> = idxs[..k]
            .iter()
            .map(|&i| (rng.gen_range(1..4), vars[i].lit(rng.gen_bool(0.75))))
            .collect();
        let maxw: i64 = terms.iter().map(|t| t.0).sum();
        let rhs = rng.gen_range(1..=maxw);
        b.add_linear(terms, RelOp::Ge, rhs);
    }
    b.minimize(vars.iter().map(|v| (rng.gen_range(0..6), v.lit(rng.gen_bool(0.85)))));
    b.build().unwrap()
}

/// Event-side tallies of everything the stats side also counts.
#[derive(Default, Debug, PartialEq, Eq)]
struct Tally {
    decisions: u64,
    conflicts: u64,
    restarts: u64,
    solutions: u64,
    resplits: u64,
    clauses_shared: u64,
    clauses_imported: u64,
    bound_calls: u64,
    /// Per-method splits of `bound_calls` and of closing outcomes
    /// (pruned/infeasible), in [`LB_METHOD_NAMES`] order.
    bound_calls_by: [u64; 4],
    bound_prunes_by: [u64; 4],
    escalations: u64,
    steals: u64,
    injections: u64,
}

fn tally(events: &[Event]) -> Tally {
    let mut t = Tally::default();
    for ev in events {
        match ev.data {
            TraceEvent::Bound { method, outcome, .. } => {
                t.bound_calls += 1;
                let bucket = LB_METHOD_NAMES
                    .iter()
                    .position(|&n| n == method)
                    .unwrap_or_else(|| panic!("unknown bound method in trace: {method}"));
                t.bound_calls_by[bucket] += 1;
                if outcome != pbo_trace::BoundOutcome::Open {
                    t.bound_prunes_by[bucket] += 1;
                }
            }
            TraceEvent::Escalate { .. } => t.escalations += 1,
            TraceEvent::Decision => t.decisions += 1,
            // The splitter's lookahead decisions are recorded in bulk.
            TraceEvent::SplitterDecisions { n } => t.decisions += n,
            TraceEvent::Conflict => t.conflicts += 1,
            TraceEvent::Restart => t.restarts += 1,
            TraceEvent::Solution { .. } => t.solutions += 1,
            TraceEvent::Resplit { .. } => t.resplits += 1,
            TraceEvent::ClausesShared { n } => t.clauses_shared += n,
            TraceEvent::ClausesImported { n } => t.clauses_imported += n,
            // Scheduler traffic: one Steal per stolen cube, Inject in
            // bulk (driver frontier seed, worker overflow spills).
            TraceEvent::Steal { .. } => t.steals += 1,
            TraceEvent::Inject { n } => t.injections += n,
            _ => {}
        }
    }
    t
}

fn assert_coherent(label: &str, stats: &SolverStats) {
    let t = tally(&stats.trace);
    assert_eq!(t.decisions, stats.decisions, "{label}: decisions");
    assert_eq!(t.conflicts, stats.conflicts, "{label}: conflicts");
    assert_eq!(t.restarts, stats.restarts, "{label}: restarts");
    assert_eq!(t.solutions, stats.solutions_found, "{label}: solutions");
    assert_eq!(t.resplits, stats.resplits, "{label}: resplits");
    assert_eq!(t.clauses_shared, stats.clauses_shared, "{label}: clauses shared");
    assert_eq!(t.clauses_imported, stats.clauses_imported, "{label}: clauses imported");
    assert_eq!(t.bound_calls, stats.lb_calls, "{label}: bound calls");
    assert_eq!(t.escalations, stats.lb_escalations, "{label}: escalations");
    for (i, name) in LB_METHOD_NAMES.iter().enumerate() {
        assert_eq!(t.bound_calls_by[i], stats.lb_methods[i].calls, "{label}: {name} bucket calls");
        assert_eq!(
            t.bound_prunes_by[i], stats.lb_methods[i].prunes,
            "{label}: {name} bucket prunes"
        );
    }
    assert_eq!(t.steals, stats.steals, "{label}: steals");
    assert_eq!(t.injections, stats.injections, "{label}: injections");
}

fn traced(lb: LbMethod) -> BsoloOptions {
    let mut options = BsoloOptions::with_lb(lb);
    options.trace = true;
    options
}

#[test]
fn sequential_trace_counts_match_stats() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7c0e);
    for round in 0..15 {
        let inst = random_instance(&mut rng, 9);
        for lb in [LbMethod::Mis, LbMethod::Lpr, LbMethod::Adaptive] {
            let result = Bsolo::new(traced(lb)).solve(&inst);
            // A root-level proof (preprocessing infeasibility) can be
            // event-free; a run that searched must have traced it.
            if result.stats.decisions > 0 || result.stats.lb_calls > 0 {
                assert!(!result.stats.trace.is_empty(), "round {round} {lb:?}: empty trace");
            }
            assert_coherent(&format!("round {round} {lb:?}"), &result.stats);
        }
    }
}

#[test]
fn trace_off_records_nothing() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0ff);
    let inst = random_instance(&mut rng, 8);
    let result = Bsolo::new(BsoloOptions::with_lb(LbMethod::Mis)).solve(&inst);
    assert!(result.stats.trace.is_empty(), "default options must not buffer events");
    let par = ParBsolo::new(BsoloOptions::with_lb(LbMethod::Mis), 4).solve(&inst);
    assert!(par.stats.trace.is_empty(), "parallel default must not buffer events");
}

#[test]
fn parallel_racing_trace_counts_match_stats() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9a8a);
    for round in 0..10 {
        let inst = random_instance(&mut rng, 9);
        for threads in [2usize, 4] {
            // Mis exercises the classic fixed path, Adaptive the ladder
            // (racing mode: the policy may consult wall-clock EMAs, but
            // the event stream must still reconcile with the counters).
            for lb in [LbMethod::Mis, LbMethod::Adaptive] {
                let result = ParBsolo::new(traced(lb), threads).solve(&inst);
                assert_coherent(&format!("round {round} {lb:?} x{threads}"), &result.stats);
            }
        }
    }
}

#[test]
fn deterministic_join_trace_is_reproducible_and_coherent() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xde7);
    for round in 0..8 {
        let inst = random_instance(&mut rng, 9);
        // Adaptive rides along: under det-join the ladder's escalation
        // policy keys on counters and margins only, so the Escalate
        // sequence (window/slack payloads included, via stable_key) must
        // reproduce run-to-run like every other event.
        for lb in [LbMethod::Mis, LbMethod::Adaptive] {
            let mut options = traced(lb);
            options.deterministic_join = true;
            let a = ParBsolo::new(options.clone(), 4).solve(&inst);
            let b = ParBsolo::new(options, 4).solve(&inst);
            assert_coherent(&format!("round {round} {lb:?} det run a"), &a.stats);
            assert_coherent(&format!("round {round} {lb:?} det run b"), &b.stats);
            // The wall-clock-free view of the event sequence — kind, lane
            // and payload in emission order — must be a pure function of
            // instance + options, like every other det-join output.
            let ka: Vec<String> = a.stats.trace.iter().map(Event::stable_key).collect();
            let kb: Vec<String> = b.stats.trace.iter().map(Event::stable_key).collect();
            assert_eq!(
                ka, kb,
                "round {round} {lb:?}: det-join event sequence drifted between runs"
            );
            // Deterministic mode never shares clauses, never reports queue
            // waits, and suppresses scheduler traffic (stealing is disabled,
            // injections go untallied), so those event kinds must be absent
            // outright.
            assert!(
                !a.stats.trace.iter().any(|e| matches!(
                    e.data,
                    TraceEvent::ClausesShared { .. }
                        | TraceEvent::ClausesImported { .. }
                        | TraceEvent::QueueWait { .. }
                        | TraceEvent::Steal { .. }
                        | TraceEvent::Inject { .. }
                )),
                "round {round} {lb:?}: sharing/queue/scheduler events in deterministic mode"
            );
        }
    }
}

#[test]
fn single_thread_parallel_trace_matches_sequential_trace() {
    // One worker delegates to the sequential solver; the event sequence
    // (stable view) must be identical, not merely the counters.
    let mut rng = ChaCha8Rng::seed_from_u64(0x111);
    for round in 0..8 {
        let inst = random_instance(&mut rng, 9);
        let seq = Bsolo::new(traced(LbMethod::Mis)).solve(&inst);
        let par = ParBsolo::new(traced(LbMethod::Mis), 1).solve(&inst);
        let ks: Vec<String> = seq.stats.trace.iter().map(Event::stable_key).collect();
        let kp: Vec<String> = par.stats.trace.iter().map(Event::stable_key).collect();
        assert_eq!(ks, kp, "round {round}: 1-worker trace differs from sequential");
    }
}

#[test]
fn adoption_is_an_adopt_event_not_a_solution() {
    // Seed the cell with the optimum: the solver adopts it (Adopt event,
    // solutions_found untouched) instead of discovering it (Solution).
    let mut b = InstanceBuilder::new();
    let v = b.new_vars(3);
    b.add_clause([v[0].positive(), v[1].positive()]);
    b.add_clause([v[1].positive(), v[2].positive()]);
    b.minimize([(2, v[0].positive()), (3, v[1].positive()), (2, v[2].positive())]);
    let inst = b.build().unwrap();
    let optimum = pbo_core::brute_force(&inst);
    let witness = match optimum {
        pbo_core::BruteForceResult::Optimal { witness, .. } => witness,
        pbo_core::BruteForceResult::Infeasible => unreachable!(),
    };
    let cost = pbo_core::verify_solution(&inst, &witness).unwrap();
    let cell = crate::IncumbentCell::new();
    cell.offer(cost, &witness);
    let result = Bsolo::new(traced(LbMethod::Mis)).solve_with_cell(&inst, Some(&cell));
    let adopts =
        result.stats.trace.iter().filter(|e| matches!(e.data, TraceEvent::Adopt { .. })).count();
    assert!(adopts >= 1, "adoption must be traced");
    assert_coherent("adoption", &result.stats);
}
