//! Solver configuration: lower-bound method, branching, cuts, budgets.

use std::time::Duration;

/// Which lower-bound estimation procedure bsolo uses (Table 1 columns).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum LbMethod {
    /// No estimation: prune on path cost only ("plain").
    None,
    /// Greedy maximum independent set of constraints ("MIS").
    Mis,
    /// Lagrangian relaxation by subgradient ascent ("LGR").
    Lagrangian,
    /// Linear-programming relaxation by dual simplex ("LPR").
    #[default]
    Lpr,
    /// Adaptive bound ladder: run the cheap Lagrangian rung at every
    /// gated node and escalate to the LP relaxation only when the cheap
    /// margin lands inside an online escalation window below the
    /// incumbent (or on a deterministic probe cadence). The reported
    /// bound is the max of the rungs actually run, so it is as sound as
    /// its strongest member.
    Adaptive,
}

impl LbMethod {
    /// Short name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            LbMethod::None => "plain",
            LbMethod::Mis => "mis",
            LbMethod::Lagrangian => "lgr",
            LbMethod::Lpr => "lpr",
            LbMethod::Adaptive => "adaptive",
        }
    }
}

/// How the residual subproblem handed to the lower-bound procedure is
/// maintained across search nodes.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ResidualMode {
    /// Rebuild the residual problem from scratch at every bound
    /// computation — O(instance size) per node. The seed behaviour, kept
    /// as the differential-testing oracle and for ablation.
    Rebuild,
    /// Maintain the residual problem incrementally along the trail
    /// (`pbo_bounds::ResidualState`): O(Δ) per assignment/backjump and
    /// O(active constraints) per view.
    #[default]
    Incremental,
}

impl ResidualMode {
    /// Short name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            ResidualMode::Rebuild => "rebuild",
            ResidualMode::Incremental => "incremental",
        }
    }
}

/// Branching variable selection.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Branching {
    /// VSIDS activity (Chaff), the SAT default.
    Vsids,
    /// LP-guided (sec. 5): branch on the fractional LP variable closest
    /// to 0.5, VSIDS tie-break; falls back to VSIDS when no LP solution
    /// is available. Only effective together with [`LbMethod::Lpr`].
    #[default]
    LpGuided,
}

/// How the portfolio driver combines the stochastic local search with
/// the exact branch-and-bound (see [`crate::Portfolio`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum SolveStrategy {
    /// Branch-and-bound only — the paper's solver, no local search.
    Exact,
    /// Sequential portfolio: local search runs first under a small
    /// budget, its best verified solution seeds the upper bound (and the
    /// eq. 10 cuts) of the branch-and-bound. Deterministic given a
    /// deterministic LS budget; the default for anytime solving.
    #[default]
    LsSeeded,
    /// Concurrent portfolio: local search races the branch-and-bound on
    /// its own `std::thread`, incumbents flowing both ways through the
    /// shared cell for the whole solve.
    Concurrent,
}

impl SolveStrategy {
    /// Short name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            SolveStrategy::Exact => "exact",
            SolveStrategy::LsSeeded => "ls-seeded",
            SolveStrategy::Concurrent => "concurrent",
        }
    }
}

/// Which cube scheduler a parallel solve ([`crate::ParBsolo`]) uses to
/// hand subtrees to workers.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Work stealing: each worker owns a Chase–Lev-style deque (LIFO
    /// push/pop keeps re-split arms hot in the owner's cache; thieves
    /// steal the oldest — shallowest, hence largest — cube), the initial
    /// frontier sits in a lock-free global injector, and termination is
    /// an atomic pending count. The steady-state owner pop never takes a
    /// lock; the default since frontiers grew past ~1k cubes.
    #[default]
    WorkStealing,
    /// The PR 5/6 central `Mutex<VecDeque>` + `Condvar` queue, kept as
    /// the in-process A/B baseline for the `queue_contention` microbench
    /// and as the contention-free fallback reference.
    MutexDeque,
}

impl SchedulerKind {
    /// Short name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::WorkStealing => "work-stealing",
            SchedulerKind::MutexDeque => "mutex-deque",
        }
    }
}

/// Resource budget for a solve. All limits are optional; an empty budget
/// runs to completion.
#[derive(Copy, Clone, Debug, Default)]
pub struct Budget {
    /// Wall-clock limit.
    pub time: Option<Duration>,
    /// Conflict limit.
    pub conflicts: Option<u64>,
    /// Decision limit.
    pub decisions: Option<u64>,
}

impl Budget {
    /// No limits.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Wall-clock limit only.
    pub fn time_limit(d: Duration) -> Budget {
        Budget { time: Some(d), ..Budget::default() }
    }

    /// Conflict limit only (deterministic budget for tests/benches).
    pub fn conflict_limit(n: u64) -> Budget {
        Budget { conflicts: Some(n), ..Budget::default() }
    }

    /// Returns `true` if any limit is exhausted.
    pub fn exhausted(&self, elapsed: Duration, conflicts: u64, decisions: u64) -> bool {
        if let Some(t) = self.time {
            if elapsed >= t {
                return true;
            }
        }
        if let Some(c) = self.conflicts {
            if conflicts >= c {
                return true;
            }
        }
        if let Some(d) = self.decisions {
            if decisions >= d {
                return true;
            }
        }
        false
    }
}

/// Configuration of the bsolo branch-and-bound solver.
#[derive(Clone, Debug)]
pub struct BsoloOptions {
    /// Lower-bound procedure (sec. 3).
    pub lb_method: LbMethod,
    /// Branching heuristic (sec. 5).
    pub branching: Branching,
    /// Learn bound-conflict clauses and backtrack non-chronologically
    /// (sec. 4). When disabled, bound conflicts backtrack chronologically
    /// — the ablation of the paper's central claim.
    pub bound_conflict_learning: bool,
    /// Add the knapsack cut `sum c_j x_j <= upper - 1` on each improved
    /// solution (eq. 10).
    pub knapsack_cuts: bool,
    /// Infer cost cuts from cardinality constraints (eqs. 11–13).
    pub cardinality_cuts: bool,
    /// Probe variables during preprocessing to detect necessary
    /// assignments (sec. 5 / Savelsbergh-style).
    pub probing: bool,
    /// Covering-style simplification before the search: duplicate
    /// removal and clause subsumption (the paper applies these on the
    /// synthesis benchmark set).
    pub simplify: bool,
    /// Compute the lower bound every `lb_frequency` decisions (1 = every
    /// node, the paper's configuration).
    pub lb_frequency: u32,
    /// How the residual subproblem is maintained between bound
    /// computations.
    pub residual_mode: ResidualMode,
    /// Fold the learned cost cuts (eq. 10 / eqs. 11–13) and the most
    /// active short learned clauses into the residual problem as dynamic
    /// rows on each incumbent re-root, so every bounding procedure
    /// computes against the relaxation the solver actually knows.
    ///
    /// The row region rides the cut re-root, so this has no effect when
    /// [`BsoloOptions::knapsack_cuts`] is disabled (no re-root happens).
    pub dynamic_rows: bool,
    /// Run the MIS bound's implied-literal closure and reduced-cost
    /// fixing (and allow MIS to bound pre-incumbent, where its closure
    /// can prove infeasibility beyond single-row propagation).
    pub mis_implied: bool,
    /// Luby restart base interval in conflicts (`None` disables
    /// restarts). On each restart the dynamic-row region's promoted
    /// clauses are re-exported from the learned-clause database
    /// (LBD-best selection), so the bounds keep seeing fresh structure
    /// between incumbents.
    pub restart_base: Option<u64>,
    /// Share cube-independent learned clauses across the workers of a
    /// parallel solve ([`crate::ParBsolo`]): clauses whose derivation
    /// never touched a cube assumption (taint-tracked by the engine) are
    /// published to an epoch-stamped pool, polled at restarts and cost
    /// re-roots, and installed into peers' engines and dynamic-row
    /// regions. No effect on sequential solves or one-worker runs.
    pub share_clauses: bool,
    /// A parallel worker that has spent this many conflicts on one cube
    /// re-splits its remaining subtree: the complement cubes of its
    /// current decision prefix go back to the queue and the worker
    /// continues on the deepened cube, keeping the frontier
    /// self-balancing (`None` disables re-splitting).
    pub resplit_conflicts: Option<u64>,
    /// Initial cube-frontier target of a parallel solve, overriding the
    /// default `threads × 1`. The deep-split stress harness raises this
    /// into the thousands so the scheduler's injector, overflow lane and
    /// steal paths are all exercised under a dense frontier; leave
    /// `None` for the self-balancing default (a small frontier plus
    /// demand-driven re-splits).
    pub split_target: Option<usize>,
    /// Cube scheduler of a parallel solve. Identical solve semantics
    /// either way (same cubes, same partition invariant); only the
    /// hand-off machinery differs. See [`SchedulerKind`].
    pub scheduler: SchedulerKind,
    /// Deterministic parallel mode: clause sharing is off, workers
    /// re-split on a fixed conflict schedule regardless of queue
    /// pressure, each subtree runs against a private incumbent snapshot,
    /// and cube results are reduced in a fixed (cube-lexicographic)
    /// order — so a parallel run's status, cost, model and merged
    /// counters are a pure function of instance + options, independent
    /// of thread scheduling. Costs some pruning (no cross-worker
    /// incumbent races); intended for parity suites and debugging.
    pub deterministic_join: bool,
    /// Record structured telemetry events (decisions, conflicts, bound
    /// calls, incumbents, cube lifecycle) into per-worker buffers merged
    /// into [`crate::SolverStats::trace`] at join. Off by default: the
    /// disabled emission path is a single branch per site and
    /// allocation-free (see `pbo-trace`).
    pub trace: bool,
    /// Resource budget.
    pub budget: Budget,
    /// Cooperative cancellation token. When set, the solver derives a
    /// deadline from [`Budget::time`] at solve start and threads the
    /// token into every long-running layer — the engine's propagation
    /// loop, the LP relaxation's pivot loop, local-search steps and
    /// scheduler parking — so a cancel (external, deadline, or memory
    /// ceiling) tears the solve down in bounded time with the best
    /// verified incumbent intact and `SolverStats::cancelled` set.
    /// `None` keeps the seed behaviour: the budget is only checked
    /// between search-loop iterations, which an expensive LP solve can
    /// overshoot.
    pub cancel: Option<pbo_core::CancelToken>,
}

impl Default for BsoloOptions {
    fn default() -> BsoloOptions {
        BsoloOptions {
            lb_method: LbMethod::Lpr,
            branching: Branching::LpGuided,
            bound_conflict_learning: true,
            knapsack_cuts: true,
            cardinality_cuts: true,
            probing: true,
            simplify: true,
            lb_frequency: 1,
            residual_mode: ResidualMode::Incremental,
            dynamic_rows: true,
            mis_implied: true,
            restart_base: Some(2048),
            share_clauses: true,
            resplit_conflicts: Some(256),
            split_target: None,
            scheduler: SchedulerKind::WorkStealing,
            deterministic_join: false,
            trace: false,
            budget: Budget::unlimited(),
            cancel: None,
        }
    }
}

impl BsoloOptions {
    /// The configuration matching one Table 1 column.
    pub fn with_lb(lb_method: LbMethod) -> BsoloOptions {
        let branching = if matches!(lb_method, LbMethod::Lpr | LbMethod::Adaptive) {
            Branching::LpGuided
        } else {
            Branching::Vsids
        };
        BsoloOptions { lb_method, branching, ..BsoloOptions::default() }
    }

    /// Builder-style budget override.
    pub fn budget(mut self, budget: Budget) -> BsoloOptions {
        self.budget = budget;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_exhaustion() {
        let b = Budget::conflict_limit(10);
        assert!(!b.exhausted(Duration::ZERO, 9, 100));
        assert!(b.exhausted(Duration::ZERO, 10, 0));
        let t = Budget::time_limit(Duration::from_millis(5));
        assert!(t.exhausted(Duration::from_millis(5), 0, 0));
        assert!(!Budget::unlimited().exhausted(Duration::from_secs(3600), u64::MAX - 1, 1));
    }

    #[test]
    fn with_lb_pairs_branching() {
        assert_eq!(BsoloOptions::with_lb(LbMethod::Lpr).branching, Branching::LpGuided);
        assert_eq!(BsoloOptions::with_lb(LbMethod::Mis).branching, Branching::Vsids);
        assert_eq!(BsoloOptions::with_lb(LbMethod::Adaptive).branching, Branching::LpGuided);
    }

    #[test]
    fn lb_names() {
        assert_eq!(LbMethod::None.name(), "plain");
        assert_eq!(LbMethod::Lpr.name(), "lpr");
        assert_eq!(LbMethod::Adaptive.name(), "adaptive");
    }

    #[test]
    fn strategy_names_and_default() {
        assert_eq!(SolveStrategy::default(), SolveStrategy::LsSeeded);
        assert_eq!(SolveStrategy::Exact.name(), "exact");
        assert_eq!(SolveStrategy::LsSeeded.name(), "ls-seeded");
        assert_eq!(SolveStrategy::Concurrent.name(), "concurrent");
    }

    #[test]
    fn work_stealing_is_the_default_scheduler() {
        assert_eq!(BsoloOptions::default().scheduler, SchedulerKind::WorkStealing);
        assert_eq!(SchedulerKind::WorkStealing.name(), "work-stealing");
        assert_eq!(SchedulerKind::MutexDeque.name(), "mutex-deque");
    }

    #[test]
    fn incremental_residual_is_the_default() {
        assert_eq!(BsoloOptions::default().residual_mode, ResidualMode::Incremental);
        assert_eq!(ResidualMode::default(), ResidualMode::Incremental);
        assert_eq!(ResidualMode::Rebuild.name(), "rebuild");
        assert_eq!(ResidualMode::Incremental.name(), "incremental");
    }
}
