//! Probing-based preprocessing (sec. 5 of the paper).
//!
//! For each variable, both polarities are tentatively decided and
//! propagated:
//!
//! * a failed literal (propagation conflict) makes its negation a
//!   *necessary assignment*, asserted at the root;
//! * a literal implied by **both** branches is likewise necessary
//!   (the classic probing/strengthening rule of Savelsbergh and
//!   Dixon–Ginsberg that the paper adopts);
//! * both branches failing proves infeasibility.
//!
//! Probing works directly on the search engine so the detected
//! assignments immediately strengthen the subsequent search.

use pbo_core::{Instance, Lit, Value, Var};
use pbo_engine::{Engine, Reason};

/// Result of the probing pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProbeOutcome {
    /// Probing proved the instance infeasible.
    Infeasible,
    /// Probing finished; `forced` root assignments were derived.
    Done {
        /// Number of necessary assignments asserted at the root.
        forced: usize,
    },
}

/// Upper limit on instance size for probing (a full pass is quadratic in
/// the worst case).
const PROBE_VAR_LIMIT: usize = 2_000;

/// Runs one probing pass over all variables. The engine must be at
/// decision level 0 with the instance's constraints loaded.
pub fn probe(instance: &Instance, engine: &mut Engine) -> ProbeOutcome {
    debug_assert_eq!(engine.decision_level(), 0);
    if instance.num_vars() > PROBE_VAR_LIMIT {
        return ProbeOutcome::Done { forced: 0 };
    }
    let mut forced = 0usize;
    for v in 0..instance.num_vars() {
        let var = Var::new(v);
        if engine.assignment().value(var) != Value::Unassigned {
            continue;
        }
        // Branch x = 1.
        let (fail_pos, implied_pos) = probe_branch(engine, var.positive());
        // Branch x = 0.
        let (fail_neg, implied_neg) = probe_branch(engine, var.negative());
        match (fail_pos, fail_neg) {
            (true, true) => return ProbeOutcome::Infeasible,
            (true, false) => {
                if !assert_root(engine, var.negative()) {
                    return ProbeOutcome::Infeasible;
                }
                forced += 1;
            }
            (false, true) => {
                if !assert_root(engine, var.positive()) {
                    return ProbeOutcome::Infeasible;
                }
                forced += 1;
            }
            (false, false) => {
                // Literals implied by both branches are necessary.
                for l in implied_pos {
                    if implied_neg.contains(&l)
                        && engine.assignment().lit_value(l) == Value::Unassigned
                    {
                        if !assert_root(engine, l) {
                            return ProbeOutcome::Infeasible;
                        }
                        forced += 1;
                    }
                }
            }
        }
    }
    ProbeOutcome::Done { forced }
}

/// Decides `lit`, propagates, records the implied literals, undoes.
fn probe_branch(engine: &mut Engine, lit: Lit) -> (bool, Vec<Lit>) {
    if engine.assignment().lit_value(lit) != Value::Unassigned {
        // Already decided at root by an earlier probe.
        return (engine.assignment().lit_value(lit) == Value::False, Vec::new());
    }
    let trail_before = engine.trail().len();
    engine.decide(lit);
    let conflict = engine.propagate().is_some();
    let implied: Vec<Lit> =
        if conflict { Vec::new() } else { engine.trail()[trail_before + 1..].to_vec() };
    engine.backjump_to(0);
    (conflict, implied)
}

/// Asserts a literal at the root and propagates. Returns `false` on a
/// root conflict.
fn assert_root(engine: &mut Engine, lit: Lit) -> bool {
    if !engine.enqueue(lit, Reason::None) {
        return false;
    }
    engine.propagate().is_none()
}

/// Covering-style simplification (the paper applies the techniques of
/// Hooker / Villa et al. on the synthesis benchmark set): removes
/// duplicate constraints and clauses subsumed by a shorter clause
/// (`{a, b}` makes `{a, b, c}` redundant). Only clause-class constraints
/// participate in subsumption; general PB rows are kept untouched.
pub fn simplify(instance: &Instance) -> Instance {
    use pbo_core::{ConstraintClass, InstanceBuilder, RelOp};
    use std::collections::BTreeSet;

    let mut clause_sets: Vec<(usize, BTreeSet<Lit>)> = Vec::new();
    for (i, c) in instance.constraints().iter().enumerate() {
        if c.class() == ConstraintClass::Clause {
            clause_sets.push((i, c.terms().iter().map(|t| t.lit).collect()));
        }
    }
    // Shorter clauses first: a clause can only be subsumed by a shorter
    // or equal one.
    clause_sets.sort_by_key(|(_, s)| s.len());
    let mut kept_sets: Vec<&BTreeSet<Lit>> = Vec::new();
    let mut drop = vec![false; instance.num_constraints()];
    for (i, set) in &clause_sets {
        if kept_sets.iter().any(|k| k.is_subset(set)) {
            drop[*i] = true;
        } else {
            kept_sets.push(set);
        }
    }
    // Duplicate non-clause constraints.
    let mut seen: std::collections::HashSet<&pbo_core::PbConstraint> =
        std::collections::HashSet::new();
    for (i, c) in instance.constraints().iter().enumerate() {
        if !drop[i] && !seen.insert(c) {
            drop[i] = true;
        }
    }
    if drop.iter().all(|&d| !d) {
        return instance.clone();
    }
    let mut b = InstanceBuilder::with_vars(instance.num_vars());
    b.name(instance.name().to_string());
    for (i, c) in instance.constraints().iter().enumerate() {
        if drop[i] {
            continue;
        }
        b.add_linear(c.terms().iter().map(|t| (t.coeff, t.lit)), RelOp::Ge, c.rhs());
    }
    if let Some(obj) = instance.objective() {
        b.minimize_with_offset(obj.terms().iter().copied(), obj.offset());
    }
    b.build().expect("simplification preserves buildability")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::{InstanceBuilder, PbConstraint};

    fn engine_for(inst: &Instance) -> Engine {
        let mut e = Engine::new(inst.num_vars());
        for c in inst.constraints() {
            e.add_constraint(c).unwrap();
        }
        e
    }

    #[test]
    fn failed_literal_is_asserted() {
        // x1 -> x2 and x1 -> ~x2 : x1 must be false.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_implies(v[0].positive(), v[1].positive());
        b.add_implies(v[0].positive(), v[1].negative());
        let inst = b.build().unwrap();
        let mut e = engine_for(&inst);
        match probe(&inst, &mut e) {
            ProbeOutcome::Done { forced } => assert!(forced >= 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(e.assignment().is_true(v[0].negative()));
    }

    #[test]
    fn both_branches_failing_is_infeasible() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        // x1 <-> x2 and x1 <-> ~x2 is unsatisfiable but propagation alone
        // does not see it at the root.
        b.add_implies(v[0].positive(), v[1].positive());
        b.add_implies(v[1].positive(), v[0].positive());
        b.add_implies(v[0].positive(), v[1].negative());
        b.add_implies(v[1].negative(), v[0].positive());
        let inst = b.build().unwrap();
        let mut e = engine_for(&inst);
        assert_eq!(probe(&inst, &mut e), ProbeOutcome::Infeasible);
    }

    #[test]
    fn common_implication_detected() {
        // (x1 -> x3) and (~x1 -> x3): x3 necessary.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_implies(v[0].positive(), v[2].positive());
        b.add_implies(v[0].negative(), v[2].positive());
        let inst = b.build().unwrap();
        let mut e = engine_for(&inst);
        match probe(&inst, &mut e) {
            ProbeOutcome::Done { forced } => assert!(forced >= 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(e.assignment().is_true(v[2].positive()));
    }

    #[test]
    fn probing_preserves_satisfiability() {
        use pbo_core::brute_force;
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x9e);
        for round in 0..30 {
            let n = rng.gen_range(3..8);
            let mut b = InstanceBuilder::new();
            let vars = b.new_vars(n);
            for _ in 0..rng.gen_range(2..8) {
                let i = rng.gen_range(0..n);
                let mut j = rng.gen_range(0..n);
                while j == i {
                    j = rng.gen_range(0..n);
                }
                b.add_clause([vars[i].lit(rng.gen_bool(0.5)), vars[j].lit(rng.gen_bool(0.5))]);
            }
            let inst = b.build().unwrap();
            let sat = brute_force(&inst).cost().is_some();
            let mut e = engine_for(&inst);
            let outcome = probe(&inst, &mut e);
            if outcome == ProbeOutcome::Infeasible {
                assert!(!sat, "round {round}: probing declared SAT instance infeasible");
            } else {
                // Forced literals must hold in *some* optimal model; at
                // minimum they may not contradict satisfiability.
                if sat {
                    // Extend the root assignment by brute force.
                    let fixed: Vec<(usize, bool)> =
                        e.assignment().iter_assigned().map(|(v, val)| (v.index(), val)).collect();
                    let mut found = false;
                    'outer: for mask in 0u64..(1 << n) {
                        let vals: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
                        for &(i, val) in &fixed {
                            if vals[i] != val {
                                continue 'outer;
                            }
                        }
                        if inst.is_feasible(&vals) {
                            found = true;
                            break;
                        }
                    }
                    assert!(found, "round {round}: forced literals exclude all models");
                }
            }
        }
    }

    #[test]
    fn simplify_drops_subsumed_clauses() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[0].positive(), v[1].positive(), v[2].positive()]); // subsumed
        b.add_clause([v[2].negative(), v[0].positive()]);
        b.add_clause([v[2].negative(), v[0].positive()]); // duplicate
        b.minimize([(2, v[0].positive()), (3, v[1].positive())]);
        let inst = b.build().unwrap();
        let simplified = simplify(&inst);
        assert_eq!(simplified.num_constraints(), 2);
        // Feasible sets identical.
        for mask in 0u8..8 {
            let vals = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            assert_eq!(inst.is_feasible(&vals), simplified.is_feasible(&vals), "{vals:?}");
            if inst.is_feasible(&vals) {
                assert_eq!(inst.cost_of(&vals), simplified.cost_of(&vals));
            }
        }
    }

    #[test]
    fn simplify_preserves_objective_offset() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[0].positive(), v[1].positive()]); // duplicate forces rebuild
        b.minimize([(3, v[0].negative()), (2, v[1].positive())]); // offset after normalization
        let inst = b.build().unwrap();
        let simplified = simplify(&inst);
        assert_eq!(simplified.num_constraints(), 1);
        assert_eq!(inst.objective().unwrap().offset(), simplified.objective().unwrap().offset());
        for mask in 0u8..4 {
            let vals = [(mask & 1) != 0, (mask & 2) != 0];
            assert_eq!(inst.cost_of(&vals), simplified.cost_of(&vals));
        }
    }

    #[test]
    fn simplify_keeps_general_pb_rows() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_linear(
            vec![(2, v[0].positive()), (1, v[1].positive()), (1, v[2].positive())],
            pbo_core::RelOp::Ge,
            2,
        );
        b.add_clause([v[0].positive(), v[1].positive()]);
        let inst = b.build().unwrap();
        // The clause is implied by nothing clause-shaped; both rows stay.
        assert_eq!(simplify(&inst).num_constraints(), 2);
    }

    #[test]
    fn simplify_identity_when_nothing_to_do() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        let inst = b.build().unwrap();
        assert_eq!(simplify(&inst), inst);
    }

    #[test]
    fn pb_constraints_probed_too() {
        // 2x1 + x2 + x3 >= 3 with x1 -> ~x2: probing x1=0 gives conflict
        // (needs x2+x3 >= 3, impossible)... actually 1+1 = 2 < 3: conflict.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_linear(
            vec![(2, v[0].positive()), (1, v[1].positive()), (1, v[2].positive())],
            pbo_core::RelOp::Ge,
            3,
        );
        let inst = b.build().unwrap();
        let mut e = engine_for(&inst);
        let _ = probe(&inst, &mut e);
        // x1 = 0 makes the constraint unsatisfiable -> x1 forced true.
        assert!(e.assignment().is_true(v[0].positive()));
        drop(PbConstraint::clause([v[0].positive()]));
    }
}
