//! Cross-validation of every solver configuration against the exhaustive
//! reference solver, plus behavioural tests of the paper's mechanisms.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use pbo_core::{brute_force, Instance, InstanceBuilder, Lit, RelOp};

use crate::{Bsolo, BsoloOptions, Budget, LbMethod, LinearSearch, MilpSolver, SolveStatus};

/// Random optimization instance with clauses, cardinality and general PB
/// constraints.
fn random_instance(rng: &mut ChaCha8Rng, n_max: usize) -> Instance {
    let n = rng.gen_range(3..=n_max);
    let mut b = InstanceBuilder::new();
    let vars = b.new_vars(n);
    let m = rng.gen_range(2..10);
    for _ in 0..m {
        let k = rng.gen_range(1..=3.min(n));
        let mut idxs: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            idxs.swap(i, j);
        }
        let terms: Vec<(i64, Lit)> = idxs[..k]
            .iter()
            .map(|&i| (rng.gen_range(1..4), vars[i].lit(rng.gen_bool(0.75))))
            .collect();
        let maxw: i64 = terms.iter().map(|t| t.0).sum();
        let rhs = rng.gen_range(1..=maxw);
        b.add_linear(terms, RelOp::Ge, rhs);
    }
    if rng.gen_bool(0.9) {
        b.minimize(vars.iter().map(|v| (rng.gen_range(0..6), v.lit(rng.gen_bool(0.85)))));
    }
    b.build().unwrap()
}

fn check_result(
    inst: &Instance,
    got: &crate::SolveResult,
    expected: &pbo_core::BruteForceResult,
    label: &str,
) {
    match expected.cost() {
        Some(opt) => {
            assert_eq!(got.status, SolveStatus::Optimal, "{label}: expected optimal");
            assert_eq!(got.best_cost, Some(opt), "{label}: wrong optimum");
            let model = got.best_assignment.as_ref().expect("model present");
            assert!(inst.is_feasible(model), "{label}: infeasible model");
            assert_eq!(inst.cost_of(model), opt, "{label}: model cost mismatch");
        }
        None => {
            assert_eq!(got.status, SolveStatus::Infeasible, "{label}: expected infeasible");
            assert!(got.best_cost.is_none(), "{label}: phantom solution");
        }
    }
}

#[test]
fn bsolo_lpr_matches_brute_force() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xb0110);
    for round in 0..60 {
        let inst = random_instance(&mut rng, 9);
        let expected = brute_force(&inst);
        let got = Bsolo::with_lb(LbMethod::Lpr).solve(&inst);
        check_result(&inst, &got, &expected, &format!("lpr round {round}"));
    }
}

#[test]
fn bsolo_mis_matches_brute_force() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xb0111);
    for round in 0..60 {
        let inst = random_instance(&mut rng, 9);
        let expected = brute_force(&inst);
        let got = Bsolo::with_lb(LbMethod::Mis).solve(&inst);
        check_result(&inst, &got, &expected, &format!("mis round {round}"));
    }
}

#[test]
fn bsolo_lagrangian_matches_brute_force() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xb0112);
    for round in 0..60 {
        let inst = random_instance(&mut rng, 9);
        let expected = brute_force(&inst);
        let got = Bsolo::with_lb(LbMethod::Lagrangian).solve(&inst);
        check_result(&inst, &got, &expected, &format!("lgr round {round}"));
    }
}

#[test]
fn bsolo_plain_matches_brute_force() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xb0113);
    for round in 0..60 {
        let inst = random_instance(&mut rng, 8);
        let expected = brute_force(&inst);
        let got = Bsolo::with_lb(LbMethod::None).solve(&inst);
        check_result(&inst, &got, &expected, &format!("plain round {round}"));
    }
}

#[test]
fn linear_search_matches_brute_force() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xb0114);
    for round in 0..60 {
        let inst = random_instance(&mut rng, 8);
        let expected = brute_force(&inst);
        let got = LinearSearch::pbs_like(Budget::unlimited()).solve(&inst);
        check_result(&inst, &got, &expected, &format!("pbs round {round}"));
        let got = LinearSearch::galena_like(Budget::unlimited()).solve(&inst);
        check_result(&inst, &got, &expected, &format!("galena round {round}"));
    }
}

#[test]
fn milp_matches_brute_force() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xb0115);
    for round in 0..60 {
        let inst = random_instance(&mut rng, 8);
        let expected = brute_force(&inst);
        let got = MilpSolver::new(Budget::unlimited()).solve(&inst);
        check_result(&inst, &got, &expected, &format!("milp round {round}"));
    }
}

#[test]
fn ablation_toggles_preserve_correctness() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xb0116);
    for round in 0..40 {
        let inst = random_instance(&mut rng, 8);
        let expected = brute_force(&inst);
        for (label, options) in [
            (
                "no-bound-learning",
                BsoloOptions {
                    bound_conflict_learning: false,
                    ..BsoloOptions::with_lb(LbMethod::Lpr)
                },
            ),
            (
                "no-cuts",
                BsoloOptions {
                    knapsack_cuts: false,
                    cardinality_cuts: false,
                    ..BsoloOptions::with_lb(LbMethod::Lpr)
                },
            ),
            ("no-probing", BsoloOptions { probing: false, ..BsoloOptions::with_lb(LbMethod::Mis) }),
            (
                "vsids-branching",
                BsoloOptions {
                    branching: crate::Branching::Vsids,
                    ..BsoloOptions::with_lb(LbMethod::Lpr)
                },
            ),
            (
                "lb-every-4",
                BsoloOptions { lb_frequency: 4, ..BsoloOptions::with_lb(LbMethod::Lpr) },
            ),
            (
                "no-dynamic-rows",
                BsoloOptions { dynamic_rows: false, ..BsoloOptions::with_lb(LbMethod::Lpr) },
            ),
            (
                "dynamic-rows-mis",
                BsoloOptions { dynamic_rows: true, ..BsoloOptions::with_lb(LbMethod::Mis) },
            ),
            (
                "plain-mis",
                BsoloOptions {
                    mis_implied: false,
                    dynamic_rows: false,
                    ..BsoloOptions::with_lb(LbMethod::Mis)
                },
            ),
            (
                "dynamic-rows-lgr",
                BsoloOptions { dynamic_rows: true, ..BsoloOptions::with_lb(LbMethod::Lagrangian) },
            ),
            (
                "dynamic-rows-rebuild",
                BsoloOptions {
                    residual_mode: crate::ResidualMode::Rebuild,
                    ..BsoloOptions::with_lb(LbMethod::Mis)
                },
            ),
        ] {
            let got = Bsolo::new(options).solve(&inst);
            check_result(&inst, &got, &expected, &format!("{label} round {round}"));
        }
    }
}

#[test]
fn satisfaction_instances_all_solvers() {
    // Pure PB-SAT (acc-style): no objective.
    let mut rng = ChaCha8Rng::seed_from_u64(0xb0117);
    for round in 0..30 {
        let n = rng.gen_range(4..9);
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(n);
        for _ in 0..rng.gen_range(3..10) {
            let k = rng.gen_range(2..=3.min(n));
            let mut idxs: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                idxs.swap(i, j);
            }
            b.add_at_least(
                rng.gen_range(1..=k as i64),
                idxs[..k].iter().map(|&i| vars[i].lit(rng.gen_bool(0.6))),
            );
        }
        let inst = b.build().unwrap();
        let sat = brute_force(&inst).cost().is_some();
        for (label, result) in [
            ("bsolo", Bsolo::with_lb(LbMethod::Lpr).solve(&inst)),
            ("pbs", LinearSearch::pbs_like(Budget::unlimited()).solve(&inst)),
            ("milp", MilpSolver::new(Budget::unlimited()).solve(&inst)),
        ] {
            if sat {
                assert_eq!(
                    result.status,
                    SolveStatus::Optimal,
                    "{label} round {round}: expected SAT"
                );
                let model = result.best_assignment.as_ref().unwrap();
                assert!(inst.is_feasible(model), "{label} round {round}");
            } else {
                assert_eq!(
                    result.status,
                    SolveStatus::Infeasible,
                    "{label} round {round}: expected UNSAT"
                );
            }
        }
    }
}

#[test]
fn bound_conflicts_backjump_non_chronologically() {
    // A structured instance where early cheap decisions force the bound
    // conflict while later free variables do not participate: the solver
    // must report backjump distance above the pure-conflict count.
    let mut b = InstanceBuilder::new();
    let costed = b.new_vars(6);
    let free = b.new_vars(8);
    // Two disjoint "expensive" covers.
    b.add_at_least(2, costed[..3].iter().map(|v| v.positive()));
    b.add_at_least(2, costed[3..].iter().map(|v| v.positive()));
    // Free variables only lightly constrained.
    for w in free.windows(2) {
        b.add_clause([w[0].positive(), w[1].positive()]);
    }
    b.minimize(costed.iter().enumerate().map(|(i, v)| ((i + 1) as i64, v.positive())));
    let inst = b.build().unwrap();
    let result = Bsolo::with_lb(LbMethod::Lpr).solve(&inst);
    assert!(result.is_optimal());
    // Optimum: 1+2 from the first cover, 4+5 from the second = 12.
    assert_eq!(result.best_cost, Some(12));
}

#[test]
fn budget_exhaustion_reports_incumbent() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xb0118);
    // A larger instance with a tiny conflict budget: we should get
    // Feasible-or-Unknown, never a wrong Optimal.
    let n = 18;
    let mut b = InstanceBuilder::new();
    let vars = b.new_vars(n);
    for i in 0..n {
        let j = (i + 1) % n;
        let k = (i + 7) % n;
        b.add_clause([vars[i].positive(), vars[j].positive(), vars[k].positive()]);
    }
    b.minimize(vars.iter().map(|v| (rng.gen_range(1..10), v.positive())));
    let inst = b.build().unwrap();
    let opt = Bsolo::with_lb(LbMethod::Lpr).solve(&inst);
    assert!(opt.is_optimal());
    let budgeted =
        Bsolo::new(BsoloOptions::with_lb(LbMethod::None).budget(Budget::conflict_limit(3)))
            .solve(&inst);
    match budgeted.status {
        SolveStatus::Feasible => {
            assert!(budgeted.best_cost.unwrap() >= opt.best_cost.unwrap());
        }
        SolveStatus::Unknown => {}
        SolveStatus::Optimal => {
            // Legitimate if the optimum was proven within 3 conflicts.
            assert_eq!(budgeted.best_cost, opt.best_cost);
        }
        SolveStatus::Infeasible => panic!("instance is satisfiable"),
    }
}

#[test]
fn lpr_prunes_more_than_plain() {
    // On a cost-dominated instance the LPR configuration must explore
    // fewer decisions than plain - the paper's central claim.
    let mut rng = ChaCha8Rng::seed_from_u64(0xb0119);
    let n = 14;
    let mut b = InstanceBuilder::new();
    let vars = b.new_vars(n);
    for _ in 0..10 {
        let mut idxs: Vec<usize> = (0..n).collect();
        for i in 0..4 {
            let j = rng.gen_range(i..n);
            idxs.swap(i, j);
        }
        b.add_at_least(2, idxs[..4].iter().map(|&i| vars[i].positive()));
    }
    b.minimize(vars.iter().map(|v| (rng.gen_range(5..20), v.positive())));
    let inst = b.build().unwrap();
    let lpr = Bsolo::with_lb(LbMethod::Lpr).solve(&inst);
    let plain = Bsolo::with_lb(LbMethod::None).solve(&inst);
    assert!(lpr.is_optimal() && plain.is_optimal());
    assert_eq!(lpr.best_cost, plain.best_cost);
    assert!(
        lpr.stats.decisions <= plain.stats.decisions,
        "LPR ({}) should not need more decisions than plain ({})",
        lpr.stats.decisions,
        plain.stats.decisions
    );
    assert!(lpr.stats.bound_conflicts > 0, "LPR should prune via bound conflicts");
}

#[test]
fn infeasible_instances_detected() {
    let mut b = InstanceBuilder::new();
    let v = b.new_vars(3);
    // Pigeonhole 3->2 again, with an objective on top.
    b.add_at_least(2, [v[0].positive(), v[1].positive()]);
    b.add_at_least(2, [v[0].negative(), v[1].negative()]);
    b.minimize([(1, v[2].positive())]);
    let inst = b.build().unwrap();
    for (label, result) in [
        ("bsolo-lpr", Bsolo::with_lb(LbMethod::Lpr).solve(&inst)),
        ("bsolo-plain", Bsolo::with_lb(LbMethod::None).solve(&inst)),
        ("pbs", LinearSearch::pbs_like(Budget::unlimited()).solve(&inst)),
        ("milp", MilpSolver::new(Budget::unlimited()).solve(&inst)),
    ] {
        assert_eq!(result.status, SolveStatus::Infeasible, "{label}");
    }
}

#[test]
fn zero_cost_objective_behaves_like_sat() {
    let mut b = InstanceBuilder::new();
    let v = b.new_vars(2);
    b.add_clause([v[0].positive(), v[1].positive()]);
    b.minimize(Vec::<(i64, Lit)>::new());
    let inst = b.build().unwrap();
    let result = Bsolo::with_lb(LbMethod::Lpr).solve(&inst);
    assert!(result.is_optimal());
    assert_eq!(result.best_cost, Some(0));
}

#[test]
fn incremental_and_rebuild_residual_modes_are_equivalent() {
    // The tentpole invariant: the incrementally maintained residual state
    // must drive the search through exactly the same trajectory as the
    // per-node rebuild. The solver is deterministic, so every effort
    // counter — not just the optimum — must agree.
    use crate::ResidualMode;
    let mut rng = ChaCha8Rng::seed_from_u64(0x1234);
    for lb in [LbMethod::Mis, LbMethod::Lagrangian, LbMethod::Lpr] {
        for round in 0..25 {
            let inst = random_instance(&mut rng, 10);
            let incremental = Bsolo::new(BsoloOptions {
                residual_mode: ResidualMode::Incremental,
                ..BsoloOptions::with_lb(lb)
            })
            .solve(&inst);
            let rebuild = Bsolo::new(BsoloOptions {
                residual_mode: ResidualMode::Rebuild,
                ..BsoloOptions::with_lb(lb)
            })
            .solve(&inst);
            let label = format!("{lb:?} round {round}");
            assert_eq!(incremental.status, rebuild.status, "{label}: status");
            assert_eq!(incremental.best_cost, rebuild.best_cost, "{label}: cost");
            assert_eq!(incremental.best_assignment, rebuild.best_assignment, "{label}: model");
            assert_eq!(incremental.stats.decisions, rebuild.stats.decisions, "{label}: decisions");
            assert_eq!(incremental.stats.conflicts, rebuild.stats.conflicts, "{label}: conflicts");
            assert_eq!(incremental.stats.lb_calls, rebuild.stats.lb_calls, "{label}: lb calls");
            assert_eq!(
                incremental.stats.bound_conflicts, rebuild.stats.bound_conflicts,
                "{label}: bound conflicts"
            );
            assert_eq!(
                incremental.stats.lb_margin_sum, rebuild.stats.lb_margin_sum,
                "{label}: bound strength"
            );
        }
    }
}

#[test]
fn lpr_farkas_prunes_before_first_incumbent() {
    // A cost-dominated covering instance where deep subtrees become
    // infeasible: LPR must be allowed to bound (and prune) before any
    // solution exists. The pre-incumbent calls report upper = None, so
    // any pruning they do is infeasibility-only.
    let mut b = InstanceBuilder::new();
    let v = b.new_vars(6);
    // Exactly-one style pair: x1 + x2 >= 1 and ~x1 + ~x2 >= 1.
    b.add_clause([v[0].positive(), v[1].positive()]);
    b.add_clause([v[0].negative(), v[1].negative()]);
    b.add_at_least(2, [v[2].positive(), v[3].positive(), v[4].positive()]);
    b.add_clause([v[4].positive(), v[5].positive()]);
    b.minimize(v.iter().enumerate().map(|(i, x)| ((i + 1) as i64, x.positive())));
    let inst = b.build().unwrap();
    let expected = brute_force(&inst);
    let got = Bsolo::with_lb(LbMethod::Lpr).solve(&inst);
    check_result(&inst, &got, &expected, "farkas");
    // The bound procedure ran: before this PR lb_calls stayed 0 until an
    // incumbent existed, so a solve that finds the optimum on its first
    // descent never bounded at all.
    assert!(got.stats.lb_calls > 0, "LPR should bound from the first node");
}

#[test]
fn aggressive_restarts_preserve_correctness_and_fire() {
    // A tiny Luby base forces many restarts (each refreshing the
    // promoted-clause region when dynamic rows are installed); the
    // search must still prove the brute-force optimum, and the restart
    // counter must show the machinery actually ran.
    let mut rng = ChaCha8Rng::seed_from_u64(0x4e57);
    for round in 0..20 {
        let inst = random_instance(&mut rng, 10);
        let expected = brute_force(&inst);
        for lb in [LbMethod::Mis, LbMethod::Lpr] {
            let got =
                Bsolo::new(BsoloOptions { restart_base: Some(2), ..BsoloOptions::with_lb(lb) })
                    .solve(&inst);
            check_result(&inst, &got, &expected, &format!("{lb:?} restarts round {round}"));
        }
    }
    // Tiny instances may solve conflict-free; a synthesis-style covering
    // instance reliably conflicts, so the restart machinery must fire
    // there (and the solve must still be optimal).
    let inst = pbo_benchgen::SynthesisParams {
        primes: 30,
        minterms: 50,
        cover_density: 3.0,
        exclusions: 5,
        ..pbo_benchgen::SynthesisParams::default()
    }
    .generate(0);
    let got =
        Bsolo::new(BsoloOptions { restart_base: Some(2), ..BsoloOptions::with_lb(LbMethod::Mis) })
            .solve(&inst);
    assert_eq!(got.status, SolveStatus::Optimal);
    assert!(got.stats.restarts > 0, "base-2 Luby restarts must fire: {:?}", got.stats);
}

/// Small synthesis-family instances (the paper's covering shape), sized
/// so the {1, 2, 4}-worker matrix stays fast.
fn synthesis_seeds(seeds: u64) -> Vec<Instance> {
    (0..seeds)
        .map(|s| {
            pbo_benchgen::SynthesisParams {
                primes: 24,
                minterms: 40,
                cover_density: 3.0,
                exclusions: 4,
                ..pbo_benchgen::SynthesisParams::default()
            }
            .generate(s)
        })
        .collect()
}

#[test]
fn parallel_workers_agree_on_every_synthesis_seed() {
    // PR-5 parity gate: bb_threads ∈ {1, 2, 4} must all return the same
    // verified optimum on every synthesis seed; the single-worker run is
    // the sequential solver by delegation, so it doubles as the
    // reference.
    for (seed, inst) in synthesis_seeds(4).into_iter().enumerate() {
        let reference = crate::ParBsolo::new(BsoloOptions::with_lb(LbMethod::Mis), 1).solve(&inst);
        assert!(reference.is_optimal(), "seed {seed}: reference must solve");
        let opt = reference.best_cost.expect("synthesis instances are feasible");
        for threads in [2usize, 4] {
            let got =
                crate::ParBsolo::new(BsoloOptions::with_lb(LbMethod::Mis), threads).solve(&inst);
            assert!(got.is_optimal(), "seed {seed} x{threads}: must prove optimality");
            assert_eq!(got.best_cost, Some(opt), "seed {seed} x{threads}: optimum mismatch");
            let model = got.best_assignment.as_ref().expect("model present");
            assert_eq!(pbo_core::verify_solution(&inst, model), Ok(opt), "seed {seed}");
            assert_eq!(got.stats.nodes_per_worker.len(), threads, "seed {seed}");
            // The solve's node total is the workers' nodes plus the
            // splitter's lookahead decisions.
            assert!(
                got.stats.nodes_per_worker.iter().sum::<u64>() <= got.stats.decisions,
                "seed {seed} x{threads}: per-worker nodes exceed the total"
            );
        }
    }
}

#[test]
fn every_strategy_agrees_under_parallel_exact_search() {
    // All SolveStrategy variants with bb_threads = 2 find the verified
    // optimum (the cube pool replaces the sequential exact side in every
    // strategy).
    use crate::{Portfolio, PortfolioOptions, SolveStrategy};
    for (seed, inst) in synthesis_seeds(2).into_iter().enumerate() {
        let expected = Bsolo::with_lb(LbMethod::Mis).solve(&inst);
        assert!(expected.is_optimal());
        for strategy in [SolveStrategy::Exact, SolveStrategy::LsSeeded, SolveStrategy::Concurrent] {
            let options = PortfolioOptions {
                strategy,
                bsolo: BsoloOptions::with_lb(LbMethod::Mis),
                bb_threads: 2,
                ..PortfolioOptions::default()
            };
            let got = Portfolio::new(options).solve(&inst);
            assert!(got.is_optimal(), "seed {seed} {strategy:?}: must prove optimality");
            assert_eq!(got.best_cost, expected.best_cost, "seed {seed} {strategy:?}");
            let model = got.best_assignment.as_ref().expect("model present");
            assert_eq!(
                pbo_core::verify_solution(&inst, model),
                Ok(expected.best_cost.unwrap()),
                "seed {seed} {strategy:?}"
            );
        }
    }
}

#[test]
fn single_worker_portfolio_stats_are_bit_identical_on_synthesis() {
    // The bb_threads = 1 path delegates to the sequential solver; every
    // effort counter must match, not just the optimum.
    for (seed, inst) in synthesis_seeds(2).into_iter().enumerate() {
        let seq = Bsolo::with_lb(LbMethod::Mis).solve(&inst);
        let par = crate::ParBsolo::new(BsoloOptions::with_lb(LbMethod::Mis), 1).solve(&inst);
        let label = format!("seed {seed}");
        assert_eq!(par.status, seq.status, "{label}: status");
        assert_eq!(par.best_cost, seq.best_cost, "{label}: cost");
        assert_eq!(par.best_assignment, seq.best_assignment, "{label}: model");
        assert_eq!(par.stats.decisions, seq.stats.decisions, "{label}: decisions");
        assert_eq!(par.stats.conflicts, seq.stats.conflicts, "{label}: conflicts");
        assert_eq!(par.stats.propagations, seq.stats.propagations, "{label}: propagations");
        assert_eq!(par.stats.lb_calls, seq.stats.lb_calls, "{label}: lb calls");
        assert_eq!(par.stats.bound_conflicts, seq.stats.bound_conflicts, "{label}: prunings");
        assert_eq!(par.stats.lb_margin_sum, seq.stats.lb_margin_sum, "{label}: margins");
        assert_eq!(par.stats.restarts, seq.stats.restarts, "{label}: restarts");
        assert_eq!(par.stats.backjump_levels, seq.stats.backjump_levels, "{label}: backjumps");
        assert_eq!(par.stats.solutions_found, seq.stats.solutions_found, "{label}: solutions");
        assert_eq!(par.stats.nodes_per_worker, vec![seq.stats.decisions], "{label}: per-worker");
    }
}

#[test]
fn disabling_restarts_is_supported() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9d1e);
    for _ in 0..10 {
        let inst = random_instance(&mut rng, 9);
        let expected = brute_force(&inst);
        let got =
            Bsolo::new(BsoloOptions { restart_base: None, ..BsoloOptions::with_lb(LbMethod::Lpr) })
                .solve(&inst);
        check_result(&inst, &got, &expected, "no restarts");
        assert_eq!(got.stats.restarts, 0, "restart_base: None must never restart");
    }
}
