//! A generic MILP branch-and-bound solver — the CPLEX stand-in of
//! Table 1.
//!
//! This is the *other* algorithm class the paper compares against:
//! LP-relaxation-driven branch-and-bound with best-first node selection
//! and most-fractional branching, but **no SAT machinery** (no
//! propagation, no clause learning, no non-chronological backtracking).
//! It is strong when the cost function dominates (the LP bound prunes
//! early) and weak on pure satisfaction instances, where the zero
//! objective gives the LP nothing to say — exactly the behaviour of the
//! `cplex` column on the `acc` rows.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use pbo_core::Instance;
use pbo_lp::{DualSimplex, LpProblem, LpStatus};

use crate::options::Budget;
use crate::result::{SolveResult, SolveStatus, SolverStats};

/// Configuration of the MILP solver.
#[derive(Clone, Debug)]
pub struct MilpOptions {
    /// Resource budget (`decisions` counts branch-and-bound nodes).
    pub budget: Budget,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Maximum open nodes kept (best-first memory guard); the search
    /// degrades to depth-first pruning of the worst nodes beyond this.
    pub max_open_nodes: usize,
}

impl Default for MilpOptions {
    fn default() -> MilpOptions {
        MilpOptions { budget: Budget::unlimited(), int_tol: 1e-6, max_open_nodes: 200_000 }
    }
}

/// LP-based branch-and-bound MILP solver over 0-1 variables.
///
/// # Examples
///
/// ```
/// use pbo_core::InstanceBuilder;
/// use pbo_solver::{Budget, MilpSolver};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(3);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// b.add_clause([v[1].positive(), v[2].positive()]);
/// b.minimize([(2, v[0].positive()), (3, v[1].positive()), (2, v[2].positive())]);
/// let inst = b.build()?;
/// let result = MilpSolver::new(Budget::unlimited()).solve(&inst);
/// assert!(result.is_optimal());
/// assert_eq!(result.best_cost, Some(3));
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MilpSolver {
    options: MilpOptions,
}

/// One open node: the LP bound of its parent and its variable fixings.
#[derive(Clone, Debug)]
struct Node {
    bound: i64,
    fixings: Vec<(usize, bool)>,
}

/// Ordering adapter: best-first = smallest bound first, deepest first on
/// ties (cheap dive behaviour).
#[derive(PartialEq, Eq)]
struct NodeKey(i64, Reverse<usize>);

impl PartialOrd for NodeKey {
    fn partial_cmp(&self, other: &NodeKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NodeKey {
    fn cmp(&self, other: &NodeKey) -> std::cmp::Ordering {
        (self.0, &self.1).cmp(&(other.0, &other.1))
    }
}

impl MilpSolver {
    /// Creates a solver with the given budget and default options.
    pub fn new(budget: Budget) -> MilpSolver {
        MilpSolver { options: MilpOptions { budget, ..MilpOptions::default() } }
    }

    /// Creates a solver with explicit options.
    pub fn with_options(options: MilpOptions) -> MilpSolver {
        MilpSolver { options }
    }

    /// Solves `instance` by LP branch-and-bound.
    pub fn solve(&self, instance: &Instance) -> SolveResult {
        let start = Instant::now();
        let mut stats = SolverStats::default();

        // Build the relaxation in variable space (same mapping as the LPR
        // bound: negative literals become negated coefficients plus a
        // right-hand-side shift).
        let n = instance.num_vars();
        let mut p = LpProblem::new(n);
        let mut const_shift = 0.0f64;
        if let Some(obj) = instance.objective() {
            const_shift += obj.offset() as f64;
            let mut costs = vec![0.0f64; n];
            for &(c, l) in obj.terms() {
                if l.is_positive() {
                    costs[l.var().index()] += c as f64;
                } else {
                    const_shift += c as f64;
                    costs[l.var().index()] -= c as f64;
                }
            }
            for (j, &c) in costs.iter().enumerate() {
                if c != 0.0 {
                    p.set_cost(j, c);
                }
            }
        }
        for c in instance.constraints() {
            let mut terms = Vec::with_capacity(c.len());
            let mut rhs = c.rhs() as f64;
            for t in c.terms() {
                if t.lit.is_positive() {
                    terms.push((t.lit.var().index(), t.coeff as f64));
                } else {
                    terms.push((t.lit.var().index(), -(t.coeff as f64)));
                    rhs -= t.coeff as f64;
                }
            }
            p.add_row_ge(&terms, rhs);
        }
        let mut simplex = DualSimplex::new(&p);
        // Cap each node's LP effort so a single oversized solve cannot
        // blow through the whole budget; an iteration-limited node is
        // dropped and optimality claims are downgraded.
        let m = instance.num_constraints() as u64;
        simplex.set_max_iterations((2_000 + 4 * m).min(20_000));

        let mut best: Option<(i64, Vec<bool>)> = None;
        // Pure satisfaction instances get depth-first selection (the
        // zero objective makes best-first equivalent to breadth-first,
        // which exhausts memory without finding integral points).
        let best_first = instance.is_optimization();
        let mut heap: BinaryHeap<(Reverse<NodeKey>, usize)> = BinaryHeap::new();
        let mut dfs_stack: Vec<Node> = Vec::new();
        let mut arena: Vec<Node> = Vec::new();

        let root = Node { bound: i64::MIN, fixings: Vec::new() };
        if best_first {
            arena.push(root);
            heap.push((Reverse(NodeKey(i64::MIN, Reverse(0))), 0));
        } else {
            dfs_stack.push(root);
        }

        let mut cached_bounds: Vec<Option<bool>> = vec![None; n];
        // Set when a node is dropped without being explored (LP iteration
        // limit): optimality can no longer be claimed.
        let mut lost_nodes = false;
        loop {
            stats.nodes += 1;
            if self.options.budget.exhausted(start.elapsed(), stats.nodes, stats.nodes) {
                let status =
                    if best.is_some() { SolveStatus::Feasible } else { SolveStatus::Unknown };
                return self.finish(status, best, stats, start, &simplex);
            }
            let node = if best_first {
                match heap.pop() {
                    Some((_, idx)) => arena[idx].clone(),
                    None => break,
                }
            } else {
                match dfs_stack.pop() {
                    Some(nd) => nd,
                    None => break,
                }
            };
            // Global pruning: the best-first heap is ordered by bound.
            if let Some((ub, _)) = &best {
                if node.bound >= *ub {
                    if best_first {
                        break; // all remaining nodes are at least as bad
                    } else {
                        continue;
                    }
                }
            }
            // Apply the node's fixings to the warm-started simplex.
            let mut wanted: Vec<Option<bool>> = vec![None; n];
            for &(v, val) in &node.fixings {
                wanted[v] = Some(val);
            }
            for v in 0..n {
                if cached_bounds[v] != wanted[v] {
                    match wanted[v] {
                        Some(true) => simplex.set_var_bounds(v, 1.0, 1.0),
                        Some(false) => simplex.set_var_bounds(v, 0.0, 0.0),
                        None => simplex.set_var_bounds(v, 0.0, 1.0),
                    }
                    cached_bounds[v] = wanted[v];
                }
            }
            let sol = simplex.solve();
            match sol.status {
                LpStatus::Infeasible => continue,
                LpStatus::IterationLimit | LpStatus::Cancelled => {
                    lost_nodes = true;
                    continue;
                }
                LpStatus::Optimal => {
                    let z = sol.objective + const_shift;
                    let bound = (z - 1e-6).ceil() as i64;
                    if let Some((ub, _)) = &best {
                        if bound >= *ub {
                            continue;
                        }
                    }
                    // Integral?
                    let frac = sol
                        .x
                        .iter()
                        .enumerate()
                        .filter(|(_, &x)| {
                            x > self.options.int_tol && x < 1.0 - self.options.int_tol
                        })
                        .min_by(|a, b| {
                            let da = (a.1 - 0.5).abs();
                            let db = (b.1 - 0.5).abs();
                            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                        });
                    match frac {
                        None => {
                            let values: Vec<bool> = sol.x.iter().map(|&x| x > 0.5).collect();
                            debug_assert!(instance.is_feasible(&values));
                            let cost = instance.cost_of(&values);
                            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                                best = Some((cost, values));
                                stats.solutions_found += 1;
                                if !instance.is_optimization() {
                                    // Satisfaction: first integral point wins.
                                    return self.finish(
                                        SolveStatus::Optimal,
                                        best,
                                        stats,
                                        start,
                                        &simplex,
                                    );
                                }
                            }
                        }
                        Some((v, &xv)) => {
                            // Branch on the most fractional variable; dive
                            // toward the nearer integer first.
                            let first = xv > 0.5;
                            for val in [!first, first] {
                                let mut fixings = node.fixings.clone();
                                fixings.push((v, val));
                                let child = Node { bound, fixings };
                                if best_first {
                                    if arena.len() < self.options.max_open_nodes {
                                        let depth = child.fixings.len();
                                        arena.push(child);
                                        heap.push((
                                            Reverse(NodeKey(bound, Reverse(depth))),
                                            arena.len() - 1,
                                        ));
                                    } else {
                                        dfs_stack.push(child); // overflow: DFS
                                    }
                                } else {
                                    dfs_stack.push(child);
                                }
                            }
                        }
                    }
                }
            }
            // Drain any DFS overflow even in best-first mode.
            if best_first && heap.is_empty() && !dfs_stack.is_empty() {
                let nd = dfs_stack.pop().unwrap();
                arena.push(nd);
                heap.push((Reverse(NodeKey(i64::MIN, Reverse(0))), arena.len() - 1));
            }
        }
        let status = match (&best, lost_nodes) {
            (Some(_), false) => SolveStatus::Optimal,
            (Some(_), true) => SolveStatus::Feasible,
            (None, false) => SolveStatus::Infeasible,
            (None, true) => SolveStatus::Unknown,
        };
        self.finish(status, best, stats, start, &simplex)
    }

    fn finish(
        &self,
        status: SolveStatus,
        best: Option<(i64, Vec<bool>)>,
        mut stats: SolverStats,
        start: Instant,
        simplex: &DualSimplex,
    ) -> SolveResult {
        stats.lp_iterations = simplex.total_iterations;
        stats.solve_time = start.elapsed();
        let (best_cost, best_assignment) = match best {
            Some((c, a)) => (Some(c), Some(a)),
            None => (None, None),
        };
        SolveResult { status, best_cost, best_assignment, stats }
    }
}
