//! Cost-bound cuts (sec. 5 of the paper).
//!
//! * [`knapsack_cut`] — eq. 10: once a solution of cost `upper` is known,
//!   every better solution satisfies `sum c_j l_j <= upper - 1`.
//! * [`cardinality_cost_cuts`] — eqs. 11–13: a cardinality constraint
//!   `sum_{j in K} l_j >= U` forces at least the `U` cheapest costs of
//!   `K` to be paid (`V`), so the objective terms *outside* `K` must fit
//!   in `upper - 1 - V`.

use pbo_core::{normalize, Instance, PbConstraint, RelOp};

/// Builds the knapsack cut (eq. 10) for objective cost strictly below
/// `upper`. Returns `None` when the cut is trivially true (every
/// assignment already costs less than `upper`) and `Some(unsatisfiable
/// constraint)` is possible when no assignment can be cheaper — callers
/// detect that via [`PbConstraint::is_unsatisfiable`] / the engine's root
/// conflict.
pub fn knapsack_cut(instance: &Instance, upper: i64) -> Option<PbConstraint> {
    let obj = instance.objective()?;
    let rhs = upper - 1 - obj.offset();
    let terms: Vec<(i64, pbo_core::Lit)> = obj.terms().to_vec();
    // sum c_j l_j <= rhs, normalized to >=.
    let mut cs = normalize(&terms, RelOp::Le, rhs).ok()?;
    debug_assert!(cs.len() <= 1);
    cs.pop()
}

/// The full cost-cut set for an incumbent of cost `upper`: the eq. 10
/// knapsack cut followed by the eqs. 11–13 cardinality cost cuts, with
/// duplicates removed — two same-threshold cardinality rows (or a
/// cardinality cut that degenerates to the knapsack form) previously
/// entered the engine twice after every re-root.
pub fn cost_cuts(instance: &Instance, upper: i64) -> Vec<PbConstraint> {
    let mut cuts = Vec::new();
    cuts.extend(knapsack_cut(instance, upper));
    for cut in cardinality_cost_cuts(instance, upper) {
        if !cuts.contains(&cut) {
            cuts.push(cut);
        }
    }
    cuts
}

/// Infers the eqs. 11–13 cuts from every cardinality-class constraint
/// over literals with at least one costed member. `upper` is the current
/// best solution cost. Identical cuts (from duplicate or same-threshold
/// source rows) are emitted once.
pub fn cardinality_cost_cuts(instance: &Instance, upper: i64) -> Vec<PbConstraint> {
    let Some(obj) = instance.objective() else {
        return Vec::new();
    };
    let mut cuts: Vec<PbConstraint> = Vec::new();
    for c in instance.constraints() {
        let class = c.class();
        if class == pbo_core::ConstraintClass::General || c.is_empty() {
            continue;
        }
        // Cardinality form: at least U of the literals in K must be true.
        let u = c.min_true_literals();
        if u <= 0 || u > c.len() as i64 {
            continue;
        }
        // V = sum of the U smallest costs of literals in K (eq. 12).
        let mut costs: Vec<i64> = c.terms().iter().map(|t| obj.cost_of_lit(t.lit)).collect();
        costs.sort_unstable();
        let v: i64 = costs.iter().take(u as usize).sum();
        if v <= 0 {
            continue; // dominated by the knapsack cut
        }
        // Objective terms outside K must fit in upper - 1 - V (eq. 13).
        let k_vars: std::collections::HashSet<usize> =
            c.terms().iter().map(|t| t.lit.var().index()).collect();
        let outside: Vec<(i64, pbo_core::Lit)> = obj
            .terms()
            .iter()
            .copied()
            .filter(|(_, l)| !k_vars.contains(&l.var().index()))
            .collect();
        if outside.is_empty() {
            continue;
        }
        let rhs = upper - 1 - v - obj.offset();
        if let Ok(cs) = normalize(&outside, RelOp::Le, rhs) {
            for cut in cs {
                if !cuts.contains(&cut) {
                    cuts.push(cut);
                }
            }
        }
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::{brute_force, InstanceBuilder};

    #[test]
    fn knapsack_cut_excludes_equal_cost_solutions() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.minimize([(2, v[0].positive()), (3, v[1].positive())]);
        let inst = b.build().unwrap();
        let cut = knapsack_cut(&inst, 3).expect("cut exists");
        // Solutions of cost >= 3 must violate the cut; cost <= 2 satisfy.
        assert!(cut.is_satisfied_by(&[true, false])); // cost 2
        assert!(!cut.is_satisfied_by(&[false, true])); // cost 3
        assert!(!cut.is_satisfied_by(&[true, true])); // cost 5
        assert!(cut.is_satisfied_by(&[false, false])); // cost 0
    }

    #[test]
    fn knapsack_cut_none_when_trivial() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(1);
        b.add_clause([v[0].positive(), v[0].negative()]);
        b.minimize([(1, v[0].positive())]);
        let inst = b.build().unwrap();
        // upper = 2: every assignment costs at most 1 < 2, cut trivial.
        assert!(knapsack_cut(&inst, 3).is_none());
    }

    #[test]
    fn knapsack_cut_unsatisfiable_when_no_better_possible() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(1);
        b.add_clause([v[0].positive()]);
        b.minimize([(1, v[0].positive())]);
        let inst = b.build().unwrap();
        // upper = 0: need cost <= -1, impossible since costs >= 0.
        let cut = knapsack_cut(&inst, 0).expect("constraint present");
        assert!(cut.is_unsatisfiable());
    }

    #[test]
    fn cardinality_cut_restricts_outside_costs() {
        // K = {x1, x2, x3} with at least 2 true; costs 2, 3, 4; outside
        // cost 5 on x4. V = 2 + 3 = 5. With upper = 9: outside terms must
        // fit 9 - 1 - 5 = 3 -> 5*x4 <= 3 -> x4 forced false.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_at_least(2, [v[0].positive(), v[1].positive(), v[2].positive()]);
        b.minimize([
            (2, v[0].positive()),
            (3, v[1].positive()),
            (4, v[2].positive()),
            (5, v[3].positive()),
        ]);
        let inst = b.build().unwrap();
        let cuts = cardinality_cost_cuts(&inst, 9);
        assert_eq!(cuts.len(), 1);
        assert!(!cuts[0].is_satisfied_by(&[true, true, false, true]), "x4 = 1 excluded");
        assert!(cuts[0].is_satisfied_by(&[true, true, false, false]));
    }

    #[test]
    fn duplicate_cardinality_rows_yield_one_cut() {
        // The same cardinality constraint twice used to produce the same
        // cut twice, doubling the engine's row count after every re-root.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_at_least(2, [v[0].positive(), v[1].positive(), v[2].positive()]);
        b.add_at_least(2, [v[0].positive(), v[1].positive(), v[2].positive()]);
        b.minimize([
            (2, v[0].positive()),
            (3, v[1].positive()),
            (4, v[2].positive()),
            (5, v[3].positive()),
        ]);
        let inst = b.build().unwrap();
        let cuts = cardinality_cost_cuts(&inst, 9);
        assert_eq!(cuts.len(), 1, "identical cuts must be deduplicated");
        let all = cost_cuts(&inst, 9);
        assert_eq!(all.len(), 2, "knapsack + one cardinality cut");
        assert!(all.iter().all(|c| all.iter().filter(|d| *d == c).count() == 1));
    }

    #[test]
    fn cuts_preserve_better_solutions_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xc075);
        for round in 0..40 {
            let n = rng.gen_range(3..8);
            let mut b = InstanceBuilder::new();
            let vars = b.new_vars(n);
            for _ in 0..rng.gen_range(1..5) {
                let k = rng.gen_range(2..=n);
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                b.add_at_least(
                    rng.gen_range(1..=k as i64),
                    idxs[..k].iter().map(|&i| vars[i].positive()),
                );
            }
            b.minimize(vars.iter().map(|v| (rng.gen_range(0..5), v.positive())));
            let inst = b.build().unwrap();
            let Some(opt) = brute_force(&inst).cost() else { continue };
            let upper = opt + rng.gen_range(1i64..4); // pretend incumbent is worse
            let mut cuts = cardinality_cost_cuts(&inst, upper);
            if let Some(kc) = knapsack_cut(&inst, upper) {
                cuts.push(kc);
            }
            // Every strictly-better-than-upper feasible assignment must
            // satisfy every cut.
            for mask in 0u64..(1 << n) {
                let vals: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
                if inst.is_feasible(&vals) && inst.cost_of(&vals) < upper {
                    for (ci, cut) in cuts.iter().enumerate() {
                        assert!(
                            cut.is_satisfied_by(&vals),
                            "round {round}: cut {ci} removes solution of cost {} < {upper}",
                            inst.cost_of(&vals)
                        );
                    }
                }
            }
        }
    }
}
