//! Solve outcomes and effort statistics shared by all solvers.
//!
//! # Timing semantics
//!
//! `SolverStats` mixes two kinds of wall-clock measurement and the field
//! names make the distinction explicit:
//!
//! * **Wall fields** (`solve_time`, `time_to_best`) measure elapsed time
//!   on the driver thread. They are *not* summed at join.
//! * **`*_total` fields** (`lb_time_total`, `sub_time_total`,
//!   `queue_wait_total`) are summed across workers by
//!   [`SolverStats::absorb`]; for an N-worker solve they read as CPU
//!   time and may exceed `solve_time` by up to a factor of N.
//!
//! [`SolverStats::utilization`] relates the two: the fraction of total
//! worker-seconds not spent blocked on the cube queue.

use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

use pbo_trace::Event;

/// Final status of a solve.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SolveStatus {
    /// The search finished: the reported solution (if any) is optimal.
    /// For pure satisfaction instances, a satisfying assignment was found.
    Optimal,
    /// The search finished: the constraints are unsatisfiable.
    Infeasible,
    /// The budget ran out with an incumbent solution — the paper's
    /// "`ub` value reported at timeout" rows in Table 1.
    Feasible,
    /// The budget ran out before any solution was found.
    Unknown,
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveStatus::Optimal => write!(f, "optimal"),
            SolveStatus::Infeasible => write!(f, "infeasible"),
            SolveStatus::Feasible => write!(f, "feasible (budget)"),
            SolveStatus::Unknown => write!(f, "unknown (budget)"),
        }
    }
}

/// Stable JSON/bucket names of the per-method breakdown, in bucket
/// order (see [`SolverStats::lb_methods`]).
pub const LB_METHOD_NAMES: [&str; 4] = ["plain", "mis", "lgr", "lpr"];

/// Per-bounding-method effort breakdown: one bucket per concrete bound
/// kernel. A fixed-method solve charges exactly one bucket; the adaptive
/// ladder charges the bucket of each rung it actually ran, so the bucket
/// totals always sum to [`SolverStats::lb_calls`] /
/// [`SolverStats::lb_time_total`].
#[derive(Copy, Clone, Default, Debug, PartialEq, Eq)]
pub struct LbMethodStats {
    /// Bound-kernel calls charged to this method.
    pub calls: u64,
    /// Wall time inside this method's kernel, summed across workers at
    /// join (CPU-like, same semantics as [`SolverStats::lb_time_total`]).
    pub time_total: Duration,
    /// Calls whose outcome closed the node (pruned or proved the
    /// residual infeasible).
    pub prunes: u64,
}

impl LbMethodStats {
    fn absorb(&mut self, other: &LbMethodStats) {
        self.calls += other.calls;
        self.time_total += other.time_total;
        self.prunes += other.prunes;
    }
}

/// Effort counters for one solve.
#[derive(Clone, Default, Debug)]
pub struct SolverStats {
    /// Decisions taken.
    pub decisions: u64,
    /// Conflicts resolved (logic + bound).
    pub conflicts: u64,
    /// Bound conflicts (prunings due to `P.path + P.lower >= P.upper`).
    pub bound_conflicts: u64,
    /// Lower-bound computations performed.
    pub lb_calls: u64,
    /// Per-method breakdown of `lb_calls`/`lb_time_total`, indexed in
    /// [`LB_METHOD_NAMES`] order (`plain`, `mis`, `lgr`, `lpr`). Under
    /// the adaptive ladder an escalated node charges two buckets (the
    /// cheap rung's and `lpr`'s), so the breakdown exposes exactly where
    /// bound time went.
    pub lb_methods: [LbMethodStats; 4],
    /// Nodes the adaptive ladder escalated from its cheap rung to the LP
    /// relaxation (always 0 for fixed methods); reconciles with
    /// [`pbo_trace::TraceEvent::Escalate`] events when tracing.
    pub lb_escalations: u64,
    /// Sum over finite lower-bound outcomes of `bound - path_cost` (the
    /// per-node bound margin); divided by `lb_calls` this is the mean
    /// per-node bound strength the dynamic-rows ablation tracks.
    pub lb_margin_sum: u64,
    /// Time spent inside the lower-bound procedure, **summed across
    /// workers** at join (CPU time, not elapsed time, for parallel
    /// solves — may exceed `solve_time`).
    pub lb_time_total: Duration,
    /// Time spent maintaining/building the residual subproblem handed to
    /// the lower-bound procedure (trail sync + view in incremental mode,
    /// the full re-scan in rebuild mode), **summed across workers** at
    /// join like `lb_time_total`.
    pub sub_time_total: Duration,
    /// Total **wall** time of the solve, measured on the driver thread;
    /// never summed at join.
    pub solve_time: Duration,
    /// Wall time from solve start until the final best incumbent was
    /// first recorded (zero when no solution was found) — the anytime
    /// quality metric of the portfolio.
    pub time_to_best: Duration,
    /// Literal propagations.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Improving solutions found.
    pub solutions_found: u64,
    /// Sum over conflicts of (conflict level − backjump level); a value
    /// well above `conflicts` indicates non-chronological backtracking.
    pub backjump_levels: u64,
    /// Simplex iterations (LPR / MILP only).
    pub lp_iterations: u64,
    /// Branch-and-bound nodes (MILP only).
    pub nodes: u64,
    /// Nodes (decisions) explored by each exact worker of a parallel
    /// solve, merged at join (see [`crate::ParBsolo`]). Empty for plain
    /// sequential solves; a single-element vector equal to
    /// [`SolverStats::decisions`] when a parallel driver ran with one
    /// worker. In deterministic-join mode the entries are per-*cube*
    /// decision counts in cube-lexicographic order (scheduling-
    /// independent), not per-thread totals.
    pub nodes_per_worker: Vec<u64>,
    /// Dynamic re-splits performed by parallel workers: each takes one
    /// long-running cube and returns the complement cubes of the
    /// worker's current decision prefix to the queue.
    pub resplits: u64,
    /// Cube-independent learned clauses this solve published to the
    /// shared pool (after the pool's global dedup).
    pub clauses_shared: u64,
    /// Shared clauses imported from the pool into a worker's engine.
    pub clauses_imported: u64,
    /// Times a cube split stopped descending because it hit the maximum
    /// split depth (frontier truncated coarser than requested) — see
    /// [`crate::SplitOutcome::depth_truncated`].
    pub split_depth_truncated: u64,
    /// Time parallel workers spent without a cube to work on, **summed
    /// across workers** at join (the idle-tail metric that dynamic
    /// re-splitting is meant to shrink). The measurement is the wall
    /// time from a worker asking the scheduler for a cube to receiving
    /// one (or to shutdown), regardless of scheduler: under the mutex
    /// deque it is the condvar block, under work stealing it covers the
    /// whole acquire loop — failed owner pops, unsuccessful steal
    /// attempts and idle backoff spins alike. A *successful* steal or
    /// injector pop on the first attempt contributes (only) its own
    /// sub-microsecond probe time, so the two schedulers are directly
    /// comparable. Divide by worker count before comparing against
    /// `solve_time`; see [`SolverStats::utilization`].
    pub queue_wait_total: Duration,
    /// Cubes a worker stole from another worker's deque (work-stealing
    /// scheduler only; reconciled against [`pbo_trace::TraceEvent::Steal`]
    /// events when tracing).
    pub steals: u64,
    /// Cubes that entered the global injector: the initial frontier
    /// seeded by the driver plus any deque-overflow spills (reconciled
    /// against [`pbo_trace::TraceEvent::Inject`] event weights).
    pub injections: u64,
    /// Worker threads (B&B or LS) that died mid-solve and were
    /// contained: the solve continued on the survivors. Always 0 unless
    /// a worker panicked (engine bug, injected fault).
    pub workers_lost: u64,
    /// Cubes a dying worker left unexplored (quarantined, not closed).
    /// Any nonzero value forces the final status to degrade from
    /// `Optimal`/`Infeasible` to `Feasible`/`Unknown` — part of the
    /// search space was never visited.
    pub cubes_quarantined: u64,
    /// Whether a cooperative cancellation (deadline, external cancel,
    /// memory ceiling) ended the solve before the budget or the search
    /// space did.
    pub cancelled: bool,
    /// Telemetry events recorded when tracing was enabled (empty
    /// otherwise). Per-worker buffers are appended here at join by
    /// [`SolverStats::absorb`]; export with [`pbo_trace::write_jsonl`]
    /// or [`pbo_trace::write_chrome`].
    pub trace: Vec<Event>,
}

impl SolverStats {
    /// Folds another worker's counters into this one (the parallel
    /// driver's join step): effort counters are summed — including the
    /// wall-clock effort spent *inside* the bound machinery, which
    /// therefore reads as CPU time, not elapsed time, for parallel
    /// solves — while `solve_time` and `time_to_best` are left to the
    /// driver.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.bound_conflicts += other.bound_conflicts;
        self.lb_calls += other.lb_calls;
        for (mine, theirs) in self.lb_methods.iter_mut().zip(other.lb_methods.iter()) {
            mine.absorb(theirs);
        }
        self.lb_escalations += other.lb_escalations;
        self.lb_margin_sum += other.lb_margin_sum;
        self.lb_time_total += other.lb_time_total;
        self.sub_time_total += other.sub_time_total;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.solutions_found += other.solutions_found;
        self.backjump_levels += other.backjump_levels;
        self.lp_iterations += other.lp_iterations;
        self.nodes += other.nodes;
        self.resplits += other.resplits;
        self.clauses_shared += other.clauses_shared;
        self.clauses_imported += other.clauses_imported;
        self.split_depth_truncated += other.split_depth_truncated;
        self.queue_wait_total += other.queue_wait_total;
        self.steals += other.steals;
        self.injections += other.injections;
        self.workers_lost += other.workers_lost;
        self.cubes_quarantined += other.cubes_quarantined;
        self.cancelled |= other.cancelled;
        self.trace.extend(other.trace.iter().cloned());
    }

    /// Fraction of total worker-seconds spent doing search rather than
    /// waiting for a cube: `1 - queue_wait_total / (workers *
    /// solve_time)`, clamped to `[0, 1]`, where `workers` is
    /// `nodes_per_worker.len()` (1 for sequential solves). `None` until
    /// `solve_time` has been set by the driver.
    ///
    /// Units: `queue_wait_total` is worker-seconds (CPU-like, summed at
    /// join), `solve_time` is wall seconds — hence the division by
    /// `workers`. The numerator counts *all* time between asking the
    /// scheduler for work and getting it (condvar blocks, failed steal
    /// attempts, idle spins), so utilization is scheduler-comparable.
    pub fn utilization(&self) -> Option<f64> {
        let wall = self.solve_time.as_secs_f64();
        if wall <= 0.0 {
            return None;
        }
        let workers = self.nodes_per_worker.len().max(1) as f64;
        let busy = 1.0 - self.queue_wait_total.as_secs_f64() / (workers * wall);
        Some(busy.clamp(0.0, 1.0))
    }

    /// Serializes the merged counters as one JSON object — the
    /// machine-readable path behind `pbo-solve --stats-json`. Durations
    /// are emitted in milliseconds with the `_ms` suffix; `*_total`
    /// fields keep their summed-across-workers semantics. The trace
    /// buffer is not included (export it with `--trace`).
    pub fn to_json(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"decisions\":{},\"conflicts\":{},\"bound_conflicts\":{},\"lb_calls\":{},\
             \"lb_margin_sum\":{},\"lb_time_total_ms\":{:.3},\"sub_time_total_ms\":{:.3},\
             \"solve_time_ms\":{:.3},\"time_to_best_ms\":{:.3},\"propagations\":{},\
             \"restarts\":{},\"solutions_found\":{},\"backjump_levels\":{},\
             \"lp_iterations\":{},\"nodes\":{},\"resplits\":{},\"clauses_shared\":{},\
             \"clauses_imported\":{},\"split_depth_truncated\":{},\"queue_wait_total_ms\":{:.3},\
             \"steals\":{},\"injections\":{},\"workers_lost\":{},\"cubes_quarantined\":{},\
             \"cancelled\":{},",
            self.decisions,
            self.conflicts,
            self.bound_conflicts,
            self.lb_calls,
            self.lb_margin_sum,
            ms(self.lb_time_total),
            ms(self.sub_time_total),
            ms(self.solve_time),
            ms(self.time_to_best),
            self.propagations,
            self.restarts,
            self.solutions_found,
            self.backjump_levels,
            self.lp_iterations,
            self.nodes,
            self.resplits,
            self.clauses_shared,
            self.clauses_imported,
            self.split_depth_truncated,
            ms(self.queue_wait_total),
            self.steals,
            self.injections,
            self.workers_lost,
            self.cubes_quarantined,
            self.cancelled,
        );
        s.push_str("\"lb_methods\":{");
        for (i, (name, m)) in LB_METHOD_NAMES.iter().zip(self.lb_methods.iter()).enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{name}\":{{\"calls\":{},\"time_total_ms\":{:.3},\"prunes\":{}}}",
                m.calls,
                ms(m.time_total),
                m.prunes
            );
        }
        let _ = write!(s, "}},\"lb_escalations\":{},", self.lb_escalations);
        let _ = write!(
            s,
            "\"utilization\":{},",
            self.utilization().map_or("null".to_string(), |u| format!("{u:.4}"))
        );
        s.push_str("\"nodes_per_worker\":[");
        for (i, n) in self.nodes_per_worker.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{n}");
        }
        s.push_str("]}");
        s
    }
}

/// Result of a solve: status, incumbent and statistics.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// Final status.
    pub status: SolveStatus,
    /// Cost of the best solution found, if any (0 for satisfaction
    /// instances solved to SAT).
    pub best_cost: Option<i64>,
    /// The best assignment found, if any.
    pub best_assignment: Option<Vec<bool>>,
    /// Effort counters.
    pub stats: SolverStats,
}

/// Machine-readable refinement of [`SolveStatus`] for service callers:
/// *why* the solve ended, not just what it can claim. Derived by
/// [`SolveResult::service_status`] from the status plus the robustness
/// counters, so callers never parse human text.
///
/// The lattice, strongest claim first: `Optimal`/`Infeasible` (search
/// space exhausted), `FeasibleBudget`/`FeasibleDegraded` (verified
/// incumbent, completeness lost to the budget resp. to lost workers),
/// `Cancelled` (caller tore the solve down; incumbent may be present),
/// `Unknown` (nothing provable).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ServiceStatus {
    /// Search space exhausted; the reported solution is optimal.
    Optimal,
    /// Search space exhausted; no solution exists.
    Infeasible,
    /// Verified incumbent in hand; the budget ran out before the
    /// optimality proof finished.
    FeasibleBudget,
    /// Verified incumbent in hand; completeness was lost because part
    /// of the search space was quarantined by a dying worker.
    FeasibleDegraded,
    /// A cooperative cancellation ended the solve (check
    /// [`SolveResult::best_cost`] for an incumbent).
    Cancelled,
    /// The solve ended with neither a solution nor an infeasibility
    /// proof.
    Unknown,
}

impl ServiceStatus {
    /// Stable lower-snake-case name (the `status` field of
    /// `--stats-json`).
    pub fn as_str(self) -> &'static str {
        match self {
            ServiceStatus::Optimal => "optimal",
            ServiceStatus::Infeasible => "infeasible",
            ServiceStatus::FeasibleBudget => "feasible_budget",
            ServiceStatus::FeasibleDegraded => "feasible_degraded",
            ServiceStatus::Cancelled => "cancelled",
            ServiceStatus::Unknown => "unknown",
        }
    }
}

impl fmt::Display for ServiceStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl SolveResult {
    /// Returns `true` if the result proves optimality (or SAT for pure
    /// satisfaction problems).
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }

    /// Whether the result was degraded by lost workers or quarantined
    /// cubes: the answer is still sound and verified, but weaker than a
    /// fault-free run would have produced.
    pub fn degraded(&self) -> bool {
        self.stats.workers_lost > 0 || self.stats.cubes_quarantined > 0
    }

    /// The service-facing status (see [`ServiceStatus`]). `Optimal` and
    /// `Infeasible` are complete proofs and win outright — a
    /// cancellation or fault that raced a finished proof does not weaken
    /// it. Incomplete outcomes attribute the incompleteness:
    /// cancellation first (the caller asked), then quarantine
    /// degradation, then the plain budget.
    pub fn service_status(&self) -> ServiceStatus {
        match self.status {
            SolveStatus::Optimal => ServiceStatus::Optimal,
            SolveStatus::Infeasible => ServiceStatus::Infeasible,
            SolveStatus::Feasible => {
                if self.stats.cancelled {
                    ServiceStatus::Cancelled
                } else if self.stats.cubes_quarantined > 0 {
                    ServiceStatus::FeasibleDegraded
                } else {
                    ServiceStatus::FeasibleBudget
                }
            }
            SolveStatus::Unknown => {
                if self.stats.cancelled {
                    ServiceStatus::Cancelled
                } else {
                    ServiceStatus::Unknown
                }
            }
        }
    }

    /// Formats the solve outcome the way Table 1 of the paper does:
    /// the time when solved, or `ub <value>` when the budget ran out with
    /// an incumbent.
    pub fn table_cell(&self) -> String {
        match self.status {
            SolveStatus::Optimal => format!("{:.2}", self.stats.solve_time.as_secs_f64()),
            SolveStatus::Infeasible => "UNSAT".to_string(),
            SolveStatus::Feasible => format!("ub {}", self.best_cost.unwrap_or(0)),
            SolveStatus::Unknown => "time".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_cell_formats() {
        let mut r = SolveResult {
            status: SolveStatus::Optimal,
            best_cost: Some(5),
            best_assignment: None,
            stats: SolverStats::default(),
        };
        r.stats.solve_time = Duration::from_millis(1500);
        assert_eq!(r.table_cell(), "1.50");
        r.status = SolveStatus::Feasible;
        assert_eq!(r.table_cell(), "ub 5");
        r.status = SolveStatus::Unknown;
        assert_eq!(r.table_cell(), "time");
        r.status = SolveStatus::Infeasible;
        assert_eq!(r.table_cell(), "UNSAT");
    }

    #[test]
    fn status_display_nonempty() {
        for s in [
            SolveStatus::Optimal,
            SolveStatus::Infeasible,
            SolveStatus::Feasible,
            SolveStatus::Unknown,
        ] {
            assert!(!format!("{s}").is_empty());
        }
    }
}
