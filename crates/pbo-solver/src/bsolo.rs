//! The bsolo-style solver: SAT-based branch-and-bound with lower
//! bounding and bound-conflict-driven non-chronological backtracking —
//! the system the DATE'05 paper describes.
//!
//! The search is a CDCL loop (propagate / resolve / decide) on the
//! [`pbo_engine::Engine`], extended with:
//!
//! * an upper bound `P.upper` maintained from improving solutions, with
//!   the knapsack cut of eq. 10 (and optionally the cardinality cost cuts
//!   of eqs. 11–13) re-added at the root after each improvement;
//! * a pluggable lower-bound procedure called at every node; when
//!   `P.path + P.lower >= P.upper` (eq. 7) the solver builds the bound
//!   conflict clause `omega_bc = omega_pp ∪ omega_pl` (eqs. 8–9) and
//!   feeds it to the standard conflict analysis, obtaining
//!   non-chronological backtracking on bounds (sec. 4). Before the first
//!   incumbent exists the procedure still runs: an *infeasible* residual
//!   (e.g. the LPR Farkas case) prunes with `omega_pl` alone;
//! * an incrementally maintained residual problem
//!   ([`pbo_bounds::ResidualState`], [`ResidualMode::Incremental`], the
//!   default): per-constraint satisfied-weight/free-term counters are
//!   synced to the engine trail in O(Δ) per node instead of rebuilding
//!   the subproblem from scratch, with the O(instance) rebuild retained
//!   as the differential-testing oracle ([`ResidualMode::Rebuild`]). In
//!   incremental mode the LP bound's variable fixings ride the same
//!   trail protocol through a second engine observer, so LP bound sync
//!   is O(changed vars) per node too;
//! * LP-guided branching when the LP relaxation is the bound procedure
//!   (sec. 5): branch on the fractional variable closest to 0.5,
//!   VSIDS tie-break;
//! * optional probing-based preprocessing (sec. 5);
//! * an optional shared [`IncumbentCell`](crate::IncumbentCell): an
//!   external producer (the `pbo-ls` local search, another thread, a
//!   previous solve) seeds the initial upper bound, every improving
//!   solution found here is published back, and strictly better external
//!   incumbents are adopted mid-search (with the eq. 10 cuts re-rooted) —
//!   the mechanism behind the portfolio driver
//!   ([`Portfolio`](crate::Portfolio)).

use std::collections::HashSet;
use std::time::Instant;

use pbo_bounds::DynRowOrigin;
use pbo_core::{verify_solution, Instance, Lit, PbConstraint, Value, Var};
use pbo_engine::{Conflict, Engine, LubyRestarts, PbId, Resolution, Taint};
use pbo_ls::{IncumbentCell, SharedCut};
use pbo_trace::{TraceEvent, Tracer};

use crate::cuts::{cost_cuts, knapsack_cut};
use crate::options::{Branching, BsoloOptions, LbMethod};
use crate::pipeline::BoundPipeline;
use crate::preprocess::{probe, ProbeOutcome};
use crate::result::{SolveResult, SolveStatus, SolverStats};
use crate::share::{PoolHandle, PoolWatermarks, SharedClause};

/// Longest clause a worker offers to the shared pool.
const SHARE_MAX_LEN: usize = 24;
/// Worst LBD a worker offers to the shared pool.
const SHARE_MAX_LBD: u32 = 6;
/// Most clauses offered per publish (LBD-best first).
const SHARE_MAX_COUNT: usize = 64;

/// The bsolo branch-and-bound PBO solver.
///
/// # Examples
///
/// ```
/// use pbo_core::InstanceBuilder;
/// use pbo_solver::{Bsolo, BsoloOptions, LbMethod};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(3);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// b.add_clause([v[1].positive(), v[2].positive()]);
/// b.minimize([(2, v[0].positive()), (3, v[1].positive()), (2, v[2].positive())]);
/// let inst = b.build()?;
///
/// let result = Bsolo::new(BsoloOptions::with_lb(LbMethod::Lpr)).solve(&inst);
/// assert!(result.is_optimal());
/// assert_eq!(result.best_cost, Some(3));
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Bsolo {
    options: BsoloOptions,
}

impl Bsolo {
    /// Creates a solver with the given configuration.
    pub fn new(options: BsoloOptions) -> Bsolo {
        Bsolo { options }
    }

    /// Convenience constructor: default options with the given bound
    /// method (matching one Table 1 column).
    pub fn with_lb(lb_method: LbMethod) -> Bsolo {
        Bsolo::new(BsoloOptions::with_lb(lb_method))
    }

    /// The active configuration.
    pub fn options(&self) -> &BsoloOptions {
        &self.options
    }

    /// Solves `instance` to optimality or until the budget runs out.
    pub fn solve(&self, instance: &Instance) -> SolveResult {
        self.solve_with_cell(instance, None)
    }

    /// Like [`Bsolo::solve`], but wired to a shared incumbent cell:
    ///
    /// * a solution already in the cell warm-starts the upper bound (and
    ///   the eq. 10 cost cuts) before the first decision;
    /// * every improving solution found by the search is published to the
    ///   cell;
    /// * strictly better external incumbents appearing mid-search are
    ///   verified, adopted, and the cost cuts re-rooted.
    ///
    /// External solutions are accepted only after passing
    /// [`pbo_core::verify_solution`]; an infeasible or mis-priced offer
    /// is ignored.
    pub fn solve_with_cell(
        &self,
        instance: &Instance,
        cell: Option<&IncumbentCell>,
    ) -> SolveResult {
        let start = Instant::now();
        let mut stats = SolverStats::default();
        // A cancel token without its own deadline inherits the wall-clock
        // budget, so the deadline reaches the layers the between-node
        // budget check cannot: the LP pivot loop and the propagation loop.
        if let Some(cancel) = &self.options.cancel {
            if let (Some(t), None) = (self.options.budget.time, cancel.deadline()) {
                cancel.deadline_in(t);
            }
        }
        // Covering-style simplification preserves the variable space and
        // the exact feasible set, so models and costs transfer 1:1 (which
        // is also what lets incumbents cross between the simplified
        // search and unsimplified external producers).
        let simplified;
        let instance = if self.options.simplify {
            simplified = crate::preprocess::simplify(instance);
            &simplified
        } else {
            instance
        };
        let tracer = if self.options.trace { Tracer::buffered(0, start) } else { Tracer::off() };
        let mut search = match SearchState::init(
            instance,
            &self.options,
            cell,
            start,
            &mut stats,
            &[],
            &[],
            None,
            tracer.clone(),
        ) {
            Ok(s) => s,
            Err(()) => {
                stats.solve_time = start.elapsed();
                stats.trace = tracer.drain();
                return SolveResult {
                    status: SolveStatus::Infeasible,
                    best_cost: None,
                    best_assignment: None,
                    stats,
                };
            }
        };
        let status = search.run(start, &mut stats);
        search.finish_stats(&mut stats);
        stats.solve_time = start.elapsed();
        stats.trace.extend(tracer.drain());
        SolveResult {
            status,
            best_cost: search.best_cost,
            best_assignment: search.best_model,
            stats,
        }
    }
}

/// The per-(sub)tree search state: one engine, one bound pipeline, one
/// incumbent view.
///
/// The sequential solver owns exactly one of these for the whole tree;
/// the parallel driver ([`ParBsolo`](crate::ParBsolo)) builds one per
/// *subtree task* — a [`Cube`](crate::Cube) of decision literals assumed
/// at the root — each borrowing the same `&Instance` (and through it the
/// shared read-only `TermArena`), so N workers share one copy of the
/// term and occurrence data and own only their counters, trails and
/// learned clauses.
pub(crate) struct SearchState<'a> {
    instance: &'a Instance,
    options: &'a BsoloOptions,
    engine: Engine,
    /// The bounding subsystem: bound procedure, residual state, trail
    /// observers, dynamic-row registry and gating policy.
    pipeline: BoundPipeline,
    /// Shared incumbent cell of the portfolio, if any.
    cell: Option<&'a IncumbentCell>,
    /// Solve start, for `time_to_best` accounting.
    start: Instant,
    best_cost: Option<i64>,
    best_model: Option<Vec<bool>>,
    active_cuts: Vec<PbId>,
    /// Cost of the cheapest cell entry that failed verification (a buggy
    /// external producer); entries at or above it are not re-verified.
    rejected_external: Option<i64>,
    /// Luby restart budgets (`None` disables restarts); a zero base is
    /// clamped to 1 so a restart can never re-fire before at least one
    /// new conflict.
    restarts: Option<LubyRestarts>,
    /// Conflict count that triggers the next restart (`u64::MAX` when
    /// restarts are disabled).
    next_restart: u64,
    /// Whether promoted-clause rows may join the cell's shared cut pool.
    /// A cube worker's learned clauses are implied by *instance ∧ cube*,
    /// not the instance alone, so sharing them would poison siblings and
    /// the local search; only the root search (empty cube) shares them.
    /// (With taint tracking on, the engine's assumption-clean clauses
    /// *are* safely shared — through [`SearchState::sync_share`] and the
    /// dedicated clause pool, not this cut-pool path.) The eq. 10–13
    /// cost cuts are implied by instance + incumbent bound and are
    /// always safe to share.
    share_promoted: bool,
    /// The cube this search is rooted in (empty for the sequential
    /// solver), *extended in place* by [`SearchState::resplit`] as the
    /// worker deepens — so re-split arm cubes always carry the full
    /// current prefix.
    cube: Vec<Lit>,
    /// Cross-worker shared-clause pool handle (the pool plus this
    /// publisher's lane), when clause sharing is on.
    pool: Option<PoolHandle<'a>>,
    /// Per-lane read watermarks into the pool (entries before them were
    /// already imported).
    pool_seen: PoolWatermarks,
    /// Canonical keys of every clause this search ever offered to the
    /// pool *or imported from it* — publisher-side this stops round-
    /// tripping our own clauses back in, importer-side it is the dedup
    /// the sharded pool no longer does globally (two workers may publish
    /// the same clause on different lanes; it installs here once).
    my_keys: HashSet<Vec<Lit>>,
    /// Telemetry handle shared with the engine and the bound pipeline
    /// (one lane per worker); [`Tracer::off`] when tracing is disabled.
    tracer: Tracer,
}

impl<'a> SearchState<'a> {
    /// Builds the search state, optionally rooted in a subtree: every
    /// literal of `cube` is assumed at level 0 after probing, so the
    /// search explores exactly the subtree the cube describes (conflict
    /// analysis can never flip an assumption). `Err(())` means the
    /// formula — instance ∧ cube ∧ seed clauses — is unsatisfiable at
    /// the root: for the sequential solver (empty cube) that is global
    /// infeasibility, for a cube worker it closes the subtree.
    ///
    /// `seed` clauses are loaded as root constraints before the search.
    /// The parallel driver passes the *head start's* learned clauses
    /// here. Soundness: a head-start clause is implied by the instance
    /// together with the head's cost cuts, i.e. by
    /// `instance ∧ (cost <= upper - 1)` for an incumbent of cost `upper`
    /// that was verified and published to the shared cell *before* the
    /// workers launch — so no completion cheaper than the cell's best
    /// is ever excluded, which is exactly the set the search quantifies
    /// over (eq. 7). When the head never found an incumbent, no cost cut
    /// was ever installed and the clauses are implied by the instance
    /// alone.
    ///
    /// When `pool` is given, the engine's assumption-dependency (taint)
    /// tracking is switched on *before* the cube is assumed, and the
    /// pool's current contents are imported immediately; the search then
    /// publishes cube-independent learned clauses and polls for peers'
    /// at every restart and cost re-root ([`SearchState::sync_share`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn init(
        instance: &'a Instance,
        options: &'a BsoloOptions,
        cell: Option<&'a IncumbentCell>,
        start: Instant,
        stats: &mut SolverStats,
        cube: &[Lit],
        seed: &[Vec<Lit>],
        pool: Option<PoolHandle<'a>>,
        tracer: Tracer,
    ) -> Result<SearchState<'a>, ()> {
        let mut engine = Engine::new(instance.num_vars());
        engine.set_tracer(tracer.clone());
        // Tracking must precede the first assumption or tainted fact;
        // instance constraints and probing are instance-implied, so the
        // order relative to them is irrelevant.
        if pool.is_some() {
            engine.set_taint_tracking(true);
        }
        for c in instance.constraints() {
            if engine.add_constraint(c).is_err() {
                return Err(());
            }
        }
        if options.probing {
            match probe(instance, &mut engine) {
                ProbeOutcome::Infeasible => return Err(()),
                ProbeOutcome::Done { forced } => {
                    stats.propagations += forced as u64;
                }
            }
        }
        for &lit in cube {
            if engine.assume_at_root(lit).is_err() {
                return Err(());
            }
        }
        // Head-start seed clauses are implied by instance + the head's
        // cost cuts when the cell already holds an incumbent, and by the
        // instance alone otherwise (see the doc comment above).
        let seed_taint = if cell.is_some_and(|c| c.best_cost().is_some()) {
            Taint::INCUMBENT
        } else {
            Taint::NONE
        };
        for lits in seed {
            if engine
                .add_constraint_tainted(&PbConstraint::clause(lits.iter().copied()), seed_taint)
                .is_err()
            {
                return Err(());
            }
        }
        let mut pipeline = BoundPipeline::new(instance, options, &mut engine);
        pipeline.set_tracer(tracer.clone());
        // Thread the cancel token into the two kernels that can outlive
        // a between-node budget check: unit propagation and the LP
        // relaxation's pivot loop.
        if let Some(cancel) = &options.cancel {
            engine.set_cancel(cancel.clone());
            pipeline.set_cancel(cancel.deadline(), Some(cancel.flag()));
        }
        let mut restarts = options.restart_base.map(|base| LubyRestarts::new(base.max(1)));
        let next_restart =
            restarts.as_mut().map_or(u64::MAX, |r| r.next().expect("luby sequence is infinite"));
        let mut state = SearchState {
            instance,
            options,
            engine,
            pipeline,
            cell,
            start,
            best_cost: None,
            best_model: None,
            active_cuts: Vec::new(),
            rejected_external: None,
            restarts,
            next_restart,
            share_promoted: cube.is_empty(),
            cube: cube.to_vec(),
            pool,
            pool_seen: PoolWatermarks::default(),
            my_keys: HashSet::new(),
            tracer,
        };
        // Late-launching workers start with everything already pooled.
        if state.sync_share(stats).is_err() {
            return Err(());
        }
        Ok(state)
    }

    /// Exports the engine's best (LBD-first) learned clauses — the
    /// parallel driver's hook for seeding cube workers with the head
    /// start's knowledge (see the `seed` parameter of
    /// [`SearchState::init`]).
    pub(crate) fn export_learnts(&self, max_len: usize, max_count: usize) -> Vec<Vec<Lit>> {
        self.engine.export_learnts(max_len, max_count)
    }

    /// Folds the engine- and pipeline-side effort counters into `stats`
    /// (the assignment half of result assembly, shared by the sequential
    /// driver and the parallel workers).
    pub(crate) fn finish_stats(&self, stats: &mut SolverStats) {
        stats.decisions = self.engine.stats.decisions;
        stats.conflicts = self.engine.stats.conflicts;
        stats.propagations = self.engine.stats.propagations;
        stats.restarts = self.engine.stats.restarts;
        stats.backjump_levels = self.engine.stats.backjump_levels;
        if let Some(lpr) = self.pipeline.lpr() {
            stats.lp_iterations = lpr.simplex_iterations();
        }
    }

    /// Final status once the search space is exhausted.
    fn exhausted_status(&self) -> SolveStatus {
        if self.best_cost.is_some() {
            SolveStatus::Optimal
        } else {
            SolveStatus::Infeasible
        }
    }

    /// Status when the budget runs out.
    fn budget_status(&self) -> SolveStatus {
        if self.best_cost.is_some() {
            SolveStatus::Feasible
        } else {
            SolveStatus::Unknown
        }
    }

    pub(crate) fn run(&mut self, start: Instant, stats: &mut SolverStats) -> SolveStatus {
        self.run_capped(start, stats, None).expect("uncapped run always finishes")
    }

    /// [`SearchState::run`] with an optional conflict cap: returns
    /// `None` — with the search state intact, mid-tree — once the
    /// engine's total conflict count reaches `cap`. The parallel driver
    /// uses this as the re-split trigger: a worker that has burned its
    /// conflict allowance on one cube pauses here, hands off the
    /// complement cubes of its decision prefix ([`SearchState::resplit`])
    /// and resumes with a higher cap.
    pub(crate) fn run_capped(
        &mut self,
        start: Instant,
        stats: &mut SolverStats,
        cap: Option<u64>,
    ) -> Option<SolveStatus> {
        if self.engine.is_root_unsat() {
            return Some(self.exhausted_status());
        }
        loop {
            if cap.is_some_and(|c| self.engine.stats.conflicts >= c) {
                return None;
            }
            // A strictly better external incumbent (the LS thread, a
            // portfolio sibling) tightens the upper bound immediately —
            // checked before the budget so a seeded solution is never
            // discarded by an already-exhausted budget.
            if let Some(status) = self.adopt_external(stats) {
                return Some(status);
            }
            if self.options.budget.exhausted(
                start.elapsed(),
                self.engine.stats.conflicts,
                self.engine.stats.decisions,
            ) {
                return Some(self.budget_status());
            }
            // Cooperative cancellation (external cancel, a deadline
            // tighter than the budget, or the memory ceiling). Checked
            // after the budget so a budget-derived deadline expiring is
            // reported as budget exhaustion, not as a cancellation.
            if self.options.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                stats.cancelled = true;
                return Some(self.budget_status());
            }
            // Luby restart: back to the root (learned clauses kept), and
            // the dynamic-row region's promoted clauses are re-exported
            // from the learned-clause database — the bounds see the
            // freshest low-LBD structure, not the snapshot taken at the
            // last incumbent. Restarts are also the clause-sharing
            // cadence: publish what we learned, import what peers did.
            if self.engine.stats.conflicts >= self.next_restart {
                self.engine.restart();
                if self.pipeline.refresh_on_restart(self.instance, &self.engine) {
                    self.publish_cut_pool();
                }
                if self.sync_share(stats).is_err() {
                    return Some(self.exhausted_status());
                }
                let budget = self
                    .restarts
                    .as_mut()
                    .and_then(Iterator::next)
                    .expect("restart fired, so the schedule exists");
                self.next_restart = self.engine.stats.conflicts.saturating_add(budget.max(1));
            }
            // Propagate to fixpoint.
            if let Some(conflict) = self.engine.propagate() {
                match self.engine.resolve_conflict(conflict) {
                    Resolution::Unsat => return Some(self.exhausted_status()),
                    Resolution::Backjumped { .. } => continue,
                }
            }
            // Complete assignment: a solution of the current formula.
            if self.engine.assignment().is_complete() {
                match self.record_solution(stats) {
                    SolutionStep::Finished(status) => return Some(status),
                    SolutionStep::Continue => continue,
                }
            }
            // Bound step (eq. 7). With an incumbent the bound prunes on
            // cost. Before the first incumbent only procedures that can
            // prove a subtree has *no* feasible completion run: LPR's
            // Farkas certificate, and MIS's implication closure (plain
            // MIS infeasibility duplicates what slack propagation
            // already catches, and LGR/plain cannot prove infeasibility).
            if self.instance.is_optimization()
                && self.pipeline.can_act(self.best_cost.is_some())
                && self.pipeline.tick()
            {
                let upper = self.best_cost;
                self.pipeline.compute(&mut self.engine, self.instance, upper, stats);
                let out = self.pipeline.last_outcome();
                let prunes = match upper {
                    Some(u) => out.prunes(u),
                    None => out.infeasible,
                };
                if prunes {
                    stats.bound_conflicts += 1;
                    // A *true* infeasibility explanation stands on its
                    // own: no completion exists regardless of cost, so
                    // the omega_pp cost literals would only weaken the
                    // learned clause. With dynamic rows installed,
                    // though, "infeasible" is conditional on the
                    // incumbent bound (the rows are implied by it), so
                    // omega_pp must stay in the clause.
                    let include_pp = !out.infeasible || self.pipeline.has_dynamic_rows();
                    let omega_bc = self.build_bound_conflict(&out.explanation, include_pp);
                    let taint = self.adhoc_taint();
                    match self.engine.resolve_conflict_tainted(Conflict::AdHoc(omega_bc), taint) {
                        Resolution::Unsat => return Some(self.exhausted_status()),
                        Resolution::Backjumped { .. } => continue,
                    }
                }
            }
            // Decide.
            let Some(lit) = self.pick_branch() else {
                // Every variable assigned; handled by the completeness
                // check next iteration.
                continue;
            };
            self.engine.decide(lit);
        }
    }

    /// The taint of an ad-hoc bound conflict: its derivation (the
    /// lower-bound argument) quantifies against the incumbent's cost
    /// once one exists — the learned clause is implied by instance ∧
    /// cost bound, not the instance alone. Pre-incumbent bound conflicts
    /// (pure infeasibility proofs over instance + dynamic rows, which
    /// are themselves absent before the first re-root) are
    /// instance-implied. Cube dependencies need no handling here: the
    /// bound explanations list *all* false literals of the rows they
    /// used, so cube-derived level-0 literals surface in conflict
    /// analysis and taint the clause through the standard drop rule —
    /// and the rows themselves are cube-independent, because under
    /// taint tracking the region's promotion filter admits only
    /// assumption-clean clauses (see `BoundPipeline::rebuild_regions`).
    fn adhoc_taint(&self) -> Taint {
        if self.best_cost.is_some() {
            Taint::INCUMBENT
        } else {
            Taint::NONE
        }
    }

    /// Two-way sync with the shared-clause pool (no-op without one):
    /// publishes this engine's assumption-clean learned clauses —
    /// incumbent-conditional ones stamped with the current upper bound —
    /// and imports everything peers published since the last sync.
    /// Must be called at decision level 0 (restart, re-root, init).
    ///
    /// Returns `Err(())` when an imported clause contradicts the root
    /// assignment: under this worker's cube + cost cuts nothing better
    /// remains, so the caller closes the subtree via
    /// [`SearchState::exhausted_status`].
    fn sync_share(&mut self, stats: &mut SolverStats) -> Result<(), ()> {
        let Some(handle) = self.pool else { return Ok(()) };
        debug_assert_eq!(self.engine.decision_level(), 0);
        // Publish. A clause carrying INCUMBENT is implied by
        // instance ∧ (cost ≤ upper − 1); without a local incumbent there
        // is no bound to stamp it with, so it stays private until one
        // appears (the taint is set pre-incumbent only by head seeds).
        let mut batch = Vec::new();
        for (lits, taint, lbd) in
            self.engine.export_shareable_learnts(SHARE_MAX_LEN, SHARE_MAX_COUNT, SHARE_MAX_LBD)
        {
            let upper = if taint.intersects(Taint::INCUMBENT) {
                match self.best_cost {
                    Some(u) => Some(u),
                    None => continue,
                }
            } else {
                None
            };
            let clause = SharedClause { lits, lbd, upper };
            // Remember every offer (accepted or deduplicated away) so we
            // never round-trip our own clauses back in.
            if self.my_keys.insert(clause.key()) {
                batch.push(clause);
            }
        }
        let published = handle.pool.publish(handle.lane, batch);
        stats.clauses_shared += published;
        if published > 0 {
            self.tracer.emit(TraceEvent::ClausesShared { n: published });
        }
        // Import. `my_keys` absorbs every installed key, so a clause two
        // workers published on separate lanes still installs only once.
        if let Some(incoming) = handle.pool.snapshot_since(&mut self.pool_seen) {
            let mut imported = 0u64;
            for c in incoming {
                if !self.my_keys.insert(c.key()) {
                    continue;
                }
                let taint = if c.upper.is_some() { Taint::INCUMBENT } else { Taint::NONE };
                stats.clauses_imported += 1;
                imported += 1;
                if self.engine.add_learnt_clause(c.lits, taint, c.lbd).is_err() {
                    if imported > 0 {
                        self.tracer.emit(TraceEvent::ClausesImported { n: imported });
                    }
                    return Err(());
                }
            }
            if imported > 0 {
                self.tracer.emit(TraceEvent::ClausesImported { n: imported });
            }
        }
        Ok(())
    }

    /// Dynamic re-split (the guiding-path step): takes the first
    /// `max_arms` decision literals `d1..dm` of the current trail,
    /// backjumps to the root, *assumes* them — deepening this search's
    /// cube to `C ∧ d1 ∧ … ∧ dm`, which every learned clause remains
    /// implied under (a superset of the old assumption set) — and
    /// returns the complement cubes
    ///
    /// ```text
    /// C ∧ ¬d1,   C ∧ d1 ∧ ¬d2,   …,   C ∧ d1 ∧ … ∧ d(m−1) ∧ ¬dm
    /// ```
    ///
    /// which together with the deepened cube exactly partition `C`: no
    /// assignment is lost or duplicated, so handing them to the queue
    /// preserves the parallel driver's exact-partition invariant. If
    /// assuming `dj` fails (the deepened cube is refuted by root
    /// propagation — sound, since every clause involved is implied by
    /// instance ∧ cube ∧ cost cuts), the arm list is truncated after
    /// `j` entries and the continuing search closes immediately.
    ///
    /// Returns an empty vector when the trail holds no decisions (the
    /// caller should just keep running).
    pub(crate) fn resplit(&mut self, max_arms: usize) -> Vec<Vec<Lit>> {
        let decisions: Vec<Lit> = self
            .engine
            .trail()
            .iter()
            .copied()
            .filter(|&l| {
                self.engine.level_of(l.var()) > 0
                    && matches!(self.engine.reason_of(l.var()), pbo_engine::Reason::None)
            })
            .collect();
        if decisions.is_empty() {
            return Vec::new();
        }
        let m = decisions.len().min(max_arms.max(1));
        let prefix = &decisions[..m];
        self.engine.backjump_to(0);
        let mut arms: Vec<Vec<Lit>> = Vec::with_capacity(m);
        for (i, &d) in prefix.iter().enumerate() {
            let mut arm = self.cube.clone();
            arm.extend_from_slice(&prefix[..i]);
            arm.push(!d);
            arms.push(arm);
            self.cube.push(d);
            if self.engine.assume_at_root(d).is_err() {
                break;
            }
        }
        arms
    }

    /// Sharing sync at a re-split pause: [`SearchState::resplit`] left
    /// the engine at the root, which is exactly where publish/import is
    /// legal — so every re-split doubles as a sharing beat, giving
    /// subtree workers (whose Luby restarts rarely fire before the cube
    /// closes) a cadence proportional to how long they run. Maps a root
    /// contradiction from an imported clause to the closed-subtree
    /// status; the arms already handed to the queue stay valid — they
    /// partition the rest of the parent cube regardless of how this
    /// deepened remainder closes.
    pub(crate) fn sync_share_after_resplit(
        &mut self,
        stats: &mut SolverStats,
    ) -> Option<SolveStatus> {
        match self.sync_share(stats) {
            Ok(()) => None,
            Err(()) => Some(self.exhausted_status()),
        }
    }

    /// A single greedy cost-avoiding descent from the root, run on a
    /// freshly initialized cube task before any proof search: every
    /// objective literal is decided false (largest coefficient first),
    /// then the remaining variables follow the engine's saved-phase
    /// heuristic, with unit propagation — but no bound computation —
    /// between decisions. A completed descent is a feasible completion
    /// of the cube; the caller's main loop records and publishes it, so
    /// a worker pool starts from `threads` *diverse* primal bounds
    /// instead of racing each other (across the whole pool, wall-clock)
    /// for the first incumbent. A conflict ends the dive through the
    /// normal learning path — the learned clause and its backjump
    /// stand, and the main loop resumes from wherever the backjump left
    /// the trail. Returns `Some` only when the dive refutes the cube
    /// outright.
    pub(crate) fn primal_dive(&mut self) -> Option<SolveStatus> {
        let mut cost_order: Vec<(i64, Lit)> =
            self.instance.objective().map(|o| o.terms().to_vec()).unwrap_or_default();
        cost_order.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut next = 0usize;
        let dive_start = self.tracer.now_ns();
        let mut dive_len = 0u32;
        let dive_end = |tracer: &Tracer, len: u32, refuted: bool| {
            tracer.emit(TraceEvent::DiveEnd {
                len,
                refuted,
                dur_ns: tracer.now_ns().saturating_sub(dive_start),
            });
        };
        loop {
            if let Some(conflict) = self.engine.propagate() {
                match self.engine.resolve_conflict(conflict) {
                    Resolution::Unsat => {
                        dive_end(&self.tracer, dive_len, true);
                        return Some(self.exhausted_status());
                    }
                    Resolution::Backjumped { .. } => {
                        dive_end(&self.tracer, dive_len, false);
                        return None;
                    }
                }
            }
            if self.engine.assignment().is_complete() {
                dive_end(&self.tracer, dive_len, false);
                return None;
            }
            let lit = loop {
                match cost_order.get(next) {
                    Some(&(_, l)) => {
                        next += 1;
                        if self.engine.assignment().value(l.var()) == Value::Unassigned {
                            break Some(!l);
                        }
                    }
                    None => {
                        break self
                            .engine
                            .pick_branch_var()
                            .map(|v| v.lit(self.engine.phase_of(v)));
                    }
                }
            };
            match lit {
                Some(l) => {
                    self.engine.decide(l);
                    dive_len += 1;
                }
                None => {
                    dive_end(&self.tracer, dive_len, false);
                    return None;
                }
            }
        }
    }

    /// This search's telemetry handle (the parallel driver emits cube
    /// lifecycle events on the same lane).
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Depth of this search's cube (grows with every re-split).
    pub(crate) fn cube_depth(&self) -> usize {
        self.cube.len()
    }

    /// The cube this search currently owns (the partition-soundness
    /// tests enumerate against it after a re-split).
    #[cfg(test)]
    pub(crate) fn cube_lits(&self) -> &[Lit] {
        &self.cube
    }

    /// Total conflicts resolved so far (the re-split trigger clock).
    pub(crate) fn conflicts(&self) -> u64 {
        self.engine.stats.conflicts
    }

    /// The best incumbent this search holds (cost and model).
    pub(crate) fn best(&self) -> (Option<i64>, Option<&Vec<bool>>) {
        (self.best_cost, self.best_model.as_ref())
    }

    /// The paper's `omega_bc = omega_pp ∪ omega_pl` (sec. 4); with
    /// `include_omega_pp` unset only `omega_pl` is used (infeasibility
    /// conflicts, where cost literals are irrelevant). With
    /// bound-conflict learning disabled (ablation), the clause is instead
    /// the negation of all current decisions, which forces chronological
    /// backtracking.
    fn build_bound_conflict(&self, omega_pl: &[Lit], include_omega_pp: bool) -> Vec<Lit> {
        if !self.options.bound_conflict_learning {
            return self
                .engine
                .trail()
                .iter()
                .copied()
                .filter(|&l| {
                    matches!(self.engine.reason_of(l.var()), pbo_engine::Reason::None)
                        && self.engine.level_of(l.var()) > 0
                })
                .map(|l| !l)
                .collect();
        }
        let mut omega = Vec::new();
        // omega_pp (eq. 8): costed literals currently true; flipping one
        // is the only way to reduce P.path.
        if include_omega_pp {
            if let Some(obj) = self.instance.objective() {
                for &(c, l) in obj.terms() {
                    if c > 0 && self.engine.assignment().lit_value(l) == Value::True {
                        omega.push(!l);
                    }
                }
            }
        }
        omega.extend_from_slice(omega_pl);
        omega.sort();
        omega.dedup();
        omega
    }

    /// Installs the eq. 10 knapsack cut (and optionally the eq. 11–13
    /// cardinality cost cuts) for `upper` at the root, replacing any cuts
    /// from a previous incumbent.
    ///
    /// Returns `Err(())` when a cut is contradictory with the root
    /// assignment — no solution better than `upper` exists, so the caller
    /// finishes with the incumbent as the optimum.
    fn install_cost_cuts(&mut self, upper: i64, stats: &mut SolverStats) -> Result<(), ()> {
        self.engine.backjump_to(0);
        for id in self.active_cuts.drain(..) {
            self.engine.deactivate_pb(id);
        }
        // Trivial knapsack cut: every assignment is already cheaper,
        // which cannot happen for a just-found solution of this cost.
        debug_assert!(
            knapsack_cut(self.instance, upper).is_some(),
            "knapsack cut trivial for incumbent cost"
        );
        let cuts: Vec<PbConstraint> = if self.options.cardinality_cuts {
            cost_cuts(self.instance, upper)
        } else {
            knapsack_cut(self.instance, upper).into_iter().collect()
        };
        for cut in &cuts {
            // Cost cuts are implied by instance + incumbent, never by
            // the instance alone: clauses learned through them must not
            // be shared as unconditional.
            match self.engine.add_pb_cut_tainted(cut, Taint::INCUMBENT) {
                Ok(id) => self.active_cuts.push(id),
                Err(_) => return Err(()),
            }
        }
        // Fold the new cut set (plus the engine's best short learned
        // clauses) into the residual problem as dynamic rows, and share
        // it with any local-search sibling through the cell's cut pool.
        self.pipeline.reroot(self.instance, &self.engine, &cuts);
        self.publish_cut_pool();
        // A re-root is also a sharing point: we are at level 0 with a
        // fresh (tighter) upper bound to stamp INCUMBENT clauses with.
        self.sync_share(stats)
    }

    /// Publishes the dynamic-row registry to the shared cell's cut pool
    /// (the LS siblings fold it into their constraint sets at restarts).
    /// Called on incumbent re-roots and restart refreshes. Cube workers
    /// publish only the cost-cut rows — their promoted clauses are
    /// cube-conditional (see [`SearchState::share_promoted`]) — and the
    /// pool keeps whichever producer holds the tightest upper bound.
    fn publish_cut_pool(&self) {
        let Some(cell) = self.cell else { return };
        let Some(upper) = self.best_cost else { return };
        let rows = self.pipeline.dynamic_rows();
        let shared: Vec<SharedCut> = rows
            .rows()
            .iter()
            .filter(|r| self.share_promoted || r.origin != DynRowOrigin::PromotedClause)
            .map(|r| SharedCut {
                terms: r.constraint.terms().iter().map(|t| (t.coeff, t.lit)).collect(),
                rhs: r.constraint.rhs(),
            })
            .collect();
        if shared.is_empty() {
            return;
        }
        cell.publish_cuts_for(upper, shared);
    }

    /// Adopts a strictly better incumbent from the shared cell, if one
    /// appeared: verified, recorded, cost cuts re-rooted. Returns a final
    /// status when the cut proves nothing better can exist.
    fn adopt_external(&mut self, stats: &mut SolverStats) -> Option<SolveStatus> {
        let cell = self.cell?;
        let ext = cell.best_cost()?;
        if self.best_cost.is_some_and(|b| ext >= b) {
            return None;
        }
        // A cell entry that already failed verification would otherwise
        // be snapshotted and re-verified on every loop iteration; skip
        // it until the cell holds something strictly cheaper.
        if self.rejected_external.is_some_and(|r| ext >= r) {
            return None;
        }
        let (cost, model) = cell.snapshot()?;
        if self.best_cost.is_some_and(|b| cost >= b) {
            return None; // raced: the cell moved between the two reads
        }
        // Trust nothing across the component boundary unverified. The
        // simplified instance has the same variable space, feasible set
        // and costs as the original, so external models verify directly.
        if verify_solution(self.instance, &model) != Ok(cost) {
            self.rejected_external = Some(cost);
            return None;
        }
        self.best_cost = Some(cost);
        self.best_model = Some(model);
        // Not counted in `solutions_found`: this solution was *found* by
        // another producer (it is already in the cell's history); the
        // counter would otherwise tally the same incumbent once per
        // adopting worker in a parallel solve.
        stats.time_to_best = self.start.elapsed();
        self.tracer.emit(TraceEvent::Adopt { cost });
        if !self.instance.is_optimization() {
            // Pure satisfaction: a verified external model finishes the
            // solve (mirror of `record_solution`).
            return Some(SolveStatus::Optimal);
        }
        if self.options.knapsack_cuts && self.install_cost_cuts(cost, stats).is_err() {
            return Some(self.exhausted_status());
        }
        None
    }

    fn record_solution(&mut self, stats: &mut SolverStats) -> SolutionStep {
        let model = self.engine.model();
        debug_assert_eq!(
            verify_solution(self.instance, &model),
            Ok(self.instance.cost_of(&model)),
            "engine produced infeasible model"
        );
        let cost = self.instance.cost_of(&model);
        let improved = self.best_cost.is_none_or(|b| cost < b);
        if improved {
            self.best_cost = Some(cost);
            stats.solutions_found += 1;
            stats.time_to_best = self.start.elapsed();
            self.tracer.emit(TraceEvent::Solution { cost });
            // Publish before moving the model into our own slot; the cell
            // clones only on improvement.
            if let Some(cell) = self.cell {
                cell.offer(cost, &model);
            }
            self.best_model = Some(model);
        }
        if !self.instance.is_optimization() {
            // Pure satisfaction: done at the first solution.
            return SolutionStep::Finished(SolveStatus::Optimal);
        }
        let upper = self.best_cost.unwrap();
        if self.options.knapsack_cuts {
            // Install the cost cuts at the root and continue searching
            // for a strictly better solution.
            if self.install_cost_cuts(upper, stats).is_err() {
                return SolutionStep::Finished(SolveStatus::Optimal);
            }
        } else {
            // Without eq. 10 cuts the engine has no reason to leave the
            // current (complete) solution: force the search onward with an
            // ad-hoc "improve on omega_pp" conflict, built *at the
            // solution state* (its literals must be false right now;
            // resolve_conflict performs the backtracking itself).
            let omega = self.build_bound_conflict(&[], true);
            let taint = self.adhoc_taint();
            match self.engine.resolve_conflict_tainted(Conflict::AdHoc(omega), taint) {
                Resolution::Unsat => return SolutionStep::Finished(SolveStatus::Optimal),
                Resolution::Backjumped { .. } => {}
            }
        }
        SolutionStep::Continue
    }

    /// Branch selection (sec. 5): LP-guided when available, else VSIDS
    /// with saved phases.
    fn pick_branch(&mut self) -> Option<Lit> {
        if self.options.branching == Branching::LpGuided {
            if let Some(lpr) = self.pipeline.lpr() {
                let x = lpr.last_solution();
                let mut best: Option<(Var, f64)> = None;
                for (v, &frac) in x.iter().enumerate().take(self.instance.num_vars()) {
                    let var = Var::new(v);
                    if self.engine.assignment().value(var) != Value::Unassigned {
                        continue;
                    }
                    if frac <= 1e-6 || frac >= 1.0 - 1e-6 {
                        continue;
                    }
                    let dist = (frac - 0.5).abs();
                    if best.is_none_or(|(_, d)| dist < d - 1e-12) {
                        best = Some((var, dist));
                    }
                }
                if let Some((var, _)) = best {
                    let frac = x[var.index()];
                    return Some(var.lit(frac > 0.5));
                }
            }
        }
        let var = self.engine.pick_branch_var()?;
        Some(var.lit(self.engine.phase_of(var)))
    }
}

enum SolutionStep {
    Finished(SolveStatus),
    Continue,
}
