//! The bound pipeline: one owner for everything the per-node lower
//! bound needs.
//!
//! Before this module existed, `bsolo.rs` wired each piece ad hoc — the
//! bound-procedure dispatch, the incremental [`ResidualState`], its
//! engine trail observer, the LP bound's second observer, and the
//! per-method gating rules were separate fields threaded through the
//! search loop. [`BoundPipeline`] owns all of it, plus the
//! **dynamic-row registry**: on every incumbent re-root the learned cost
//! cuts (eq. 10 and eqs. 11–13) and the most active short learned
//! clauses are folded into the residual problem as epoch-versioned
//! dynamic rows, so MIS, LGR and LPR all bound against the relaxation
//! the solver actually knows — with zero per-node rebuild (the region
//! swap is O(region), and the rows ride the same O(Δ) trail protocol as
//! static rows from then on).
//!
//! Soundness note: dynamic rows are implied by the instance *plus* the
//! incumbent bound `cost <= upper - 1`, so a bound (or infeasibility)
//! derived over them holds for completions cheaper than the incumbent —
//! exactly the set eq. 7 pruning quantifies over. The solver must treat
//! an infeasibility verdict obtained while dynamic rows are installed as
//! a *bound* conflict (keep `omega_pp`), which
//! [`BoundPipeline::has_dynamic_rows`] exposes.

use std::time::Instant;

use pbo_bounds::{
    DynRowOrigin, DynamicRows, LagrangianBound, LbOutcome, LowerBound, LprBound, MisBound, NoBound,
    ResidualState, Subproblem,
};
use pbo_core::{Instance, PbConstraint};
use pbo_engine::{Engine, TrailObserver};

use crate::options::{BsoloOptions, LbMethod, ResidualMode};
use crate::result::SolverStats;

/// Learned clauses promoted into the dynamic-row region per re-root:
/// only short ones (a long clause is a weak PB row) ...
const PROMOTE_MAX_LEN: usize = 8;
/// ... and only the most active few (the region swap is O(region)).
const PROMOTE_MAX_COUNT: usize = 24;

/// Lower-bound procedure dispatch (avoids `Box<dyn>` so the LPR state
/// can also serve the branching heuristic).
enum Bound {
    None(NoBound),
    Mis(MisBound),
    Lgr(LagrangianBound),
    Lpr(LprBound),
}

impl Bound {
    fn lower_bound(&mut self, sub: &Subproblem<'_>, upper: Option<i64>) -> LbOutcome {
        match self {
            Bound::None(b) => b.lower_bound(sub, upper),
            Bound::Mis(b) => b.lower_bound(sub, upper),
            Bound::Lgr(b) => b.lower_bound(sub, upper),
            Bound::Lpr(b) => b.lower_bound(sub, upper),
        }
    }
}

/// Owner of the bounding subsystem: bound procedure, residual state,
/// trail observers, dynamic-row registry and gating policy.
pub(crate) struct BoundPipeline {
    bound: Bound,
    lb_frequency: u32,
    decisions_since_lb: u32,
    /// Trail-mirrored residual problem ([`ResidualMode::Incremental`]);
    /// `None` in rebuild mode or when the instance never computes bounds.
    residual: Option<ResidualState>,
    /// Engine trail observer backing `residual`.
    residual_obs: Option<TrailObserver>,
    /// Engine trail observer backing the LP bound's variable-fixing
    /// mirror (incremental mode with [`LbMethod::Lpr`] only).
    lpr_obs: Option<TrailObserver>,
    /// The dynamic-row registry, re-rooted on each improving incumbent.
    rows: DynamicRows,
    /// Whether re-roots install dynamic rows at all.
    dynamic_enabled: bool,
    /// Whether the MIS bound runs its implied-literal reasoning (gates
    /// pre-incumbent MIS calls).
    mis_implied: bool,
    method: LbMethod,
}

impl BoundPipeline {
    pub fn new(instance: &Instance, options: &BsoloOptions, engine: &mut Engine) -> BoundPipeline {
        let bound = match options.lb_method {
            LbMethod::None => Bound::None(NoBound::new()),
            LbMethod::Mis => Bound::Mis(MisBound::with_implied(options.mis_implied)),
            LbMethod::Lagrangian => Bound::Lgr(LagrangianBound::new(instance.num_constraints())),
            LbMethod::Lpr => Bound::Lpr(LprBound::new(instance)),
        };
        // The residual state only pays off where bounds are computed:
        // optimization instances (satisfaction search never bounds).
        let incremental =
            options.residual_mode == ResidualMode::Incremental && instance.is_optimization();
        let residual = if incremental { Some(ResidualState::new(instance)) } else { None };
        let residual_obs = residual.as_ref().map(|_| engine.register_trail_observer());
        // In incremental mode the LP bound joins the trail protocol as a
        // second observer; rebuild mode keeps the O(vars) assignment diff
        // as the differential-testing oracle.
        let lpr_obs = (incremental && matches!(bound, Bound::Lpr(_)))
            .then(|| engine.register_trail_observer());
        BoundPipeline {
            bound,
            lb_frequency: options.lb_frequency,
            decisions_since_lb: 0,
            residual,
            residual_obs,
            lpr_obs,
            rows: DynamicRows::new(),
            dynamic_enabled: options.dynamic_rows && instance.is_optimization(),
            mis_implied: options.mis_implied,
            method: options.lb_method,
        }
    }

    /// The LPR bound when it is the active method (for LP-guided
    /// branching and iteration accounting).
    pub fn lpr(&self) -> Option<&LprBound> {
        match &self.bound {
            Bound::Lpr(b) => Some(b),
            _ => None,
        }
    }

    /// Gating policy: which methods may act before the first incumbent.
    /// LPR's Farkas certificate and MIS's implication closure can prove
    /// a subtree has *no* feasible completion; plain and LGR cannot, and
    /// plain-MIS infeasibility only duplicates slack propagation.
    pub fn can_act(&self, have_incumbent: bool) -> bool {
        have_incumbent
            || self.method == LbMethod::Lpr
            || (self.method == LbMethod::Mis && self.mis_implied)
    }

    /// Frequency gate: returns `true` when a bound should be computed at
    /// this node (every `lb_frequency` eligible nodes).
    pub fn tick(&mut self) -> bool {
        self.decisions_since_lb += 1;
        if self.decisions_since_lb >= self.lb_frequency {
            self.decisions_since_lb = 0;
            true
        } else {
            false
        }
    }

    /// `true` while a non-empty dynamic-row region is installed — the
    /// caller must then treat infeasibility verdicts as bound conflicts
    /// (include `omega_pp`), since the rows are incumbent-conditional.
    pub fn has_dynamic_rows(&self) -> bool {
        !self.rows.is_empty()
    }

    /// The registry itself (for sharing the rows with the LS cut pool).
    pub fn dynamic_rows(&self) -> &DynamicRows {
        &self.rows
    }

    /// Re-roots the dynamic-row region for a new incumbent: the freshly
    /// installed cost cuts plus the engine's most active short learned
    /// clauses become the new region, the residual state swaps to it in
    /// O(region), and the LP relaxation is rebuilt with the rows
    /// appended (once per incumbent — per-node solves stay warm).
    pub fn reroot(&mut self, instance: &Instance, engine: &Engine, cuts: &[PbConstraint]) {
        if !self.dynamic_enabled {
            return;
        }
        self.rows.begin_epoch();
        for (i, cut) in cuts.iter().enumerate() {
            let origin =
                if i == 0 { DynRowOrigin::ObjectiveCut } else { DynRowOrigin::CardinalityCut };
            self.rows.push(cut.clone(), origin);
        }
        for lits in engine.export_learnts(PROMOTE_MAX_LEN, PROMOTE_MAX_COUNT) {
            self.rows.push(PbConstraint::clause(lits), DynRowOrigin::PromotedClause);
        }
        if let Some(state) = &mut self.residual {
            state.set_dynamic_rows(&self.rows);
        }
        if let Bound::Lpr(lpr) = &mut self.bound {
            lpr.install_rows(instance, &self.rows);
        }
    }

    /// Computes the lower bound at the current node: syncs the residual
    /// state (and the LP mirror) to the engine trail in O(Δ), produces
    /// the view — dynamic rows included — and runs the bound procedure.
    pub fn compute(
        &mut self,
        engine: &mut Engine,
        instance: &Instance,
        upper: Option<i64>,
        stats: &mut SolverStats,
    ) -> LbOutcome {
        let sub_start = Instant::now();
        let BoundPipeline { bound, residual, residual_obs, lpr_obs, rows, .. } = self;
        // Keep the LP bound's variable fixings in lockstep with the
        // trail (O(Δ) per node) through its own observer.
        if let (Some(obs), Bound::Lpr(lpr)) = (*lpr_obs, &mut *bound) {
            let keep = engine.sync_trail(obs, lpr.synced_len());
            lpr.unwind_to(keep);
            for &lit in &engine.trail()[keep..] {
                lpr.apply(lit);
            }
        }
        // Produce the residual view: O(Δ) sync + O(active) snapshot in
        // incremental mode, a full O(instance + region) re-scan in
        // rebuild mode (the differential oracle, dynamic rows included).
        let sub = match (residual.as_mut(), *residual_obs) {
            (Some(state), Some(obs)) => {
                let keep = engine.sync_trail(obs, state.len());
                state.unwind_to(keep);
                for &lit in &engine.trail()[keep..] {
                    state.apply(lit);
                }
                state.view(instance, engine.assignment())
            }
            _ => Subproblem::with_rows(instance, engine.assignment(), rows),
        };
        stats.sub_time += sub_start.elapsed();
        let path = sub.path_cost();
        let lb_start = Instant::now();
        let out = bound.lower_bound(&sub, upper);
        stats.lb_calls += 1;
        stats.lb_time += lb_start.elapsed();
        if !out.infeasible {
            stats.lb_margin_sum += out.bound.saturating_sub(path).max(0) as u64;
        }
        out
    }
}
