//! The bound pipeline: one owner for everything the per-node lower
//! bound needs.
//!
//! Before this module existed, `bsolo.rs` wired each piece ad hoc — the
//! bound-procedure dispatch, the incremental [`ResidualState`], its
//! engine trail observer, the LP bound's second observer, and the
//! per-method gating rules were separate fields threaded through the
//! search loop. [`BoundPipeline`] owns all of it, plus the
//! **dynamic-row registry**: on every incumbent re-root the learned cost
//! cuts (eq. 10 and eqs. 11–13) and the best (LBD-selected) short
//! learned clauses are folded into the residual problem as
//! epoch-versioned dynamic rows, so MIS, LGR and LPR all bound against
//! the relaxation the solver actually knows — with zero per-node rebuild
//! (the region swap is O(region), and the rows ride the same O(Δ) trail
//! protocol as static rows from then on).
//!
//! Two refinements sit on top of the registry:
//!
//! * **Per-method row filter.** The full registry is what the cut pool
//!   publishes, but the region actually *installed* for the bound is
//!   method-filtered: LGR keeps only [`DynRowOrigin::PromotedClause`]
//!   rows — dualized cost-cut rows (objective and cardinality alike)
//!   yield weak `omega_pl` explanations that were measured to *triple*
//!   the LGR tree (1064 → 3226 nodes on the synthesis ablation; back to
//!   1064 with the filter) — and additionally drops rows whose
//!   multiplier stayed at zero through the previous epoch (they never
//!   contributed to `L(mu)`, only to explanation width). MIS and LPR
//!   install the full set. Dropping rows is always sound — any subset of
//!   valid rows is valid.
//! * **Restart refresh.** The promoted-clause portion of the region is
//!   re-exported from the engine's learned-clause database on search
//!   restarts, not only on incumbents — the LBD-best clauses shortly
//!   after a restart are much fresher than the ones captured at the last
//!   incumbent.
//!
//! The per-node path is **steady-state allocation-free**: the pipeline
//! owns one [`LbOutcome`] whose explanation buffer is reused by
//! [`LowerBound::lower_bound_into`] on every call.
//!
//! Soundness note: dynamic rows are implied by the instance *plus* the
//! incumbent bound `cost <= upper - 1`, so a bound (or infeasibility)
//! derived over them holds for completions cheaper than the incumbent —
//! exactly the set eq. 7 pruning quantifies over. The solver must treat
//! an infeasibility verdict obtained while dynamic rows are installed as
//! a *bound* conflict (keep `omega_pp`), which
//! [`BoundPipeline::has_dynamic_rows`] exposes.

use std::time::Instant;

use pbo_bounds::{
    DynRow, DynRowOrigin, DynamicRows, LagrangianBound, LbOutcome, LowerBound, LprBound, MisBound,
    NoBound, ResidualState, Subproblem,
};
use pbo_core::{Instance, PbConstraint};
use pbo_engine::{Engine, Taint, TrailObserver};
use pbo_fault::failpoint;

use crate::ladder::AdaptiveLadder;
use crate::options::{BsoloOptions, LbMethod, ResidualMode};
use crate::result::SolverStats;

/// Learned clauses promoted into the dynamic-row region per re-root:
/// only short ones (a long clause is a weak PB row) ...
const PROMOTE_MAX_LEN: usize = 8;
/// ... and only the best (lowest-LBD) few (the region swap is O(region)).
const PROMOTE_MAX_COUNT: usize = 24;

/// Multipliers at or below this are "stayed zero" for the LGR row drop.
const LGR_MU_ZERO: f64 = 1e-7;

/// Lower-bound procedure dispatch (avoids `Box<dyn>` so the LPR state
/// can also serve the branching heuristic).
enum Bound {
    None(NoBound),
    Mis(MisBound),
    Lgr(LagrangianBound),
    Lpr(Box<LprBound>),
    Adaptive(Box<AdaptiveLadder>),
}

impl Bound {
    /// Fixed-method kernel dispatch. The adaptive ladder never routes
    /// through here — it runs (and charges) its rungs itself.
    fn lower_bound_into(&mut self, sub: &Subproblem<'_>, upper: Option<i64>, out: &mut LbOutcome) {
        match self {
            Bound::None(b) => b.lower_bound_into(sub, upper, out),
            Bound::Mis(b) => b.lower_bound_into(sub, upper, out),
            Bound::Lgr(b) => b.lower_bound_into(sub, upper, out),
            Bound::Lpr(b) => b.lower_bound_into(sub, upper, out),
            Bound::Adaptive(_) => unreachable!("the ladder dispatches per rung"),
        }
    }
}

/// `SolverStats::lb_methods` bucket of a fixed method.
fn method_bucket(method: LbMethod) -> usize {
    match method {
        LbMethod::None => 0,
        LbMethod::Mis => 1,
        LbMethod::Lagrangian => 2,
        LbMethod::Lpr => 3,
        LbMethod::Adaptive => unreachable!("the ladder charges per rung"),
    }
}

/// Owner of the bounding subsystem: bound procedure, residual state,
/// trail observers, dynamic-row registry and gating policy.
pub(crate) struct BoundPipeline {
    bound: Bound,
    lb_frequency: u32,
    decisions_since_lb: u32,
    /// Trail-mirrored residual problem ([`ResidualMode::Incremental`]);
    /// `None` in rebuild mode or when the instance never computes bounds.
    residual: Option<ResidualState>,
    /// Engine trail observer backing `residual`.
    residual_obs: Option<TrailObserver>,
    /// Engine trail observer backing the LP bound's variable-fixing
    /// mirror (incremental mode with [`LbMethod::Lpr`] only).
    lpr_obs: Option<TrailObserver>,
    /// The full dynamic-row registry, re-rooted on each improving
    /// incumbent — what the cut pool publishes.
    rows: DynamicRows,
    /// The method-filtered registry actually installed into the residual
    /// state and the LP relaxation (see the module docs).
    method_rows: DynamicRows,
    /// Rows whose LGR multiplier stayed zero through the previous
    /// installed epoch: dropped from the next LGR region.
    lgr_zero_mu: Vec<PbConstraint>,
    /// Cost cuts of the most recent re-root, kept so restart refreshes
    /// can rebuild the region without a new incumbent.
    last_cuts: Vec<PbConstraint>,
    /// Reusable per-node outcome (explanation buffer included).
    out: LbOutcome,
    /// Whether re-roots install dynamic rows at all.
    dynamic_enabled: bool,
    /// Whether the MIS bound runs its implied-literal reasoning (gates
    /// pre-incumbent MIS calls).
    mis_implied: bool,
    method: LbMethod,
    /// Telemetry sink; emits one [`pbo_trace::TraceEvent::Bound`] per
    /// [`BoundPipeline::compute`] call (off by default).
    tracer: pbo_trace::Tracer,
}

impl BoundPipeline {
    pub fn new(instance: &Instance, options: &BsoloOptions, engine: &mut Engine) -> BoundPipeline {
        let bound = match options.lb_method {
            LbMethod::None => Bound::None(NoBound::new()),
            LbMethod::Mis => Bound::Mis(MisBound::with_implied(options.mis_implied)),
            LbMethod::Lagrangian => Bound::Lgr(LagrangianBound::new(instance.num_constraints())),
            LbMethod::Lpr => Bound::Lpr(Box::new(LprBound::new(instance))),
            LbMethod::Adaptive => {
                Bound::Adaptive(Box::new(AdaptiveLadder::new(instance, options.deterministic_join)))
            }
        };
        // The residual state only pays off where bounds are computed:
        // optimization instances (satisfaction search never bounds).
        let incremental =
            options.residual_mode == ResidualMode::Incremental && instance.is_optimization();
        let residual = if incremental { Some(ResidualState::new(instance)) } else { None };
        let residual_obs = residual.as_ref().map(|_| engine.register_trail_observer());
        // In incremental mode the LP bound joins the trail protocol as a
        // second observer; rebuild mode keeps the O(vars) assignment diff
        // as the differential-testing oracle.
        let lpr_obs = (incremental && matches!(bound, Bound::Lpr(_) | Bound::Adaptive(_)))
            .then(|| engine.register_trail_observer());
        BoundPipeline {
            bound,
            lb_frequency: options.lb_frequency,
            decisions_since_lb: 0,
            residual,
            residual_obs,
            lpr_obs,
            // Both registries carry the instance's objective costs so
            // every pushed row's fractional-cover order is precomputed
            // at push time (no per-bound-call sorting, and worker-local
            // region swaps clone the order along with the terms).
            rows: DynamicRows::for_instance(instance),
            method_rows: DynamicRows::for_instance(instance),
            lgr_zero_mu: Vec::new(),
            last_cuts: Vec::new(),
            out: LbOutcome::bound(0, Vec::new()),
            dynamic_enabled: options.dynamic_rows && instance.is_optimization(),
            mis_implied: options.mis_implied,
            method: options.lb_method,
            tracer: pbo_trace::Tracer::off(),
        }
    }

    /// Installs a telemetry tracer; one `Bound` event is emitted per
    /// [`BoundPipeline::compute`] call, carrying method, outcome, margin
    /// and kernel time, so traced bound events reconcile with
    /// [`SolverStats::lb_calls`].
    pub fn set_tracer(&mut self, tracer: pbo_trace::Tracer) {
        self.tracer = tracer;
    }

    /// The LPR bound when the active method runs one (fixed LPR or the
    /// adaptive ladder's escalated rung) — for LP-guided branching and
    /// iteration accounting.
    pub fn lpr(&self) -> Option<&LprBound> {
        match &self.bound {
            Bound::Lpr(b) => Some(b.as_ref()),
            Bound::Adaptive(l) => Some(&l.lpr),
            _ => None,
        }
    }

    /// The adaptive ladder, for differential tests that pin it to a
    /// single rung.
    #[cfg(test)]
    pub(crate) fn ladder_mut(&mut self) -> Option<&mut AdaptiveLadder> {
        match &mut self.bound {
            Bound::Adaptive(l) => Some(l),
            _ => None,
        }
    }

    /// Threads a cooperative-cancellation pair into the bound procedure.
    /// Today only the LP relaxation listens (its pivot loop is the one
    /// kernel that can run long past `Budget::time`); the other methods
    /// are per-call cheap and bounded by the search loop's own checks.
    pub fn set_cancel(
        &mut self,
        deadline: Option<Instant>,
        stop: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    ) {
        match &mut self.bound {
            Bound::Lpr(b) => b.set_cancel(deadline, stop),
            Bound::Adaptive(l) => l.lpr.set_cancel(deadline, stop),
            _ => {}
        }
    }

    /// Gating policy: which methods may act before the first incumbent.
    /// LPR's Farkas certificate and MIS's implication closure can prove
    /// a subtree has *no* feasible completion; plain and LGR cannot, and
    /// plain-MIS infeasibility only duplicates slack propagation.
    pub fn can_act(&self, have_incumbent: bool) -> bool {
        if have_incumbent {
            return true;
        }
        match &self.bound {
            // The ladder's escalated rung carries LPR's Farkas power, so
            // it acts pre-incumbent too (skipping straight to the LP).
            Bound::Adaptive(l) => l.can_act_pre_incumbent(),
            _ => self.method == LbMethod::Lpr || (self.method == LbMethod::Mis && self.mis_implied),
        }
    }

    /// Frequency gate: returns `true` when a bound should be computed at
    /// this node (every `lb_frequency` eligible nodes). The adaptive
    /// ladder stretches the interval (up to 4x) while its cheap rung's
    /// rolling prune rate stays negligible — a bound that never acts is
    /// not worth computing at every node.
    pub fn tick(&mut self) -> bool {
        self.decisions_since_lb += 1;
        let stretch = match &self.bound {
            Bound::Adaptive(l) => l.stretch(),
            _ => 1,
        };
        if self.decisions_since_lb >= self.lb_frequency.saturating_mul(stretch) {
            self.decisions_since_lb = 0;
            true
        } else {
            false
        }
    }

    /// `true` while a non-empty dynamic-row region is *installed* for
    /// the bound — the caller must then treat infeasibility verdicts as
    /// bound conflicts (include `omega_pp`), since the rows are
    /// incumbent-conditional.
    pub fn has_dynamic_rows(&self) -> bool {
        !self.method_rows.is_empty()
    }

    /// The full registry (for sharing the rows with the LS cut pool;
    /// the installed region may be a method-filtered subset).
    pub fn dynamic_rows(&self) -> &DynamicRows {
        &self.rows
    }

    /// Whether `row` joins the region installed for the active method.
    /// LGR keeps promoted clauses only (dualized cost cuts were measured
    /// to grow its tree ~3x) and drops rows whose multiplier never left
    /// zero last epoch; every other method takes the full set. Dropping
    /// rows is always sound.
    fn keep_for_method(&self, row: &DynRow) -> bool {
        match self.method {
            // The ladder applies the LGR filter to *both* rungs: its
            // cheap rung is LGR (same explanation-width pathology), and
            // feeding the escalated LP the same thinner region is sound
            // (any subset of valid rows is valid) and keeps the LP solve
            // cheap — the point of escalating sparingly.
            LbMethod::Lagrangian | LbMethod::Adaptive => {
                row.origin == DynRowOrigin::PromotedClause
                    && !self.lgr_zero_mu.contains(&row.constraint)
            }
            _ => true,
        }
    }

    /// Records which installed dynamic rows the LGR warm-start left at a
    /// zero multiplier, so the next region build can drop them.
    fn snapshot_lgr_zero_mu(&mut self, instance: &Instance) {
        let lgr = match &self.bound {
            Bound::Lgr(lgr) => lgr,
            Bound::Adaptive(l) => &l.cheap,
            _ => return,
        };
        let mu = lgr.multipliers();
        let num_static = instance.num_constraints();
        self.lgr_zero_mu.clear();
        for (k, row) in self.method_rows.rows().iter().enumerate() {
            if mu.get(num_static + k).is_none_or(|m| m.abs() <= LGR_MU_ZERO) {
                self.lgr_zero_mu.push(row.constraint.clone());
            }
        }
    }

    /// Rebuilds both registries from `cuts` plus the engine's current
    /// LBD-best short learned clauses, and installs the method-filtered
    /// region into the residual state / LP relaxation.
    fn rebuild_regions(&mut self, instance: &Instance, engine: &Engine, cuts: &[PbConstraint]) {
        self.snapshot_lgr_zero_mu(instance);
        self.rows.begin_epoch();
        for (i, cut) in cuts.iter().enumerate() {
            let origin =
                if i == 0 { DynRowOrigin::ObjectiveCut } else { DynRowOrigin::CardinalityCut };
            self.rows.push(cut.clone(), origin);
        }
        // Under taint tracking (a cube worker with clause sharing on)
        // only assumption-clean clauses may enter the region: a bound
        // conflict derived through a promoted row is tainted only by the
        // literals the explanation mentions, so a cube-dependent row —
        // valid under the cube beyond what its literals say — would let
        // a cube-dependent learned clause escape into the shareable set
        // untainted. Imported pool clauses (already globally valid) pass
        // the filter and flow into the region as the pool intends.
        let exclude = if engine.taint_tracking() { Taint::ASSUMPTION } else { Taint::NONE };
        for lits in engine.export_learnts_excluding(PROMOTE_MAX_LEN, PROMOTE_MAX_COUNT, exclude) {
            self.rows.push(PbConstraint::clause(lits), DynRowOrigin::PromotedClause);
        }
        self.method_rows.begin_epoch();
        for row in self.rows.rows() {
            if self.keep_for_method(row) {
                self.method_rows.push(row.constraint.clone(), row.origin);
            }
        }
        if let Some(state) = &mut self.residual {
            state.set_dynamic_rows(&self.method_rows);
        }
        match &mut self.bound {
            Bound::Lpr(lpr) => lpr.install_rows(instance, &self.method_rows),
            Bound::Adaptive(l) => l.lpr.install_rows(instance, &self.method_rows),
            _ => {}
        }
    }

    /// Re-roots the dynamic-row region for a new incumbent: the freshly
    /// installed cost cuts plus the engine's best short learned clauses
    /// become the new region, the residual state swaps to it in
    /// O(region), and the LP relaxation is rebuilt with the rows
    /// appended (once per incumbent — per-node solves stay warm).
    pub fn reroot(&mut self, instance: &Instance, engine: &Engine, cuts: &[PbConstraint]) {
        if !self.dynamic_enabled {
            return;
        }
        self.last_cuts.clear();
        self.last_cuts.extend_from_slice(cuts);
        self.rebuild_regions(instance, engine, cuts);
    }

    /// Refreshes the promoted-clause portion of the region after a
    /// search restart: same cost cuts, freshly exported (LBD-best)
    /// learned clauses. A no-op before the first re-root — promoted
    /// clauses learned under installed cuts are incumbent-conditional,
    /// so the region only ever exists alongside an incumbent. Returns
    /// `true` when the region was rebuilt (so the caller can republish
    /// the cut pool).
    pub fn refresh_on_restart(&mut self, instance: &Instance, engine: &Engine) -> bool {
        if !self.dynamic_enabled || self.rows.epoch() == 0 {
            return false;
        }
        let cuts = std::mem::take(&mut self.last_cuts);
        self.rebuild_regions(instance, engine, &cuts);
        self.last_cuts = cuts;
        true
    }

    /// Computes the lower bound at the current node: syncs the residual
    /// state (and the LP mirror) to the engine trail in O(Δ), produces
    /// the view — dynamic rows included — and runs the bound procedure
    /// into the pipeline's reusable outcome (read it back through
    /// [`BoundPipeline::last_outcome`]; no allocation at steady state).
    pub fn compute(
        &mut self,
        engine: &mut Engine,
        instance: &Instance,
        upper: Option<i64>,
        stats: &mut SolverStats,
    ) {
        let sub_start = Instant::now();
        let BoundPipeline {
            bound,
            residual,
            residual_obs,
            lpr_obs,
            method_rows,
            out,
            method,
            tracer,
            ..
        } = self;
        // Keep the LP bound's variable fixings in lockstep with the
        // trail (O(Δ) per node) through its own observer. The ladder's
        // escalated rung stays synced even at nodes that never escalate
        // — the sync is O(Δ) either way, and a stale mirror would make
        // the *next* escalation O(trail).
        let lpr_mirror = match &mut *bound {
            Bound::Lpr(lpr) => Some(lpr.as_mut()),
            Bound::Adaptive(l) => Some(&mut l.lpr),
            _ => None,
        };
        if let (Some(obs), Some(lpr)) = (*lpr_obs, lpr_mirror) {
            let keep = engine.sync_trail(obs, lpr.synced_len());
            lpr.unwind_to(keep);
            for &lit in &engine.trail()[keep..] {
                lpr.apply(lit);
            }
        }
        // Produce the residual view: O(Δ) sync + O(active) snapshot in
        // incremental mode, a full O(instance + region) re-scan in
        // rebuild mode (the differential oracle, dynamic rows included).
        let sub = match (residual.as_mut(), *residual_obs) {
            (Some(state), Some(obs)) => {
                let keep = engine.sync_trail(obs, state.len());
                state.unwind_to(instance, keep);
                for &lit in &engine.trail()[keep..] {
                    state.apply(instance, lit);
                }
                state.view(instance, engine.assignment())
            }
            _ => Subproblem::with_rows(instance, engine.assignment(), method_rows),
        };
        stats.sub_time_total += sub_start.elapsed();
        let path = sub.path_cost();
        // The adaptive ladder runs (and charges, and traces) its own
        // rungs — one or two kernel calls per node.
        if let Bound::Adaptive(ladder) = &mut *bound {
            ladder.compute(&sub, upper, path, out, stats, tracer);
            return;
        }
        let lb_start = Instant::now();
        // Probe sits between starting the bound timer and charging it: a
        // panic here must leave `lb_calls`/`lb_time_total` uncharged, so
        // quarantining the cube never double-counts bound effort.
        failpoint!("bound.dispatch");
        bound.lower_bound_into(&sub, upper, out);
        stats.lb_calls += 1;
        let lb_elapsed = lb_start.elapsed();
        stats.lb_time_total += lb_elapsed;
        let bucket = &mut stats.lb_methods[method_bucket(*method)];
        bucket.calls += 1;
        bucket.time_total += lb_elapsed;
        let pruned = out.infeasible || upper.is_some_and(|u| out.prunes(u));
        bucket.prunes += u64::from(pruned);
        if !out.infeasible {
            stats.lb_margin_sum += out.bound.saturating_sub(path).max(0) as u64;
        }
        if tracer.enabled() {
            let outcome = if out.infeasible {
                pbo_trace::BoundOutcome::Infeasible
            } else if upper.is_some_and(|u| out.prunes(u)) {
                pbo_trace::BoundOutcome::Pruned
            } else {
                pbo_trace::BoundOutcome::Open
            };
            let margin = if out.infeasible { 0 } else { out.bound.saturating_sub(path).max(0) };
            tracer.emit(pbo_trace::TraceEvent::Bound {
                method: method.name(),
                stage: "fixed",
                outcome,
                margin,
                dur_ns: u64::try_from(lb_elapsed.as_nanos()).unwrap_or(u64::MAX),
            });
        }
    }

    /// The outcome of the most recent [`BoundPipeline::compute`] call
    /// (borrowable independently of the engine).
    pub fn last_outcome(&self) -> &LbOutcome {
        &self.out
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod fault_tests {
    use super::*;
    use pbo_core::InstanceBuilder;

    /// A panic at the bound dispatch leaves the pipeline's stats exactly
    /// as they were: the probe sits after `lb_start` but before
    /// `lb_calls`/`lb_time_total` are charged, so an unwound bound call
    /// is never half-accounted — and the pipeline stays usable after.
    #[test]
    fn bound_dispatch_panic_leaves_stats_consistent() {
        let mut b = InstanceBuilder::new();
        let x = b.new_vars(3);
        b.add_at_least(1, [x[0].positive(), x[1].positive()]);
        b.add_at_least(1, [x[1].positive(), x[2].positive()]);
        b.minimize(x.iter().map(|v| (1, v.positive())));
        let inst = b.build().unwrap();
        let options = BsoloOptions::with_lb(LbMethod::Mis);
        let mut engine = Engine::new(inst.num_vars());
        for c in inst.constraints() {
            engine.add_constraint(c).unwrap();
        }
        let mut pipeline = BoundPipeline::new(&inst, &options, &mut engine);
        let mut stats = SolverStats::default();

        pipeline.compute(&mut engine, &inst, None, &mut stats);
        assert_eq!(stats.lb_calls, 1);
        let charged_calls = stats.lb_calls;
        let charged_time = stats.lb_time_total;

        let guard = pbo_fault::install(pbo_fault::FaultPlan::new().panic_on("bound.dispatch", 1));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline.compute(&mut engine, &inst, None, &mut stats);
        }));
        assert!(unwound.is_err(), "armed probe must fire");
        drop(guard);
        assert_eq!(stats.lb_calls, charged_calls, "unwound call must not be counted");
        assert_eq!(stats.lb_time_total, charged_time, "unwound call must not be charged");

        // The pipeline (residual state, LP mirror, outcome slot) is
        // still consistent: the next call computes a real bound.
        pipeline.compute(&mut engine, &inst, None, &mut stats);
        assert_eq!(stats.lb_calls, charged_calls + 1);
        assert!(stats.lb_time_total >= charged_time);
        assert!(!pipeline.last_outcome().infeasible);
        assert!(pipeline.last_outcome().bound >= 1, "two disjoint covers force cost >= 1");
    }

    /// The `bound.escalate` probe sits between the cheap rung's
    /// (committed) charge and the LP dispatch: an unwind there leaves
    /// the cheap rung fully charged and the LP rung fully uncharged —
    /// neither bucket is ever half-accounted — and the ladder stays
    /// usable.
    #[test]
    fn bound_escalate_panic_never_half_charges_either_rung() {
        let mut b = InstanceBuilder::new();
        let x = b.new_vars(3);
        b.add_at_least(1, [x[0].positive(), x[1].positive()]);
        b.add_at_least(1, [x[1].positive(), x[2].positive()]);
        b.minimize(x.iter().map(|v| (1, v.positive())));
        let inst = b.build().unwrap();
        let options = BsoloOptions::with_lb(LbMethod::Adaptive);
        let mut engine = Engine::new(inst.num_vars());
        for c in inst.constraints() {
            engine.add_constraint(c).unwrap();
        }
        let mut pipeline = BoundPipeline::new(&inst, &options, &mut engine);
        let mut stats = SolverStats::default();

        // Pre-incumbent nodes escalate straight to the LP rung: a panic
        // at the probe must leave *nothing* charged.
        let guard = pbo_fault::install(pbo_fault::FaultPlan::new().panic_on("bound.escalate", 1));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline.compute(&mut engine, &inst, None, &mut stats);
        }));
        assert!(unwound.is_err(), "armed probe must fire");
        drop(guard);
        assert_eq!(stats.lb_calls, 0, "no rung ran, none may be counted");
        assert_eq!(stats.lb_methods[3].calls, 0, "LP rung must stay uncharged");
        assert_eq!(stats.lb_time_total, std::time::Duration::ZERO);
        assert_eq!(stats.lb_escalations, 1, "the escalation decision itself is recorded");

        // Recovery: the next pre-incumbent call runs and charges the LP
        // rung exactly once.
        pipeline.compute(&mut engine, &inst, None, &mut stats);
        assert_eq!(stats.lb_calls, 1);
        assert_eq!(stats.lb_methods[3].calls, 1);
        assert_eq!(stats.lb_escalations, 2);

        // Post-incumbent: walk the probe cadence to the next forced
        // escalation (16 open cheap calls) and panic there — the cheap
        // rung's charge must stand, the LP rung's must not exist.
        let upper = Some(4); // total cost + 1: every cheap call stays open
        for _ in 0..15 {
            pipeline.compute(&mut engine, &inst, upper, &mut stats);
            assert_eq!(stats.lb_escalations, 2, "loose upper must not escalate early");
        }
        assert_eq!(stats.lb_methods[2].calls, 15);
        let guard = pbo_fault::install(pbo_fault::FaultPlan::new().panic_on("bound.escalate", 1));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline.compute(&mut engine, &inst, upper, &mut stats);
        }));
        assert!(unwound.is_err(), "probe-cadence escalation must fire the armed probe");
        drop(guard);
        assert_eq!(stats.lb_methods[2].calls, 16, "cheap rung stays fully charged");
        assert_eq!(stats.lb_methods[3].calls, 1, "LP rung stays fully uncharged");
        assert_eq!(stats.lb_escalations, 3);
        let calls: u64 = stats.lb_methods.iter().map(|m| m.calls).sum();
        assert_eq!(calls, stats.lb_calls, "buckets reconcile after the unwind");

        // Still consistent: the next gated call computes a real bound.
        pipeline.compute(&mut engine, &inst, upper, &mut stats);
        assert_eq!(stats.lb_methods[2].calls, 17);
        assert!(!pipeline.last_outcome().infeasible);
    }
}
