//! The adaptive bound ladder ([`crate::LbMethod::Adaptive`]): run the
//! cheap Lagrangian rung at every gated node and *escalate* to the LP
//! relaxation only where it can plausibly change the search — when the
//! cheap bound lands inside an online escalation window below the
//! incumbent — plus a deterministic probe cadence so a drifting window
//! never starves the LP rung entirely.
//!
//! The reported outcome is the **max** of the rungs actually run (any
//! valid lower bound may be replaced by a larger valid lower bound), so
//! the ladder is as sound as its strongest member and never weaker than
//! fixed LGR.
//!
//! # Policy
//!
//! All escalation decisions key on *deterministic* quantities — bound
//! margins and call counters, in fixed-point integer arithmetic — so a
//! `deterministic_join` run reproduces its escalation sequence exactly.
//! The only wall-clock input is an EMA of the two rungs' kernel times
//! that widens the probe-cadence cap when the LP rung is vastly more
//! expensive than the cheap rung, and it is disabled outright under
//! `deterministic_join`.
//!
//! * **Escalation window.** An EMA of the observed LPR-over-LGR bound
//!   gain (`x1024` fixed point). A node escalates when
//!   `slack = upper - cheap_bound <= 1.5 * ema_gain + 1`: if the LP
//!   typically gains that much, it can close this node.
//! * **Probe cadence.** Every `probe_interval` open cheap calls one node
//!   escalates regardless of the window, keeping the gain EMA honest.
//!   The interval halves (floor 16) when an escalation prunes and
//!   doubles (cap 256, or 512 when the wall-clock EMA says LPR is ≫
//!   more expensive) when it does not.
//! * **Frequency stretch.** The ladder extends the pipeline's
//!   [`tick`](crate::pipeline::BoundPipeline::tick) gate: over a rolling
//!   256-call window of cheap-rung outcomes, a prune rate below ~3%
//!   doubles the effective `lb_frequency` (cap 4x) and a rate above
//!   ~12.5% restores it — counters only, deterministic in every mode.

use std::time::Instant;

use pbo_bounds::{LagrangianBound, LbOutcome, LowerBound, LprBound, Subproblem};
use pbo_core::Instance;
use pbo_fault::failpoint;

use crate::result::SolverStats;

/// `lb_methods` bucket of the cheap rung (see
/// [`crate::result::LB_METHOD_NAMES`]).
const LGR_BUCKET: usize = 2;
/// `lb_methods` bucket of the escalated rung.
const LPR_BUCKET: usize = 3;

/// EMA smoothing: `ema += (sample - ema) / 8` in fixed point.
const EMA_SHIFT: i64 = 8;
/// Probe-cadence bounds.
const PROBE_MIN: u32 = 16;
const PROBE_MAX: u32 = 256;
/// Widened probe cap when the wall-clock EMAs (non-deterministic mode
/// only) report the LP rung costing over 32x the cheap rung.
const PROBE_MAX_EXPENSIVE: u32 = 512;
const LPR_EXPENSIVE_FACTOR: u64 = 32;
/// Rolling window for the frequency stretch, and its rate thresholds.
const STRETCH_WINDOW: u32 = 256;
const STRETCH_LOW_PRUNES: u32 = 8; // < ~3% of 256: bound rarely acts
const STRETCH_HIGH_PRUNES: u32 = 32; // > ~12.5%: bound is earning its keep
const STRETCH_MAX: u32 = 4;

/// Pins the ladder to a single rung for differential tests: the pinned
/// rung runs at every gated node with no policy in the loop, so the
/// outcome sequence must be bit-identical to the fixed method's.
#[cfg(test)]
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum Rung {
    /// Cheap rung only (must match fixed [`crate::LbMethod::Lagrangian`]).
    Cheap,
    /// LP rung only (must match fixed [`crate::LbMethod::Lpr`]).
    Lpr,
}

/// Escalation policy state (see the module docs).
#[derive(Debug)]
struct LadderPolicy {
    /// EMA of the LPR-over-cheap bound gain, x1024 fixed point.
    ema_gain: i64,
    /// Open cheap calls between forced probe escalations.
    probe_interval: u32,
    since_probe: u32,
    /// Wall-time EMAs of the two rungs' kernels (ns); advisory only,
    /// never updated or consulted under `deterministic_join`.
    ema_cheap_ns: u64,
    ema_lpr_ns: u64,
    deterministic: bool,
    /// Frequency-stretch state.
    stretch: u32,
    window_calls: u32,
    window_prunes: u32,
}

impl LadderPolicy {
    fn new(deterministic: bool) -> LadderPolicy {
        LadderPolicy {
            ema_gain: 0,
            probe_interval: PROBE_MIN,
            since_probe: 0,
            ema_cheap_ns: 0,
            ema_lpr_ns: 0,
            deterministic,
            stretch: 1,
            window_calls: 0,
            window_prunes: 0,
        }
    }

    /// Escalation window in bound units: `1.5 * ema_gain + 1`.
    fn window(&self) -> i64 {
        (self.ema_gain + self.ema_gain / 2) / 1024 + 1
    }

    fn probe_cap(&self) -> u32 {
        if !self.deterministic && self.ema_lpr_ns > LPR_EXPENSIVE_FACTOR * self.ema_cheap_ns.max(1)
        {
            PROBE_MAX_EXPENSIVE
        } else {
            PROBE_MAX
        }
    }

    /// Decides whether an open cheap call with `slack = upper - bound`
    /// escalates; returns the window it was compared against.
    fn decide(&mut self, slack: i64) -> Option<i64> {
        self.since_probe += 1;
        let window = self.window();
        if slack <= window || self.since_probe >= self.probe_interval {
            self.since_probe = 0;
            Some(window)
        } else {
            None
        }
    }

    /// Folds one cheap-rung outcome into the frequency-stretch window
    /// and the (advisory) wall-time EMA.
    fn record_cheap(&mut self, pruned: bool, dur_ns: u64) {
        if !self.deterministic {
            self.ema_cheap_ns = self.ema_cheap_ns + (dur_ns.saturating_sub(self.ema_cheap_ns)) / 8
                - (self.ema_cheap_ns.saturating_sub(dur_ns)) / 8;
        }
        self.window_calls += 1;
        self.window_prunes += u32::from(pruned);
        if self.window_calls >= STRETCH_WINDOW {
            if self.window_prunes < STRETCH_LOW_PRUNES {
                self.stretch = (self.stretch * 2).min(STRETCH_MAX);
            } else if self.window_prunes >= STRETCH_HIGH_PRUNES {
                self.stretch = 1;
            }
            self.window_calls = 0;
            self.window_prunes = 0;
        }
    }

    /// Folds one escalated LPR outcome into the gain EMA and the probe
    /// cadence. `gain` is the bound improvement over the cheap rung.
    fn record_escalation(&mut self, gain: i64, pruned: bool, dur_ns: u64) {
        if !self.deterministic {
            self.ema_lpr_ns = self.ema_lpr_ns + (dur_ns.saturating_sub(self.ema_lpr_ns)) / 8
                - (self.ema_lpr_ns.saturating_sub(dur_ns)) / 8;
        }
        let sample = gain.clamp(0, i64::MAX / 2048) * 1024;
        self.ema_gain += (sample - self.ema_gain) / EMA_SHIFT;
        if pruned {
            self.probe_interval = (self.probe_interval / 2).max(PROBE_MIN);
        } else {
            self.probe_interval = (self.probe_interval * 2).min(self.probe_cap());
        }
    }
}

/// The two-rung ladder: cheap Lagrangian first, LP relaxation on demand.
///
/// Both rungs bound against the *same* method-filtered dynamic-row
/// region (the LGR filter — promoted clauses only; see
/// [`crate::pipeline::BoundPipeline`]): dropping rows is always sound,
/// and the thinner relaxation keeps the escalated LP solve cheap too.
pub(crate) struct AdaptiveLadder {
    /// The cheap rung: warm-started subgradient ascent.
    pub cheap: LagrangianBound,
    /// The escalated rung: warm-started dual simplex.
    pub lpr: LprBound,
    policy: LadderPolicy,
    /// Scratch slot holding the cheap rung's outcome while the LP rung
    /// runs, so the max-merge reuses both explanation buffers.
    cheap_out: LbOutcome,
    /// Single-rung pin for differential tests.
    #[cfg(test)]
    pub pin: Option<Rung>,
}

impl AdaptiveLadder {
    pub fn new(instance: &Instance, deterministic: bool) -> AdaptiveLadder {
        AdaptiveLadder {
            cheap: LagrangianBound::new(instance.num_constraints()),
            lpr: LprBound::new(instance),
            policy: LadderPolicy::new(deterministic),
            cheap_out: LbOutcome::bound(0, Vec::new()),
            #[cfg(test)]
            pin: None,
        }
    }

    /// Current frequency-stretch multiplier for the pipeline's `tick`.
    pub fn stretch(&self) -> u32 {
        #[cfg(test)]
        if self.pin.is_some() {
            return 1;
        }
        self.policy.stretch
    }

    /// Whether the ladder may act pre-incumbent (pre-incumbent nodes
    /// skip straight to the LP rung, whose Farkas certificate can prove
    /// a subtree infeasible — the cheap rung cannot).
    pub fn can_act_pre_incumbent(&self) -> bool {
        #[cfg(test)]
        if self.pin == Some(Rung::Cheap) {
            return false; // match fixed LGR's gating exactly
        }
        true
    }

    /// Runs the ladder at one node: the cheap rung, the escalation
    /// decision, and (maybe) the LP rung, leaving the max outcome in
    /// `out`. Each rung charges its own `lb_methods` bucket, increments
    /// `lb_calls` and emits one stage-tagged `Bound` event, so the
    /// per-method stats, the global counters and the trace reconcile
    /// exactly (an escalated node is two calls, two events, two bucket
    /// charges).
    pub fn compute(
        &mut self,
        sub: &Subproblem<'_>,
        upper: Option<i64>,
        path: i64,
        out: &mut LbOutcome,
        stats: &mut SolverStats,
        tracer: &pbo_trace::Tracer,
    ) {
        #[cfg(test)]
        if let Some(pin) = self.pin {
            let start = Instant::now();
            failpoint!("bound.dispatch");
            match pin {
                Rung::Cheap => self.cheap.lower_bound_into(sub, upper, out),
                Rung::Lpr => self.lpr.lower_bound_into(sub, upper, out),
            }
            let stage = match pin {
                Rung::Cheap => "cheap",
                Rung::Lpr => "escalated",
            };
            let bucket = match pin {
                Rung::Cheap => LGR_BUCKET,
                Rung::Lpr => LPR_BUCKET,
            };
            let elapsed = start.elapsed();
            charge_rung(stats, bucket, elapsed, out, upper, path);
            emit_rung(tracer, method_name(bucket), stage, out, upper, path, elapsed);
            return;
        }

        let (window, slack) = match upper {
            Some(u) => {
                let start = Instant::now();
                // Same contract as the fixed pipeline: a panic at the
                // dispatch probe leaves this rung uncharged.
                failpoint!("bound.dispatch");
                self.cheap.lower_bound_into(sub, Some(u), out);
                let elapsed = start.elapsed();
                let pruned = out.prunes(u);
                charge_rung(stats, LGR_BUCKET, elapsed, out, upper, path);
                emit_rung(tracer, "lgr", "cheap", out, upper, path, elapsed);
                self.policy
                    .record_cheap(pruned, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
                if pruned {
                    return;
                }
                let slack = u - out.bound;
                match self.policy.decide(slack) {
                    Some(window) => (window, slack),
                    None => return,
                }
            }
            // Pre-incumbent: no upper bound to prune against, so the
            // cheap rung is pure overhead — escalate directly (the LP's
            // Farkas certificate is the only pre-incumbent value).
            // Recorded as window/slack -1 so the event is recognizable.
            None => (-1, -1),
        };
        stats.lb_escalations += 1;
        tracer.emit(pbo_trace::TraceEvent::Escalate { window, slack });
        // The probe sits between the cheap rung's (already committed)
        // charge and the LP dispatch: an unwind here leaves the cheap
        // rung fully charged and the LP rung fully uncharged — neither
        // bucket is ever half-accounted.
        failpoint!("bound.escalate");
        // Park the cheap outcome in the scratch slot (buffer swap, no
        // allocation) and run the LP rung into `out`.
        std::mem::swap(out, &mut self.cheap_out);
        let start = Instant::now();
        self.lpr.lower_bound_into(sub, upper, out);
        let elapsed = start.elapsed();
        charge_rung(stats, LPR_BUCKET, elapsed, out, upper, path);
        emit_rung(tracer, "lpr", "escalated", out, upper, path, elapsed);
        if let Some(u) = upper {
            let pruned = out.prunes(u);
            // Gain sample: how much further than the cheap rung the LP
            // reached. A prune closed the whole remaining slack (at
            // least), infeasibility included.
            let gain =
                if pruned { slack.max(0) + 1 } else { (out.bound - self.cheap_out.bound).max(0) };
            self.policy.record_escalation(
                gain,
                pruned,
                u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            );
            // Max-merge: the ladder reports the strongest rung, and the
            // explanation must be the one that proved it — swap the
            // cheap outcome back when it won.
            if !out.infeasible && self.cheap_out.bound > out.bound {
                std::mem::swap(out, &mut self.cheap_out);
            }
        }
    }
}

#[cfg(test)]
fn method_name(bucket: usize) -> &'static str {
    crate::result::LB_METHOD_NAMES[bucket]
}

/// Charges one rung's call to the global and per-method counters.
fn charge_rung(
    stats: &mut SolverStats,
    bucket: usize,
    elapsed: std::time::Duration,
    out: &LbOutcome,
    upper: Option<i64>,
    path: i64,
) {
    stats.lb_calls += 1;
    stats.lb_time_total += elapsed;
    let m = &mut stats.lb_methods[bucket];
    m.calls += 1;
    m.time_total += elapsed;
    let pruned = out.infeasible || upper.is_some_and(|u| out.prunes(u));
    m.prunes += u64::from(pruned);
    if !out.infeasible {
        stats.lb_margin_sum += out.bound.saturating_sub(path).max(0) as u64;
    }
}

/// Emits one stage-tagged `Bound` event for a rung (no-op when tracing
/// is off).
fn emit_rung(
    tracer: &pbo_trace::Tracer,
    method: &'static str,
    stage: &'static str,
    out: &LbOutcome,
    upper: Option<i64>,
    path: i64,
    elapsed: std::time::Duration,
) {
    if !tracer.enabled() {
        return;
    }
    let outcome = if out.infeasible {
        pbo_trace::BoundOutcome::Infeasible
    } else if upper.is_some_and(|u| out.prunes(u)) {
        pbo_trace::BoundOutcome::Pruned
    } else {
        pbo_trace::BoundOutcome::Open
    };
    let margin = if out.infeasible { 0 } else { out.bound.saturating_sub(path).max(0) };
    tracer.emit(pbo_trace::TraceEvent::Bound {
        method,
        stage,
        outcome,
        margin,
        dur_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
    });
}
