//! Pseudo-Boolean optimizers: the DATE'05 *bsolo* solver and the three
//! baselines it is evaluated against.
//!
//! * [`Bsolo`] — SAT-based branch-and-bound with pluggable lower
//!   bounding ([`LbMethod`]: plain / MIS / Lagrangian / LPR / adaptive
//!   ladder),
//!   bound-conflict learning with non-chronological backtracking
//!   (sec. 4), LP-guided branching and the cost cuts of sec. 5. This is
//!   the paper's contribution.
//! * [`LinearSearch`] — SAT linear search on the cost function, in
//!   PBS-like and Galena-like presets (no lower bounding).
//! * [`MilpSolver`] — LP branch-and-bound without SAT machinery (the
//!   CPLEX stand-in).
//! * [`ParBsolo`] — parallel exact search: the root is split into
//!   [`Cube`]s (decision-literal prefixes) and N workers solve the
//!   subtrees over the shared term arena, racing through one
//!   [`IncumbentCell`]; one worker is bit-identical to [`Bsolo`].
//! * [`Portfolio`] — the anytime driver: `pbo-ls` stochastic local
//!   search seeding or racing the exact side (sequential or parallel,
//!   [`PortfolioOptions::bb_threads`]) through a shared
//!   [`IncumbentCell`], incumbents flowing both ways ([`SolveStrategy`]).
//!
//! All solvers consume a [`pbo_core::Instance`], honour a [`Budget`] and
//! report a [`SolveResult`] with effort statistics, so the benchmark
//! harness can reproduce the paper's Table 1 with consistent accounting.
//!
//! # Examples
//!
//! Solve a weighted covering problem with every solver and agree on the
//! optimum:
//!
//! ```
//! use pbo_core::InstanceBuilder;
//! use pbo_solver::{Bsolo, Budget, LbMethod, LinearSearch, MilpSolver};
//!
//! let mut b = InstanceBuilder::new();
//! let v = b.new_vars(3);
//! b.add_clause([v[0].positive(), v[1].positive()]);
//! b.add_clause([v[1].positive(), v[2].positive()]);
//! b.minimize([(2, v[0].positive()), (3, v[1].positive()), (2, v[2].positive())]);
//! let inst = b.build()?;
//!
//! for cost in [
//!     Bsolo::with_lb(LbMethod::Lpr).solve(&inst).best_cost,
//!     LinearSearch::pbs_like(Budget::unlimited()).solve(&inst).best_cost,
//!     MilpSolver::new(Budget::unlimited()).solve(&inst).best_cost,
//! ] {
//!     assert_eq!(cost, Some(3));
//! }
//! # Ok::<(), pbo_core::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bsolo;
mod cuts;
mod ladder;
mod linear_search;
mod milp;
mod options;
mod par;
mod pipeline;
mod portfolio;
mod preprocess;
mod result;
mod share;

pub use bsolo::Bsolo;
pub use cuts::{cardinality_cost_cuts, cost_cuts, knapsack_cut};
pub use linear_search::{LinearSearch, LinearSearchOptions};
pub use milp::{MilpOptions, MilpSolver};
pub use options::{
    Branching, BsoloOptions, Budget, LbMethod, ResidualMode, SchedulerKind, SolveStrategy,
};
pub use par::{Cube, CubeSplitter, ParBsolo, SplitOutcome};
pub use portfolio::{
    diversified_options, run_pool_steps, IncumbentCell, LocalSearch, LsOptions, LsResult, LsStats,
    PoolResult, Portfolio, PortfolioOptions, SharedCut,
};
pub use preprocess::{probe, simplify, ProbeOutcome};
pub use result::{
    LbMethodStats, ServiceStatus, SolveResult, SolveStatus, SolverStats, LB_METHOD_NAMES,
};
pub use share::{ClausePool, PoolHandle, PoolWatermarks, SharedClause};

#[cfg(test)]
mod ladder_tests;
#[cfg(test)]
mod solver_tests;
#[cfg(test)]
mod trace_tests;
