//! Differential tests for the adaptive bound ladder: pinned to a single
//! rung it must be bit-identical to the fixed method it is built from,
//! and unpinned its per-node outcome must equal the max of the rungs it
//! actually ran — checked against fixed-method oracle kernels driven in
//! lockstep.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use pbo_bounds::{DynamicRows, LagrangianBound, LbOutcome, LowerBound, LprBound, Subproblem};
use pbo_core::{Instance, InstanceBuilder, Value, Var};
use pbo_engine::Engine;

use crate::ladder::Rung;
use crate::options::ResidualMode;
use crate::pipeline::BoundPipeline;
use crate::result::SolverStats;
use crate::{BsoloOptions, LbMethod};

/// Random covering instance: `at_least` rows over positive literals
/// only, so deciding any variable *true* can never conflict — the test
/// driver walks a decision prefix without needing conflict resolution.
fn covering_instance(rng: &mut ChaCha8Rng) -> Instance {
    let n = rng.gen_range(8..=12);
    let mut b = InstanceBuilder::new();
    let vars = b.new_vars(n);
    let m = rng.gen_range(4..9);
    for _ in 0..m {
        let k = rng.gen_range(2..=4.min(n));
        let mut idxs: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            idxs.swap(i, j);
        }
        let need = rng.gen_range(1..=2.min(k as i64));
        b.add_at_least(need, idxs[..k].iter().map(|&i| vars[i].positive()));
    }
    b.minimize(vars.iter().map(|v| (rng.gen_range(1..6), v.positive())));
    b.build().unwrap()
}

fn engine_for(inst: &Instance) -> Engine {
    let mut engine = Engine::new(inst.num_vars());
    for c in inst.constraints() {
        engine.add_constraint(c).unwrap();
    }
    engine
}

fn total_cost(inst: &Instance) -> i64 {
    inst.objective().expect("optimization").terms().iter().map(|&(c, _)| c).sum()
}

/// Drives one pipeline down a fixed decision prefix with a shrinking
/// upper bound, collecting the outcome of every `compute` call.
fn outcome_sequence(
    inst: &Instance,
    method: LbMethod,
    pin: Option<Rung>,
    uppers: &[Option<i64>],
) -> (Vec<LbOutcome>, SolverStats) {
    let options = BsoloOptions::with_lb(method);
    let mut engine = engine_for(inst);
    let mut pipeline = BoundPipeline::new(inst, &options, &mut engine);
    if let Some(rung) = pin {
        pipeline.ladder_mut().expect("adaptive pipeline").pin = Some(rung);
    }
    let mut stats = SolverStats::default();
    let mut seq = Vec::new();
    for (i, &upper) in uppers.iter().enumerate() {
        // Deepen the prefix by one conflict-free decision per step.
        let var = Var::new(i % inst.num_vars());
        if engine.assignment().value(var) == Value::Unassigned {
            engine.decide(var.positive());
            assert!(engine.propagate().is_none(), "positive decisions cannot conflict");
        }
        pipeline.compute(&mut engine, inst, upper, &mut stats);
        seq.push(pipeline.last_outcome().clone());
    }
    (seq, stats)
}

/// Upper-bound schedule mixing loose, shrinking and tight values (the
/// tight tail forces margin-window escalations).
fn upper_schedule(inst: &Instance) -> Vec<Option<i64>> {
    let total = total_cost(inst);
    let steps = 7i64;
    (0..steps).map(|i| Some((total + 1 - i * (total / steps + 1)).max(1))).collect()
}

#[test]
fn pinned_cheap_rung_is_bit_identical_to_fixed_lgr() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xadb1);
    for round in 0..12 {
        let inst = covering_instance(&mut rng);
        let uppers = upper_schedule(&inst);
        let (fixed, fixed_stats) = outcome_sequence(&inst, LbMethod::Lagrangian, None, &uppers);
        let (pinned, pinned_stats) =
            outcome_sequence(&inst, LbMethod::Adaptive, Some(Rung::Cheap), &uppers);
        assert_eq!(fixed, pinned, "round {round}: pinned cheap rung drifted from fixed LGR");
        assert_eq!(
            fixed_stats.lb_methods[2].calls, pinned_stats.lb_methods[2].calls,
            "round {round}: lgr bucket calls"
        );
        assert_eq!(pinned_stats.lb_methods[3].calls, 0, "round {round}: pinned cheap ran LPR");
        assert_eq!(pinned_stats.lb_escalations, 0, "round {round}: pinned ladder escalated");
    }
}

#[test]
fn pinned_lpr_rung_is_bit_identical_to_fixed_lpr() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xadb2);
    for round in 0..12 {
        let inst = covering_instance(&mut rng);
        let uppers = upper_schedule(&inst);
        let (fixed, fixed_stats) = outcome_sequence(&inst, LbMethod::Lpr, None, &uppers);
        let (pinned, pinned_stats) =
            outcome_sequence(&inst, LbMethod::Adaptive, Some(Rung::Lpr), &uppers);
        assert_eq!(fixed, pinned, "round {round}: pinned LPR rung drifted from fixed LPR");
        assert_eq!(
            fixed_stats.lb_methods[3].calls, pinned_stats.lb_methods[3].calls,
            "round {round}: lpr bucket calls"
        );
        assert_eq!(pinned_stats.lb_methods[2].calls, 0, "round {round}: pinned LPR ran cheap");
    }
}

/// The soundness contract: at every node the adaptive outcome equals
/// the strongest of the rungs that actually ran, verified against
/// oracle kernels (fresh `LagrangianBound` / `LprBound`) driven on
/// exactly the same call sequence so their warm-start state stays in
/// lockstep with the ladder's.
#[test]
fn adaptive_outcome_is_max_of_rungs_actually_run() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xadb3);
    let mut escalated_total = 0u64;
    let mut open_total = 0u64;
    for round in 0..12 {
        let inst = covering_instance(&mut rng);
        // Rebuild mode makes the pipeline's view construction identical
        // to the oracle's `Subproblem::with_rows` (no incremental
        // residual state in the comparison).
        let mut options = BsoloOptions::with_lb(LbMethod::Adaptive);
        options.residual_mode = ResidualMode::Rebuild;
        let mut engine = engine_for(&inst);
        let mut pipeline = BoundPipeline::new(&inst, &options, &mut engine);
        let mut stats = SolverStats::default();
        let mut oracle_lgr = LagrangianBound::new(inst.num_constraints());
        let mut oracle_lpr = LprBound::new(&inst);
        let rows = DynamicRows::for_instance(&inst);
        let mut og = LbOutcome::bound(0, Vec::new());
        let mut ol = LbOutcome::bound(0, Vec::new());

        let total = total_cost(&inst);
        // Pre-incumbent probe first (escalates straight to LPR), then
        // the shrinking-upper walk.
        let mut uppers = vec![None];
        uppers.extend(upper_schedule(&inst));
        for (i, &upper) in uppers.iter().enumerate() {
            if i > 0 {
                let var = Var::new((i - 1) % inst.num_vars());
                if engine.assignment().value(var) == Value::Unassigned {
                    engine.decide(var.positive());
                    assert!(engine.propagate().is_none());
                }
            }
            let before = stats.lb_escalations;
            pipeline.compute(&mut engine, &inst, upper, &mut stats);
            let out = pipeline.last_outcome().clone();
            let escalated = stats.lb_escalations > before;
            let sub = Subproblem::with_rows(&inst, engine.assignment(), &rows);
            // Mirror the rung sequence exactly: cheap ran iff an upper
            // existed, LPR ran iff the ladder escalated.
            if upper.is_some() {
                oracle_lgr.lower_bound_into(&sub, upper, &mut og);
            }
            if escalated {
                escalated_total += 1;
                oracle_lpr.lower_bound_into(&sub, upper, &mut ol);
                let expected = if ol.infeasible || upper.is_none() || og.bound <= ol.bound {
                    &ol
                } else {
                    &og
                };
                assert_eq!(
                    &out, expected,
                    "round {round} step {i} (upper {upper:?}, total {total}): \
                     escalated outcome is not the max of the rungs run"
                );
            } else {
                open_total += 1;
                assert_eq!(
                    &out, &og,
                    "round {round} step {i}: non-escalated outcome must be the cheap rung's"
                );
            }
        }
    }
    assert!(escalated_total > 0, "schedule never escalated — test exercises nothing");
    assert!(open_total > 0, "schedule always escalated — window policy untested");
}

/// Escalation accounting: under the ladder, every LPR bucket call is
/// announced by exactly one `lb_escalations` increment, and the bucket
/// totals sum to the global counters.
#[test]
fn ladder_buckets_reconcile_with_global_counters() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xadb4);
    for round in 0..8 {
        let inst = covering_instance(&mut rng);
        let mut uppers = vec![None];
        uppers.extend(upper_schedule(&inst));
        let (_, stats) = outcome_sequence(&inst, LbMethod::Adaptive, None, &uppers);
        let calls: u64 = stats.lb_methods.iter().map(|m| m.calls).sum();
        assert_eq!(calls, stats.lb_calls, "round {round}: bucket calls drifted from lb_calls");
        let time: std::time::Duration = stats.lb_methods.iter().map(|m| m.time_total).sum();
        assert_eq!(time, stats.lb_time_total, "round {round}: bucket time drifted");
        assert_eq!(
            stats.lb_methods[3].calls, stats.lb_escalations,
            "round {round}: every ladder LPR call must be an escalation"
        );
        assert_eq!(stats.lb_methods[0].calls, 0, "round {round}: plain bucket");
        assert_eq!(stats.lb_methods[1].calls, 0, "round {round}: mis bucket");
    }
}
