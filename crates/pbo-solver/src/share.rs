//! Cross-worker shared-clause pool for the parallel exact search.
//!
//! Generalizes the PR-3 cost-cut pool (see [`crate::cuts`] /
//! `IncumbentCell::publish_cuts_for`): where the cut pool broadcasts the
//! handful of *upper-bound* constraints derived from the incumbent, this
//! pool carries the stream of **cube-independent learned clauses** —
//! clauses whose first-UIP derivation never resolved on a root
//! assumption (`Taint::ASSUMPTION` unset, tracked by `pbo-engine`).
//! Such clauses are implied by the instance alone (or by instance ∧
//! cost-bound when stamped, see [`SharedClause::upper`]) and therefore
//! sound to install in *any* worker, whatever cube it owns.
//!
//! Design: **per-publisher lanes**, each an append-only fixed-capacity
//! slot array with a release-stored length. Every publisher (the driver's
//! head start plus each worker) owns exactly one lane, so a publish is a
//! plain slot write + length store — no lock, no CAS, no contention with
//! other publishers. Importers keep a per-lane read watermark
//! ([`PoolWatermarks`]) and poll with N relaxed length loads; only lanes
//! that actually grew are walked. This replaced the PR-6 single
//! `Mutex<Vec>` when thousand-cube frontiers made restart-cadence
//! publish/import a measurable contention point on the one pool lock.
//!
//! The mutex pool deduplicated globally on the sorted literal set; lanes
//! have no shared writer state, so dedup moved to the *importer*: each
//! worker records the keys it has learned or imported (`my_keys` in the
//! search state) and skips re-imports, which gives the same install-once
//! guarantee with purely thread-local state. A clause rediscovered by two
//! workers may now occupy two lane slots — bounded by the per-lane cap —
//! but still installs at most once per importer.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use pbo_core::Lit;
use pbo_fault::failpoint;

/// Hard cap per publisher lane: beyond this, that publisher's publishes
/// are dropped (the pool is a best-effort accelerator; a full lane just
/// means no new sharing from that worker). With one lane per worker the
/// whole pool is bounded by `publishers * LANE_CAP`.
const LANE_CAP: usize = 1024;

/// One clause published to the pool.
#[derive(Clone, Debug)]
pub struct SharedClause {
    /// The literals (a disjunction).
    pub lits: Vec<Lit>,
    /// Literal block distance at learn time (quality hint for importers).
    pub lbd: u32,
    /// `None`: implied by the instance alone. `Some(u)`: implied by
    /// *instance ∧ (cost ≤ u − 1)* — the producer's incumbent cost at
    /// publish time. Sound to import anywhere sharing the same
    /// [`crate::IncumbentCell`], because the incumbent of cost `u` was
    /// offered to the cell *before* any clause conditional on it was
    /// derived, so pruning assignments of cost ≥ `u` can never lose the
    /// global optimum.
    pub upper: Option<i64>,
}

impl SharedClause {
    /// Canonical dedup key: the sorted literal set.
    pub fn key(&self) -> Vec<Lit> {
        let mut k = self.lits.clone();
        k.sort();
        k.dedup();
        k
    }
}

/// One publisher's append-only clause lane: slots are written exactly
/// once by the owning publisher, then exposed by a release store of the
/// new length. Readers pair an acquire length load with `OnceLock::get`,
/// so every visible slot is fully initialized.
#[derive(Debug)]
struct Lane {
    slots: Vec<OnceLock<SharedClause>>,
    len: AtomicUsize,
}

impl Lane {
    fn new() -> Lane {
        let mut slots = Vec::with_capacity(LANE_CAP);
        slots.resize_with(LANE_CAP, OnceLock::new);
        Lane { slots, len: AtomicUsize::new(0) }
    }
}

/// Per-lane read watermarks held by one importer: `marks[lane]` is how
/// many of that lane's clauses the importer has already seen.
#[derive(Clone, Debug, Default)]
pub struct PoolWatermarks {
    marks: Vec<usize>,
}

/// One publisher's view of the pool: the shared pool plus the single
/// lane this publisher is allowed to write. Copy-cheap; a worker builds
/// one at spawn (lane = worker index + 1, the driver owns lane 0).
#[derive(Clone, Copy, Debug)]
pub struct PoolHandle<'a> {
    /// The shared pool.
    pub pool: &'a ClausePool,
    /// Lane this publisher owns. Must be unique per publisher thread —
    /// see [`ClausePool::publish`].
    pub lane: usize,
}

/// The sharded shared-clause pool (see module docs).
#[derive(Debug)]
pub struct ClausePool {
    lanes: Vec<Lane>,
}

impl ClausePool {
    /// Creates a pool with one lane per publisher. For a parallel solve
    /// that is `workers + 1`: lane 0 belongs to the driver (head-start
    /// seed clauses), lanes `1..=N` to the workers.
    pub fn new(publishers: usize) -> ClausePool {
        ClausePool { lanes: (0..publishers.max(1)).map(|_| Lane::new()).collect() }
    }

    /// Number of publisher lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Publishes a batch on the caller's own lane. Returns how many
    /// clauses were accepted (empty clauses and overflow past the lane
    /// cap are dropped). Lock-free: one slot write plus one release
    /// store per accepted clause, and no other publisher is ever
    /// touched. **Each lane must have a single publisher thread**; a
    /// second publisher racing the same lane loses its batch (slot
    /// already set) but cannot corrupt the pool.
    pub fn publish(&self, lane: usize, batch: Vec<SharedClause>) -> u64 {
        // Probe sits before any slot write: an unwinding publisher loses
        // only its own batch — the lane length was never advanced, so
        // importers see a consistent prefix.
        failpoint!("pool.publish");
        let lane = &self.lanes[lane];
        let mut len = lane.len.load(Ordering::Relaxed);
        let mut accepted = 0u64;
        for c in batch {
            if len >= LANE_CAP {
                break;
            }
            if c.lits.is_empty() {
                continue;
            }
            if lane.slots[len].set(c).is_ok() {
                len += 1;
                accepted += 1;
            } else {
                break;
            }
        }
        if accepted > 0 {
            lane.len.store(len, Ordering::Release);
        }
        accepted
    }

    /// Returns every clause published after the caller's watermarks and
    /// advances them — or `None` if the caller is already current. The
    /// up-to-date check is one relaxed length load per lane; no lock is
    /// taken in either case.
    pub fn snapshot_since(&self, seen: &mut PoolWatermarks) -> Option<Vec<SharedClause>> {
        // Probe sits before the watermarks move: an unwinding importer
        // keeps its marks where they were, so a later retry (or a
        // successor worker) re-reads the same clauses instead of
        // skipping them.
        failpoint!("pool.import");
        seen.marks.resize(self.lanes.len(), 0);
        let mut fresh: Vec<SharedClause> = Vec::new();
        for (lane, mark) in self.lanes.iter().zip(seen.marks.iter_mut()) {
            let len = lane.len.load(Ordering::Acquire);
            while *mark < len {
                if let Some(c) = lane.slots[*mark].get() {
                    fresh.push(c.clone());
                }
                *mark += 1;
            }
        }
        if fresh.is_empty() {
            None
        } else {
            Some(fresh)
        }
    }

    /// Total clauses currently pooled, summed over lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.len.load(Ordering::Acquire)).sum()
    }

    /// Returns `true` if nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::new(i, pos)
    }

    fn sc(lits: Vec<Lit>, upper: Option<i64>) -> SharedClause {
        SharedClause { lits, lbd: 2, upper }
    }

    #[test]
    fn publish_and_snapshot_incrementally_across_lanes() {
        let pool = ClausePool::new(3);
        assert!(pool.is_empty());
        let mut marks = PoolWatermarks::default();
        assert!(pool.snapshot_since(&mut marks).is_none());
        let a = vec![lit(0, true), lit(1, false)];
        let b = vec![lit(2, true)];
        assert_eq!(pool.publish(0, vec![sc(a.clone(), None), sc(b.clone(), Some(5))]), 2);
        assert_eq!(pool.publish(2, vec![sc(vec![lit(3, true)], None)]), 1);
        let batch = pool.snapshot_since(&mut marks).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[1].upper, Some(5));
        // Current watermarks: lock-free None.
        assert!(pool.snapshot_since(&mut marks).is_none());
        // A later publish is visible only past the watermarks.
        assert_eq!(pool.publish(1, vec![sc(vec![lit(4, true)], None)]), 1);
        let tail = pool.snapshot_since(&mut marks).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn lane_cap_bounds_growth() {
        let pool = ClausePool::new(2);
        for i in 0..(LANE_CAP + 100) {
            let v = i % 64;
            let tag = i / 64;
            pool.publish(0, vec![sc(vec![lit(v, true), lit(64 + tag, tag % 2 == 0)], None)]);
        }
        assert_eq!(pool.len(), LANE_CAP, "lane 0 capped, lane 1 untouched");
        // The other lane still accepts.
        assert_eq!(pool.publish(1, vec![sc(vec![lit(0, false)], None)]), 1);
        assert_eq!(pool.len(), LANE_CAP + 1);
    }

    #[test]
    fn empty_clauses_rejected() {
        let pool = ClausePool::new(1);
        assert_eq!(pool.publish(0, vec![sc(Vec::new(), None)]), 0);
        assert!(pool.is_empty());
    }

    #[test]
    fn duplicate_clauses_keep_distinct_slots_but_share_a_key() {
        // Global dedup moved to the importer: two publishers of the same
        // clause occupy two slots, and the importer's key set collapses
        // them (see `SearchState::sync_share`).
        let pool = ClausePool::new(2);
        pool.publish(0, vec![sc(vec![lit(0, true), lit(1, false)], None)]);
        pool.publish(1, vec![sc(vec![lit(1, false), lit(0, true)], None)]);
        let mut marks = PoolWatermarks::default();
        let all = pool.snapshot_since(&mut marks).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].key(), all[1].key());
    }

    #[test]
    fn concurrent_publish_and_snapshot() {
        let pool = ClausePool::new(4);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let pool = &pool;
                s.spawn(move || {
                    let mut marks = PoolWatermarks::default();
                    for i in 0..50usize {
                        pool.publish(t, vec![sc(vec![lit(t * 50 + i, true)], None)]);
                        let _ = pool.snapshot_since(&mut marks);
                    }
                });
            }
        });
        assert_eq!(pool.len(), 200);
        let mut marks = PoolWatermarks::default();
        let all = pool.snapshot_since(&mut marks).unwrap();
        assert_eq!(all.len(), 200);
    }
}
