//! Cross-worker shared-clause pool for the parallel exact search.
//!
//! Generalizes the PR-3 cost-cut pool (see [`crate::cuts`] /
//! `IncumbentCell::publish_cuts_for`): where the cut pool broadcasts the
//! handful of *upper-bound* constraints derived from the incumbent, this
//! pool carries the stream of **cube-independent learned clauses** —
//! clauses whose first-UIP derivation never resolved on a root
//! assumption (`Taint::ASSUMPTION` unset, tracked by `pbo-engine`).
//! Such clauses are implied by the instance alone (or by instance ∧
//! cost-bound when stamped, see [`SharedClause::upper`]) and therefore
//! sound to install in *any* worker, whatever cube it owns.
//!
//! Design: an append-only vector under a mutex, with an atomic epoch
//! (= number of entries) read lock-free by workers polling at restarts.
//! Workers remember how far they have read ([`ClausePool::snapshot_since`]
//! returns only the suffix) and the pool deduplicates globally on the
//! sorted literal set, so a clause crosses the pool once no matter how
//! many workers rediscover it.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pbo_core::Lit;

/// Hard cap on pool size: beyond this, publishes are dropped (the pool
/// is a best-effort accelerator; a full pool just means no new sharing).
const POOL_CAP: usize = 4096;

/// One clause published to the pool.
#[derive(Clone, Debug)]
pub struct SharedClause {
    /// The literals (a disjunction).
    pub lits: Vec<Lit>,
    /// Literal block distance at learn time (quality hint for importers).
    pub lbd: u32,
    /// `None`: implied by the instance alone. `Some(u)`: implied by
    /// *instance ∧ (cost ≤ u − 1)* — the producer's incumbent cost at
    /// publish time. Sound to import anywhere sharing the same
    /// [`crate::IncumbentCell`], because the incumbent of cost `u` was
    /// offered to the cell *before* any clause conditional on it was
    /// derived, so pruning assignments of cost ≥ `u` can never lose the
    /// global optimum.
    pub upper: Option<i64>,
}

impl SharedClause {
    /// Canonical dedup key: the sorted literal set.
    pub fn key(&self) -> Vec<Lit> {
        let mut k = self.lits.clone();
        k.sort();
        k.dedup();
        k
    }
}

/// The epoch-stamped shared-clause pool (see module docs).
#[derive(Debug, Default)]
pub struct ClausePool {
    entries: Mutex<PoolState>,
    /// Equals `entries.clauses.len()`; read lock-free so a worker whose
    /// read watermark is current skips the mutex entirely.
    epoch: AtomicU64,
}

#[derive(Debug, Default)]
struct PoolState {
    clauses: Vec<SharedClause>,
    seen: HashSet<Vec<Lit>>,
}

impl ClausePool {
    /// Creates an empty pool.
    pub fn new() -> ClausePool {
        ClausePool::default()
    }

    /// Number of clauses ever accepted (the current epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes a batch, deduplicating against everything already
    /// pooled. Returns how many clauses were accepted.
    pub fn publish(&self, batch: Vec<SharedClause>) -> u64 {
        if batch.is_empty() {
            return 0;
        }
        let mut state = self.lock();
        let mut accepted = 0u64;
        for c in batch {
            if state.clauses.len() >= POOL_CAP {
                break;
            }
            if c.lits.is_empty() {
                continue;
            }
            if state.seen.insert(c.key()) {
                state.clauses.push(c);
                accepted += 1;
            }
        }
        if accepted > 0 {
            self.epoch.store(state.clauses.len() as u64, Ordering::Release);
        }
        accepted
    }

    /// Returns the clauses published after read watermark `seen`, along
    /// with the new watermark — or `None` if the caller is already
    /// current (checked lock-free on the epoch).
    pub fn snapshot_since(&self, seen: usize) -> Option<(usize, Vec<SharedClause>)> {
        if self.epoch.load(Ordering::Acquire) as usize <= seen {
            return None;
        }
        let state = self.lock();
        if state.clauses.len() <= seen {
            return None;
        }
        Some((state.clauses.len(), state.clauses[seen..].to_vec()))
    }

    /// Total clauses currently pooled.
    pub fn len(&self) -> usize {
        self.epoch.load(Ordering::Acquire) as usize
    }

    /// Returns `true` if nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        // A worker that panicked mid-publish leaves the state consistent
        // (push order only); adopt it rather than poisoning every peer.
        self.entries.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::new(i, pos)
    }

    fn sc(lits: Vec<Lit>, upper: Option<i64>) -> SharedClause {
        SharedClause { lits, lbd: 2, upper }
    }

    #[test]
    fn publish_dedups_and_snapshots_incrementally() {
        let pool = ClausePool::new();
        assert!(pool.is_empty());
        assert!(pool.snapshot_since(0).is_none());
        let a = vec![lit(0, true), lit(1, false)];
        let b = vec![lit(2, true)];
        assert_eq!(pool.publish(vec![sc(a.clone(), None), sc(b.clone(), Some(5))]), 2);
        // Same literal set, different order: deduplicated.
        assert_eq!(pool.publish(vec![sc(vec![lit(1, false), lit(0, true)], None)]), 0);
        let (mark, batch) = pool.snapshot_since(0).unwrap();
        assert_eq!(mark, 2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[1].upper, Some(5));
        // Current watermark: lock-free None.
        assert!(pool.snapshot_since(mark).is_none());
        // A later publish is visible only past the watermark.
        assert_eq!(pool.publish(vec![sc(vec![lit(3, true)], None)]), 1);
        let (mark2, tail) = pool.snapshot_since(mark).unwrap();
        assert_eq!(mark2, 3);
        assert_eq!(tail.len(), 1);
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn pool_cap_bounds_growth() {
        let pool = ClausePool::new();
        for i in 0..(POOL_CAP + 100) {
            let v = i % 64;
            let tag = i / 64;
            pool.publish(vec![sc(vec![lit(v, true), lit(64 + tag, tag % 2 == 0)], None)]);
        }
        assert!(pool.len() <= POOL_CAP);
    }

    #[test]
    fn empty_clauses_rejected() {
        let pool = ClausePool::new();
        assert_eq!(pool.publish(vec![sc(Vec::new(), None)]), 0);
        assert!(pool.is_empty());
    }

    #[test]
    fn concurrent_publish_and_snapshot() {
        let pool = ClausePool::new();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..50usize {
                        pool.publish(vec![sc(vec![lit(t * 50 + i, true)], None)]);
                        let _ = pool.snapshot_since(i);
                    }
                });
            }
        });
        assert_eq!(pool.len(), 200);
        let (mark, all) = pool.snapshot_since(0).unwrap();
        assert_eq!(mark, 200);
        assert_eq!(all.len(), 200);
    }
}
