//! SAT-based linear search on the cost function — the algorithm class of
//! PBS (Aloul et al.) and Galena (Chai & Kuehlmann) that the paper
//! compares against (sec. 3).
//!
//! The solver repeatedly runs a CDCL search for *any* solution; each
//! solution of cost `c` adds the constraint `cost <= c - 1` and the
//! search continues until unsatisfiability, which proves the last
//! solution optimal. There is **no lower bounding**: this is exactly the
//! behaviour whose weakness on cost-dominated instances Table 1
//! demonstrates.
//!
//! Two presets reproduce the two baseline columns:
//!
//! * [`LinearSearch::pbs_like`] — plain linear search with clause
//!   learning and Luby restarts;
//! * [`LinearSearch::galena_like`] — additionally probes during
//!   preprocessing and adds the cardinality cost cuts (eqs. 11–13) after
//!   each solution, standing in for Galena's stronger (cutting-plane
//!   flavoured) pseudo-Boolean reasoning. `DESIGN.md` records this
//!   surrogate.

use std::time::Instant;

use pbo_core::Instance;
use pbo_engine::{Engine, LubyRestarts, Resolution};

use crate::cuts::{cardinality_cost_cuts, knapsack_cut};
use crate::options::Budget;
use crate::preprocess::{probe, ProbeOutcome};
use crate::result::{SolveResult, SolveStatus, SolverStats};

/// Configuration of the linear-search solver.
#[derive(Clone, Debug)]
pub struct LinearSearchOptions {
    /// Probing preprocessing.
    pub probing: bool,
    /// Add eqs. 11–13 cost cuts after each improving solution.
    pub cardinality_cuts: bool,
    /// Luby restart base interval in conflicts (`None` disables).
    pub restart_base: Option<u64>,
    /// Reduce the learned-clause database when it exceeds this many
    /// clauses.
    pub reduce_db_threshold: usize,
    /// Resource budget.
    pub budget: Budget,
}

impl Default for LinearSearchOptions {
    fn default() -> LinearSearchOptions {
        LinearSearchOptions {
            probing: false,
            cardinality_cuts: false,
            restart_base: Some(100),
            reduce_db_threshold: 4_000,
            budget: Budget::unlimited(),
        }
    }
}

/// Linear-search PBO solver (no lower bounding).
///
/// # Examples
///
/// ```
/// use pbo_core::InstanceBuilder;
/// use pbo_solver::{Budget, LinearSearch};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(2);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// b.minimize([(2, v[0].positive()), (1, v[1].positive())]);
/// let inst = b.build()?;
/// let result = LinearSearch::pbs_like(Budget::unlimited()).solve(&inst);
/// assert!(result.is_optimal());
/// assert_eq!(result.best_cost, Some(1));
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct LinearSearch {
    options: LinearSearchOptions,
}

impl LinearSearch {
    /// Creates a solver with explicit options.
    pub fn new(options: LinearSearchOptions) -> LinearSearch {
        LinearSearch { options }
    }

    /// The PBS-like preset: plain SAT linear search.
    pub fn pbs_like(budget: Budget) -> LinearSearch {
        LinearSearch::new(LinearSearchOptions { budget, ..LinearSearchOptions::default() })
    }

    /// The Galena-like preset: linear search with probing and
    /// cardinality cost cuts.
    pub fn galena_like(budget: Budget) -> LinearSearch {
        LinearSearch::new(LinearSearchOptions {
            probing: true,
            cardinality_cuts: true,
            budget,
            ..LinearSearchOptions::default()
        })
    }

    /// The active configuration.
    pub fn options(&self) -> &LinearSearchOptions {
        &self.options
    }

    /// Solves `instance` by linear search on the cost function.
    pub fn solve(&self, instance: &Instance) -> SolveResult {
        let start = Instant::now();
        let mut stats = SolverStats::default();
        let finish = |status: SolveStatus,
                      best: Option<(i64, Vec<bool>)>,
                      mut stats: SolverStats,
                      engine: Option<&Engine>| {
            if let Some(e) = engine {
                stats.decisions = e.stats.decisions;
                stats.conflicts = e.stats.conflicts;
                stats.propagations = e.stats.propagations;
                stats.restarts = e.stats.restarts;
                stats.backjump_levels = e.stats.backjump_levels;
            }
            stats.solve_time = start.elapsed();
            let (best_cost, best_assignment) = match best {
                Some((c, a)) => (Some(c), Some(a)),
                None => (None, None),
            };
            SolveResult { status, best_cost, best_assignment, stats }
        };

        let mut engine = Engine::new(instance.num_vars());
        for c in instance.constraints() {
            if engine.add_constraint(c).is_err() {
                return finish(SolveStatus::Infeasible, None, stats, Some(&engine));
            }
        }
        if self.options.probing {
            match probe(instance, &mut engine) {
                ProbeOutcome::Infeasible => {
                    return finish(SolveStatus::Infeasible, None, stats, Some(&engine))
                }
                ProbeOutcome::Done { .. } => {}
            }
        }

        let mut best: Option<(i64, Vec<bool>)> = None;
        let mut restarts = self.options.restart_base.map(LubyRestarts::new);
        let mut conflicts_until_restart = restarts.as_mut().and_then(|r| r.next());
        let mut conflicts_at_last_restart = 0u64;
        let mut active_cuts: Vec<pbo_engine::PbId> = Vec::new();

        loop {
            if self.options.budget.exhausted(
                start.elapsed(),
                engine.stats.conflicts,
                engine.stats.decisions,
            ) {
                let status =
                    if best.is_some() { SolveStatus::Feasible } else { SolveStatus::Unknown };
                return finish(status, best, stats, Some(&engine));
            }
            if let Some(conflict) = engine.propagate() {
                match engine.resolve_conflict(conflict) {
                    Resolution::Unsat => {
                        let status = if best.is_some() {
                            SolveStatus::Optimal
                        } else {
                            SolveStatus::Infeasible
                        };
                        return finish(status, best, stats, Some(&engine));
                    }
                    Resolution::Backjumped { .. } => {
                        if let Some(limit) = conflicts_until_restart {
                            if engine.stats.conflicts - conflicts_at_last_restart >= limit {
                                engine.restart();
                                conflicts_at_last_restart = engine.stats.conflicts;
                                conflicts_until_restart = restarts.as_mut().and_then(|r| r.next());
                            }
                        }
                        if engine.num_learnts() > self.options.reduce_db_threshold {
                            engine.reduce_learnts();
                        }
                        continue;
                    }
                }
            }
            if engine.assignment().is_complete() {
                let model = engine.model();
                debug_assert!(instance.is_feasible(&model));
                let cost = instance.cost_of(&model);
                let improved = best.as_ref().is_none_or(|(b, _)| cost < *b);
                if improved {
                    best = Some((cost, model));
                    stats.solutions_found += 1;
                }
                if !instance.is_optimization() {
                    return finish(SolveStatus::Optimal, best, stats, Some(&engine));
                }
                // Tighten the cost bound (the linear-search step) and
                // restart the SAT search.
                engine.backjump_to(0);
                for id in active_cuts.drain(..) {
                    engine.deactivate_pb(id);
                }
                let upper = best.as_ref().map(|(c, _)| *c).unwrap_or(0);
                let Some(cut) = knapsack_cut(instance, upper) else {
                    return finish(SolveStatus::Optimal, best, stats, Some(&engine));
                };
                match engine.add_pb_cut(&cut) {
                    Ok(id) => active_cuts.push(id),
                    Err(_) => return finish(SolveStatus::Optimal, best, stats, Some(&engine)),
                }
                if self.options.cardinality_cuts {
                    for c in cardinality_cost_cuts(instance, upper) {
                        match engine.add_pb_cut(&c) {
                            Ok(id) => active_cuts.push(id),
                            Err(_) => {
                                return finish(SolveStatus::Optimal, best, stats, Some(&engine))
                            }
                        }
                    }
                }
                continue;
            }
            // Decide by VSIDS with saved phase.
            if let Some(var) = engine.pick_branch_var() {
                engine.decide(var.lit(engine.phase_of(var)));
            }
        }
    }
}
