//! The portfolio driver: stochastic local search racing (or seeding) the
//! exact branch-and-bound, with incumbents flowing both ways.
//!
//! The DATE'05 search prunes a node as soon as `lower bound >= best
//! incumbent`, so a good incumbent *early* is worth as much as a tight
//! lower bound. The `pbo-ls` engine finds near-optimal verified solutions
//! orders of magnitude faster than tree search; this module wires the two
//! together around a shared [`IncumbentCell`]:
//!
//! * **[`SolveStrategy::LsSeeded`]** (default): LS runs first under a
//!   small budget; its best verified solution warm-starts the
//!   branch-and-bound's upper bound and eq. 10 cost cuts. The B&B then
//!   proves optimality (or improves) with the pruning power of a
//!   near-optimal bound from node one.
//! * **[`SolveStrategy::Concurrent`]**: LS keeps running on its own
//!   `std::thread` for the whole solve. Every improving incumbent found
//!   by either side is published to the cell; the B&B adopts external
//!   improvements mid-search (re-rooting its cuts), and LS re-seeds its
//!   restarts from external improvements.
//! * **[`SolveStrategy::Exact`]**: plain branch-and-bound (the paper's
//!   solver), for when reproducibility of the exact search matters more
//!   than anytime behaviour.
//!
//! Every solution crossing a component boundary is re-verified with
//! [`pbo_core::verify_solution`] — the cell stores, it does not vouch.
//!
//! # When to prefer which strategy
//!
//! Under a wall-clock budget where a good solution *now* beats a perfect
//! solution *later* (anytime solving), use `LsSeeded` (deterministic for
//! a fixed LS step budget) or `Concurrent` (best anytime quality, timing
//! dependent). For exact optimization with no budget pressure the warm
//! start rarely hurts and usually shrinks the tree: `LsSeeded` is the
//! default. `Exact` reproduces the paper's solver byte for byte.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use pbo_core::Instance;
use pbo_ls::run_pool_racing_traced;
pub use pbo_ls::{
    diversified_options, run_pool_steps, IncumbentCell, LocalSearch, LsOptions, LsResult, LsStats,
    PoolResult, SharedCut,
};
use pbo_trace::{Tracer, LS_LANE_BASE};

use crate::options::{BsoloOptions, SolveStrategy};
use crate::par::ParBsolo;
use crate::result::SolveResult;

/// LS steps per chunk between stop-flag/cell checks in concurrent mode.
const CONCURRENT_CHUNK_STEPS: u64 = 16_384;

/// LS steps per chunk in the seeding phase; stagnation is assessed
/// between chunks, so the phase ends within one chunk of the limit.
const SEED_CHUNK_STEPS: u64 = 8_192;

/// Configuration of the [`Portfolio`] driver.
#[derive(Clone, Debug)]
pub struct PortfolioOptions {
    /// How LS and branch-and-bound are combined.
    pub strategy: SolveStrategy,
    /// The exact solver's configuration; its [`crate::Budget`] is the
    /// budget of the *whole* portfolio solve (in `LsSeeded` mode the LS
    /// phase consumes part of the wall clock and the branch-and-bound
    /// gets the remainder).
    pub bsolo: BsoloOptions,
    /// The local-search configuration. In `LsSeeded` mode `max_steps` /
    /// `time_limit` cap the seeding phase (a fifth of the total time
    /// budget is imposed when none is set); in `Concurrent` mode the LS
    /// thread runs until the exact side finishes.
    pub ls: LsOptions,
    /// Adaptive seeding split: end the LS phase once this many steps
    /// pass without a verified improvement, handing the remaining budget
    /// to the branch-and-bound — instead of burning the whole static
    /// share on a stagnant walk. Step-based, so a step-bounded seeding
    /// phase stays deterministic.
    pub ls_stagnation_steps: u64,
    /// Number of local-search worker threads in
    /// [`SolveStrategy::Concurrent`] mode (ParLS-PBO-style diversified
    /// pool: worker 0 runs [`PortfolioOptions::ls`] verbatim, later
    /// workers get derived seeds, higher noise and staggered restarts —
    /// see [`pbo_ls::diversified_options`]). All workers share the
    /// incumbent cell and the cut pool; the instance's flat term arena
    /// is shared read-only, so extra workers cost per-worker counters
    /// only. Ignored by the other strategies.
    pub ls_threads: usize,
    /// Number of exact branch-and-bound workers (default 1 = the
    /// sequential solver, bit-identical to [`crate::Bsolo`]). With more
    /// workers the exact side runs as [`crate::ParBsolo`]: the root is
    /// split into cubes and solved by a pool sharing the instance's
    /// read-only term arena, incumbents and cost cuts flowing through
    /// the cell. Applies to every strategy — `Exact` becomes pure
    /// parallel B&B, `Concurrent` races `ls_threads` LS workers *and*
    /// `bb_threads` exact workers against one cell.
    ///
    /// Both thread counts accept `0` as "auto": resolved to the
    /// machine's available parallelism at solve time (the CLI spells it
    /// `--bb-threads auto`). See [`PortfolioOptions::resolve_threads`].
    pub bb_threads: usize,
}

impl PortfolioOptions {
    /// Resolves a thread-count option: `0` ("auto") becomes
    /// [`std::thread::available_parallelism`] (falling back to 1 if the
    /// machine cannot report it), anything else is taken as-is.
    pub fn resolve_threads(n: usize) -> usize {
        if n == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            n
        }
    }

    /// Exact-side worker count after `auto` resolution.
    pub fn resolved_bb_threads(&self) -> usize {
        Self::resolve_threads(self.bb_threads)
    }

    /// Local-search worker count after `auto` resolution.
    pub fn resolved_ls_threads(&self) -> usize {
        Self::resolve_threads(self.ls_threads)
    }
}

impl Default for PortfolioOptions {
    fn default() -> PortfolioOptions {
        PortfolioOptions {
            strategy: SolveStrategy::default(),
            bsolo: BsoloOptions::default(),
            ls: LsOptions::default(),
            ls_stagnation_steps: 3 * SEED_CHUNK_STEPS,
            ls_threads: 1,
            bb_threads: 1,
        }
    }
}

/// The portfolio solver: local search + branch-and-bound over a shared
/// incumbent cell.
///
/// # Examples
///
/// ```
/// use pbo_core::InstanceBuilder;
/// use pbo_solver::{Portfolio, SolveStrategy};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(3);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// b.add_clause([v[1].positive(), v[2].positive()]);
/// b.minimize([(2, v[0].positive()), (3, v[1].positive()), (2, v[2].positive())]);
/// let inst = b.build()?;
///
/// let result = Portfolio::with_strategy(SolveStrategy::LsSeeded).solve(&inst);
/// assert!(result.is_optimal());
/// assert_eq!(result.best_cost, Some(3));
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Portfolio {
    options: PortfolioOptions,
}

impl Portfolio {
    /// Creates a portfolio solver with the given configuration.
    pub fn new(options: PortfolioOptions) -> Portfolio {
        Portfolio { options }
    }

    /// Default options with the given strategy.
    pub fn with_strategy(strategy: SolveStrategy) -> Portfolio {
        Portfolio::new(PortfolioOptions { strategy, ..PortfolioOptions::default() })
    }

    /// The active configuration.
    pub fn options(&self) -> &PortfolioOptions {
        &self.options
    }

    /// Solves `instance` with a private incumbent cell.
    pub fn solve(&self, instance: &Instance) -> SolveResult {
        self.solve_with_cell(instance, &IncumbentCell::new())
    }

    /// Solves `instance`, exchanging incumbents through `cell` — pass a
    /// caller-owned cell to observe the incumbent trajectory
    /// ([`IncumbentCell::history_since`]) or to seed the solve with a
    /// known solution.
    pub fn solve_with_cell(&self, instance: &Instance, cell: &IncumbentCell) -> SolveResult {
        let start = Instant::now();
        let mut result = match self.options.strategy {
            SolveStrategy::Exact => self.exact_solver().solve_with_cell(instance, Some(cell)),
            SolveStrategy::LsSeeded => self.solve_ls_seeded(instance, cell, start),
            SolveStrategy::Concurrent => self.solve_concurrent(instance, cell, start),
        };
        // An incumbent can land in the cell after the B&B's last
        // adoption check (a racing LS thread's final offer): fold it
        // back so the returned result is the cell's best, never worse.
        if let Some((cost, model)) = cell.snapshot() {
            if result.best_cost.is_none_or(|b| cost < b)
                && pbo_core::verify_solution(instance, &model) == Ok(cost)
            {
                result.best_cost = Some(cost);
                result.best_assignment = Some(model);
                if result.status == crate::SolveStatus::Unknown {
                    result.status = crate::SolveStatus::Feasible;
                }
            }
        }
        // Portfolio-wide accounting: the incumbent trajectory lives in
        // the cell, and the final best was published by whoever found it.
        result.stats.solve_time = start.elapsed();
        if let Some((at, _)) = cell.history_since(start).last() {
            result.stats.time_to_best = *at;
        }
        result
    }

    /// The exact side of every strategy: sequential bsolo for
    /// `bb_threads == 1` (bit-identical to [`crate::Bsolo`], by
    /// delegation), the cube-split worker pool otherwise.
    fn exact_solver(&self) -> ParBsolo {
        ParBsolo::new(self.options.bsolo.clone(), self.options.resolved_bb_threads())
    }

    /// Sequential mode: a bounded LS phase, then B&B on what's left of
    /// the wall-clock budget. The phase ends early on stagnation (no
    /// verified improvement for `ls_stagnation_steps` steps), so a
    /// converged walk hands its unused share straight to the B&B.
    fn solve_ls_seeded(
        &self,
        instance: &Instance,
        cell: &IncumbentCell,
        start: Instant,
    ) -> SolveResult {
        let total_time = self.options.bsolo.budget.time;
        // An explicit LS time limit wins (so callers can make the seed
        // phase step-bounded and deterministic); a fifth of the total
        // wall-clock budget is imposed as a hard cap only when none is
        // set — stagnation usually ends the phase well before either.
        let seed_cap = total_time.map(|t| t / 5);
        let phase_limit = self.options.ls.time_limit.or(seed_cap);
        let deadline = phase_limit.map(|d| Instant::now() + d);
        let max_steps = self.options.ls.max_steps;
        let chunk = SEED_CHUNK_STEPS.min(max_steps.max(1));
        let mut ls = LocalSearch::new(
            instance,
            LsOptions { max_steps: chunk, time_limit: None, ..self.options.ls.clone() },
        );
        if self.options.bsolo.trace {
            ls.set_tracer(Tracer::buffered(LS_LANE_BASE, start));
        }
        let mut last_best: Option<i64> = None;
        let mut stagnant: u64 = 0;
        loop {
            let before = ls.stats.steps;
            let result = ls.run(Some(cell), None);
            let advanced = ls.stats.steps - before;
            if advanced == 0 {
                break; // satisfied, hopeless, or target reached
            }
            if result.best_cost.is_some() && result.best_cost != last_best {
                last_best = result.best_cost;
                stagnant = 0;
            } else {
                stagnant += advanced;
            }
            if stagnant >= self.options.ls_stagnation_steps
                || ls.stats.steps >= max_steps
                || deadline.is_some_and(|d| Instant::now() >= d)
            {
                break;
            }
        }
        let mut bsolo_options = self.options.bsolo.clone();
        if let Some(t) = total_time {
            bsolo_options.budget.time =
                Some(t.saturating_sub(start.elapsed()).max(Duration::from_millis(1)));
        }
        let mut result = ParBsolo::new(bsolo_options, self.options.resolved_bb_threads())
            .solve_with_cell(instance, Some(cell));
        result.stats.trace.extend(ls.drain_trace());
        result
    }

    /// Concurrent mode: a pool of diversified LS workers races the exact
    /// side — sequential bsolo, or the `bb_threads`-strong cube-split
    /// pool — until the exact side finishes. Incumbents and the cut pool
    /// flow through the shared cell; every worker on both sides shares
    /// the instance's read-only term arena.
    fn solve_concurrent(
        &self,
        instance: &Instance,
        cell: &IncumbentCell,
        start: Instant,
    ) -> SolveResult {
        let stop = AtomicBool::new(false);
        let workers = self.options.resolved_ls_threads();
        let trace_epoch = self.options.bsolo.trace.then_some(start);
        std::thread::scope(|scope| {
            let ls_handle = scope.spawn(|| {
                run_pool_racing_traced(
                    instance,
                    &self.options.ls,
                    workers,
                    CONCURRENT_CHUNK_STEPS,
                    cell,
                    &stop,
                    trace_epoch,
                )
            });
            let mut result = self.exact_solver().solve_with_cell(instance, Some(cell));
            stop.store(true, Ordering::Relaxed);
            match ls_handle.join() {
                Ok(pool) => {
                    result.stats.workers_lost += pool.workers_lost;
                    result.stats.trace.extend(pool.events);
                }
                // The pool driver itself died (each worker is already
                // unwind-contained, so this is the driver thread). The
                // exact answer stands — the LS side only ever feeds
                // incumbents — but the loss is recorded honestly.
                Err(_) => result.stats.workers_lost += workers as u64,
            }
            result
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsolo::Bsolo;
    use crate::options::Budget;
    use pbo_core::{brute_force, InstanceBuilder};

    fn covering_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[1].positive(), v[2].positive()]);
        b.add_clause([v[2].positive(), v[3].positive()]);
        b.minimize([
            (2, v[0].positive()),
            (3, v[1].positive()),
            (3, v[2].positive()),
            (2, v[3].positive()),
        ]);
        b.build().unwrap()
    }

    #[test]
    fn every_strategy_finds_the_optimum() {
        let inst = covering_instance();
        let expected = brute_force(&inst).cost();
        for strategy in [SolveStrategy::Exact, SolveStrategy::LsSeeded, SolveStrategy::Concurrent] {
            let result = Portfolio::with_strategy(strategy).solve(&inst);
            assert!(result.is_optimal(), "{strategy:?} must prove optimality");
            assert_eq!(result.best_cost, expected, "{strategy:?} optimum mismatch");
            let model = result.best_assignment.as_ref().expect("model present");
            assert_eq!(pbo_core::verify_solution(&inst, model), Ok(expected.unwrap()));
        }
    }

    #[test]
    fn cell_records_trajectory_and_time_to_best() {
        let inst = covering_instance();
        let cell = IncumbentCell::new();
        let start = Instant::now();
        let result =
            Portfolio::with_strategy(SolveStrategy::LsSeeded).solve_with_cell(&inst, &cell);
        assert!(result.is_optimal());
        let history = cell.history_since(start);
        assert!(!history.is_empty(), "the optimum must have been published");
        let (_, final_cost) = *history.last().unwrap();
        assert_eq!(Some(final_cost), result.best_cost);
        assert!(
            history.windows(2).all(|w| w[1].1 < w[0].1),
            "trajectory must be strictly improving: {history:?}"
        );
        assert!(result.stats.time_to_best <= result.stats.solve_time);
    }

    #[test]
    fn preseeded_cell_warm_starts_the_search() {
        let inst = covering_instance();
        let optimum = brute_force(&inst).cost().unwrap();
        // Seed the cell with the optimum; the B&B must confirm it without
        // ever finding an "improving" solution itself.
        let witness = match brute_force(&inst) {
            pbo_core::BruteForceResult::Optimal { witness, .. } => witness,
            pbo_core::BruteForceResult::Infeasible => unreachable!(),
        };
        let cell = IncumbentCell::new();
        cell.offer(optimum, &witness);
        let result = Portfolio::with_strategy(SolveStrategy::Exact).solve_with_cell(&inst, &cell);
        assert!(result.is_optimal());
        assert_eq!(result.best_cost, Some(optimum));
        assert_eq!(result.best_assignment, Some(witness));
    }

    #[test]
    fn adopted_model_finishes_satisfaction_instances_immediately() {
        // Pure satisfaction instance; the cell already holds a verified
        // model. Even with a zero budget the solve must adopt it and
        // report SATISFIABLE instead of burning the budget re-searching.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[1].negative(), v[2].positive()]);
        let inst = b.build().unwrap();
        let model = vec![true, true, true];
        assert_eq!(pbo_core::verify_solution(&inst, &model), Ok(0));
        let cell = IncumbentCell::new();
        cell.offer(0, &model);
        let options =
            BsoloOptions::default().budget(Budget { decisions: Some(0), ..Budget::default() });
        let result = Bsolo::new(options).solve_with_cell(&inst, Some(&cell));
        assert_eq!(result.status, crate::SolveStatus::Optimal);
        assert_eq!(result.best_assignment, Some(model));
    }

    #[test]
    fn adoption_survives_an_exhausted_budget_on_optimization() {
        // Zero budget on an optimization instance, seeded with a
        // *suboptimal* solution: the incumbent must surface as Feasible
        // (ub reported), not be dropped as Unknown.
        let inst = covering_instance();
        let all_true = vec![true; 4];
        let cost = pbo_core::verify_solution(&inst, &all_true).unwrap();
        assert!(cost > brute_force(&inst).cost().unwrap(), "seed must be suboptimal");
        let cell = IncumbentCell::new();
        cell.offer(cost, &all_true);
        let options =
            BsoloOptions::default().budget(Budget { decisions: Some(0), ..Budget::default() });
        let result = Bsolo::new(options).solve_with_cell(&inst, Some(&cell));
        assert_eq!(result.status, crate::SolveStatus::Feasible);
        assert_eq!(result.best_cost, Some(cost));
    }

    #[test]
    fn seeding_the_cell_with_the_optimum_proves_optimality_outright() {
        // With the optimum in the cell, the eq. 10 cut is contradictory
        // at the root: adoption alone completes the proof, even under a
        // zero budget.
        let inst = covering_instance();
        let witness = match brute_force(&inst) {
            pbo_core::BruteForceResult::Optimal { witness, .. } => witness,
            pbo_core::BruteForceResult::Infeasible => unreachable!(),
        };
        let cost = pbo_core::verify_solution(&inst, &witness).unwrap();
        let cell = IncumbentCell::new();
        cell.offer(cost, &witness);
        let options =
            BsoloOptions::default().budget(Budget { decisions: Some(0), ..Budget::default() });
        let result = Bsolo::new(options).solve_with_cell(&inst, Some(&cell));
        assert_eq!(result.status, crate::SolveStatus::Optimal);
        assert_eq!(result.best_cost, Some(cost));
    }

    #[test]
    fn auto_thread_resolution() {
        // 0 is the "auto" sentinel: resolved to the machine's available
        // parallelism (≥ 1), explicit counts pass through untouched.
        assert!(PortfolioOptions::resolve_threads(0) >= 1);
        assert_eq!(PortfolioOptions::resolve_threads(3), 3);
        let auto = PortfolioOptions { ls_threads: 0, bb_threads: 0, ..Default::default() };
        assert!(auto.resolved_bb_threads() >= 1);
        assert!(auto.resolved_ls_threads() >= 1);
        // And an auto-threaded solve still verifies its optimum.
        let inst = covering_instance();
        let expected = brute_force(&inst).cost();
        let options = PortfolioOptions {
            strategy: SolveStrategy::Exact,
            bb_threads: 0,
            ..PortfolioOptions::default()
        };
        let result = Portfolio::new(options).solve(&inst);
        assert!(result.is_optimal(), "auto-threaded exact solve must prove optimality");
        assert_eq!(result.best_cost, expected);
    }

    #[test]
    fn concurrent_worker_pool_finds_the_optimum() {
        let inst = covering_instance();
        let expected = brute_force(&inst).cost();
        let options = PortfolioOptions {
            strategy: SolveStrategy::Concurrent,
            ls_threads: 4,
            ..PortfolioOptions::default()
        };
        let result = Portfolio::new(options).solve(&inst);
        assert!(result.is_optimal(), "4-worker concurrent portfolio must prove optimality");
        assert_eq!(result.best_cost, expected);
        let model = result.best_assignment.expect("model present");
        assert_eq!(pbo_core::verify_solution(&inst, &model), Ok(expected.unwrap()));
    }

    #[test]
    fn infeasible_instance_is_reported_by_every_strategy() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive()]);
        b.add_clause([v[0].negative()]);
        b.minimize([(1, v[1].positive())]);
        let inst = b.build().unwrap();
        for strategy in [SolveStrategy::Exact, SolveStrategy::LsSeeded, SolveStrategy::Concurrent] {
            let result = Portfolio::with_strategy(strategy).solve(&inst);
            assert_eq!(
                result.status,
                crate::SolveStatus::Infeasible,
                "{strategy:?} must prove infeasibility"
            );
        }
    }

    #[test]
    fn budgeted_portfolio_is_anytime() {
        let inst = covering_instance();
        let options = PortfolioOptions {
            strategy: SolveStrategy::LsSeeded,
            bsolo: BsoloOptions::default().budget(Budget::time_limit(Duration::from_secs(5))),
            ..PortfolioOptions::default()
        };
        let result = Portfolio::new(options).solve(&inst);
        // Tiny instance: solved outright, well inside the budget.
        assert!(result.is_optimal());
        assert_eq!(result.best_cost, brute_force(&inst).cost());
    }
}
