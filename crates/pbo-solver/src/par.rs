//! Parallel exact search: cube-split branch-and-bound workers over the
//! shared term arena.
//!
//! PR 4 made every hot data structure shared and read-only — the
//! instance's flat `TermArena` CSR, the cut pool, the lock-free
//! [`IncumbentCell`] — but the exact search was still one sequential
//! loop. This module closes that gap cube-and-conquer style:
//!
//! 1. **[`CubeSplitter`]** runs a learning-free lookahead from the root
//!    for a bounded number of decisions and harvests the open frontier
//!    as [`Cube`]s — decision-literal prefixes that partition the
//!    assignment space (sibling branches carry complementary literals,
//!    so cubes are pairwise disjoint, and together with the refuted and
//!    solved leaves they cover the root exactly; a property the test
//!    suite checks by enumeration).
//! 2. **[`ParBsolo`]** spawns `threads` workers under
//!    `std::thread::scope`. Each worker pulls cubes from the scheduler
//!    (see below) and solves each subtree with a private
//!    `SearchState` — its own engine, bound pipeline and residual state,
//!    all borrowing the *same* `&Instance` (and through it one read-only
//!    `TermArena` block). The cube's literals are assumed at level 0
//!    (`Engine::assume_at_root`), so conflict analysis can never leave
//!    the subtree and everything a worker learns is implied by
//!    *instance ∧ cube* — unless conflict analysis can show otherwise:
//!    see sharing below.
//! 3. **Primal dives.** A cube task's first act is one greedy
//!    cost-avoiding descent ([`SearchState::primal_dive`]) — objective
//!    literals decided false, largest coefficient first, propagation but
//!    no bound computation in between. Completing yields a verified
//!    feasible completion of the cube, published immediately, so the
//!    frontier doubles as `threads` diverse primal probes and every
//!    worker proves against a strong upper bound from the start (on few
//!    cores this is where most of the measured speedup over the
//!    sequential solver comes from: its incumbent-descent phase is
//!    skipped almost entirely).
//! 4. **Sharing.** Incumbents flow through the [`IncumbentCell`]: every
//!    worker publishes verified improvements and adopts strictly better
//!    external ones mid-search (re-rooting its eq. 10–13 cost cuts).
//!    Cost-cut rows go to the cell's cut pool (implied by instance +
//!    incumbent bound; tightest-upper producer wins). Learned *clauses*
//!    cross workers through the epoch-stamped [`ClausePool`]: the
//!    engine's taint tracking marks every clause whose derivation leaned
//!    on a cube assumption ([`pbo_engine::Taint`]), conflict analysis
//!    keeps assumption-falsified root literals in the clause (up to a
//!    budget) instead of strengthening them away so most clauses stay
//!    assumption-clean, and `export_shareable_learnts` publishes (on the
//!    worker's private pool lane) only those — implied by the instance (plus a stamped cost bound for
//!    INCUMBENT-tainted ones) and therefore sound in *any* cube.
//!    Workers sync at init, restarts, and after every re-split.
//! 5. **Dynamic re-splitting.** A worker that outlives its conflict
//!    allowance on one cube while the scheduler starves (fewer takeable
//!    cubes than idle workers) backjumps to its root, harvests the
//!    complementary arms of its first decisions
//!    ([`SearchState::resplit`]), hands them to the scheduler and
//!    continues on the deepened cube — the fixed initial frontier
//!    becomes self-balancing, and the idle tail (workers parked while
//!    the last long cube finishes) disappears. Arms + deepened cube
//!    partition the parent cube exactly, so the exact-partition
//!    invariant is inductive; depth caps bound the recursion
//!    ([`SolverStats::split_depth_truncated`] counts the clips).
//! 6. **Termination.** A worker that exhausts a cube *closes* it (no
//!    completion in the cube beats the final global best — pruning only
//!    ever used upper bounds that the final best also satisfies). The
//!    solve is `Optimal`/`Infeasible` when the frontier — initial cubes
//!    plus every re-split arm — is fully closed; an atomic `pending`
//!    count (raised *before* arms become takeable, lowered only when a
//!    cube closes) makes the growing frontier safe — the scheduler can
//!    never report "all done" while arms are in transit, because the
//!    re-splitting worker's own cube is still pending. A budget
//!    exhaustion in any worker raises a global abort flag, remaining
//!    cubes are dropped, and the result degrades to
//!    `Feasible`/`Unknown` exactly like the sequential solver.
//!
//! **Scheduler choice.** Cube hand-off is work-stealing by default
//! ([`SchedulerKind::WorkStealing`]): each worker owns a bounded
//! Chase–Lev-style deque of cube ids — the owner pushes and pops LIFO at
//! the bottom, so a re-split's arms stay hot in the cache of the worker
//! whose prefix spawned them, while thieves steal FIFO from the top,
//! taking the *oldest and shallowest* (hence largest) subtree — over an
//! append-only cube slab of `OnceLock` slots; the initial frontier sits
//! in a lock-free injector (an atomic cursor over the split order), and
//! termination is the atomic `pending` count
//! above. Everything is index-based safe Rust — the crate keeps
//! `forbid(unsafe_code)` — and the steady-state owner path (push, pop,
//! starving check) never takes a lock; the only mutex left guards the
//! cold overflow lane for slab/ring saturation. PR 5/6 used a central
//! `Mutex<VecDeque>` + `Condvar` queue, the right call while a solve
//! processed tens of cubes; the deep-split stress family
//! (`pbo-benchgen`) pushes frontiers past a thousand cubes, where every
//! hand-off serializing on one lock (and every re-split paying a condvar
//! round-trip) became the measured bottleneck — the `queue_contention`
//! microbench holds the A/B, and [`SchedulerKind::MutexDeque`] keeps
//! the old queue selectable as its in-process baseline. The reversal is
//! recorded in `ROADMAP.md`.
//!
//! With `threads == 1` the driver delegates to the sequential
//! [`Bsolo`] verbatim — bit-identical optimum, node count and stats —
//! so the parallel path is strictly opt-in. With
//! [`BsoloOptions::deterministic_join`] set, every cube task runs
//! against a private incumbent cell, the clause pool is disabled, the
//! re-split schedule ignores queue timing, and results reduce in
//! cube-lexicographic order — the same optimum and stats on every run
//! regardless of thread scheduling.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use pbo_core::{verify_solution, Instance, Lit, Value, Var};
use pbo_engine::Engine;
use pbo_fault::failpoint;
use pbo_ls::IncumbentCell;
use pbo_trace::{TraceEvent, Tracer};

use crate::bsolo::{Bsolo, SearchState};
use crate::options::{BsoloOptions, SchedulerKind};
use crate::result::{SolveResult, SolveStatus, SolverStats};
use crate::share::{ClausePool, PoolHandle};

/// Cubes harvested per worker for the *initial* frontier. One: dynamic
/// re-splitting now provides the slack an early-finishing worker needs
/// (PR 5 pre-harvested 2 per worker instead), and a coarser launch
/// frontier means less duplicated root replay and bigger subtrees over
/// which each worker's learned clauses stay relevant.
const CUBES_PER_WORKER: usize = 1;

/// Hard cap on cube length: beyond this depth the splitter stops
/// refining even if the frontier target was not reached (degenerate
/// instances propagate-complete almost everywhere).
const MAX_SPLIT_DEPTH: usize = 16;

/// Longest head-start learned clause seeded into the workers (longer
/// clauses prune little and cost propagation overhead) ...
const HEAD_SEED_MAX_LEN: usize = 24;
/// ... and how many of them (LBD-best first).
const HEAD_SEED_MAX_COUNT: usize = 512;

/// Conflict budget of the sequential head start: enough search to find
/// a first incumbent and learn the shallow conflict structure every
/// cube borders on, small enough that the serial prefix stays a
/// fraction of any tree worth parallelizing.
const HEAD_CONFLICTS: u64 = 96;

/// Complement cubes returned to the queue per dynamic re-split (the
/// guiding-path arms of the worker's first decisions): enough to feed
/// several idle workers from one long-running cube, few enough that the
/// deepened cube keeps most of the worker's learned context relevant.
const RESPLIT_ARMS: usize = 4;

/// Cubes deeper than this are never re-split again — arms of a
/// very deep cube are tiny slivers whose root-replay overhead exceeds
/// their search content. Hitting this cap is counted in
/// [`SolverStats::split_depth_truncated`].
const RESPLIT_MAX_DEPTH: usize = 48;

/// Per-worker steal-deque ring capacity (power of two). A worker only
/// ever holds its own un-stolen re-split arms here — a handful per
/// re-split, drained LIFO between cubes — so 256 slots are effectively
/// unreachable; on overflow the arm spills to the injector's mutex lane
/// (sound, just cold).
const RING_CAP: usize = 256;

/// Extra cube-slab slots beyond the initial frontier: headroom for
/// re-split arms before saturation routes new arms through the
/// injector's overflow lane instead.
const SLAB_SLACK: usize = 4096;

/// An open subtree of the branch-and-bound, described by the decision
/// literals on the path from the root: the subtree contains exactly the
/// assignments extending all of `lits`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cube {
    /// Decision literals of the prefix, in decision order.
    pub lits: Vec<Lit>,
}

/// What became of one frontier leaf during splitting.
#[derive(Clone, Debug)]
pub struct SplitOutcome {
    /// Open cubes: the frontier handed to the workers.
    pub open: Vec<Cube>,
    /// Leaves closed by propagation alone (instance ∧ cube is UNSAT).
    pub refuted: Vec<Cube>,
    /// Leaves where propagation completed the assignment: the cube's
    /// unique feasible completion, with its cost.
    pub solved: Vec<(Cube, i64, Vec<bool>)>,
    /// The instance is unsatisfiable at the root (before any decision).
    pub root_unsat: bool,
    /// Decisions spent splitting (counted into the solve's node total).
    pub decisions: u64,
    /// Leaves frozen because they reached the maximum split depth before
    /// the frontier target was met: the frontier is coarser than
    /// requested. Previously this truncation was silent; it is now
    /// surfaced through `SolverStats::split_depth_truncated` and the
    /// CLI's verbose output.
    pub depth_truncated: u64,
}

/// Harvests an open frontier of cubes by bounded learning-free
/// lookahead (cube-and-conquer style).
///
/// The splitter drives a private propagation-only [`Engine`] through a
/// breadth-first expansion of the decision tree: pop a prefix, replay it
/// with propagation, and either close the leaf (conflict → refuted,
/// complete assignment → solved) or branch on the next unassigned
/// variable in a deterministic cost-first order. Expansion stops once
/// the frontier reaches the target (or the depth cap), leaving the
/// still-open prefixes as the cube set.
pub struct CubeSplitter;

impl CubeSplitter {
    /// Splits `instance` into roughly `target` open cubes.
    ///
    /// Deterministic: the branching order is constraint-degree
    /// descending (objective cost, then index, breaking ties; negative
    /// phase first), and no learning or activity feedback is involved —
    /// the same instance always yields the same frontier.
    pub fn split(instance: &Instance, target: usize) -> SplitOutcome {
        Self::split_to_depth(instance, target, MAX_SPLIT_DEPTH)
    }

    /// [`CubeSplitter::split`] with an explicit depth cap (exposed for
    /// the soundness tests).
    pub fn split_to_depth(instance: &Instance, target: usize, max_depth: usize) -> SplitOutcome {
        let mut out = SplitOutcome {
            open: Vec::new(),
            refuted: Vec::new(),
            solved: Vec::new(),
            root_unsat: false,
            decisions: 0,
            depth_truncated: 0,
        };
        let mut engine = Engine::new(instance.num_vars());
        for c in instance.constraints() {
            if engine.add_constraint(c).is_err() {
                out.root_unsat = true;
                return out;
            }
        }
        // Branch on high-degree variables first (most constraint
        // occurrences across both polarities, objective cost as the
        // tie-break): both branches of a busy variable propagate hard,
        // which keeps the resulting subtrees balanced — splitting on the
        // most *expensive* variables instead was measured to produce one
        // near-root-sized cube (every costly-positive sibling prunes
        // instantly once an incumbent exists) and one worker doing most
        // of the search.
        let arena = instance.arena();
        let mut order: Vec<Var> = (0..instance.num_vars()).map(Var::new).collect();
        let var_degree = |v: Var| {
            arena.occurrences(v.positive()).0.len() + arena.occurrences(v.negative()).0.len()
        };
        let var_cost = |v: Var| {
            instance
                .objective()
                .map_or(0, |o| o.cost_of_lit(v.positive()).max(o.cost_of_lit(v.negative())))
        };
        order.sort_by_key(|&v| {
            (std::cmp::Reverse(var_degree(v)), std::cmp::Reverse(var_cost(v)), v.index())
        });

        let mut queue: VecDeque<Vec<Lit>> = VecDeque::from([Vec::new()]);
        while let Some(cube) = queue.pop_front() {
            if out.open.len() + queue.len() + 1 >= target.max(1) {
                out.open.push(Cube { lits: cube });
                continue;
            }
            if cube.len() >= max_depth {
                out.depth_truncated += 1;
                out.open.push(Cube { lits: cube });
                continue;
            }
            engine.backjump_to(0);
            let mut closed = false;
            for &lit in &cube {
                match engine.assignment().lit_value(lit) {
                    Value::True => continue, // already propagated
                    Value::False => {
                        closed = true;
                        break;
                    }
                    Value::Unassigned => {
                        engine.decide(lit);
                        out.decisions += 1;
                        if engine.propagate().is_some() {
                            closed = true;
                            break;
                        }
                    }
                }
            }
            if closed {
                out.refuted.push(Cube { lits: cube });
                continue;
            }
            if engine.assignment().is_complete() {
                // Propagation completed the assignment: the unique
                // feasible completion of this prefix.
                let model = engine.model();
                debug_assert_eq!(verify_solution(instance, &model), Ok(instance.cost_of(&model)));
                let cost = instance.cost_of(&model);
                out.solved.push((Cube { lits: cube }, cost, model));
                continue;
            }
            let var = order
                .iter()
                .copied()
                .find(|&v| engine.assignment().value(v) == Value::Unassigned)
                .expect("incomplete assignment has an unassigned variable");
            // Negative phase first, matching the engine's default saved
            // phase, so worker 0's first cube resembles the sequential
            // solver's first descent.
            let mut neg = cube.clone();
            neg.push(var.negative());
            let mut pos = cube;
            pos.push(var.positive());
            queue.push_back(neg);
            queue.push_back(pos);
        }
        out
    }
}

/// The PR-5/6 central work queue: a mutex-protected deque with a
/// condvar for idle workers and a global abort flag (raised on budget
/// exhaustion). Kept selectable as [`SchedulerKind::MutexDeque`] — the
/// in-process baseline the `queue_contention` microbench measures the
/// work-stealing scheduler against (see the module docs for why the
/// default flipped).
struct CubeQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    cubes: VecDeque<Cube>,
    /// Cubes currently being solved by some worker.
    in_flight: usize,
    /// Raised when a worker exhausts the budget: remaining cubes are
    /// abandoned and the solve reports a budget status.
    aborted: bool,
    /// Cubes abandoned by a dying worker (see [`CubeQueue::quarantine`]):
    /// no longer in flight, never closed. The solve continues without
    /// them, and any positive count forbids an `Optimal`/`Infeasible`
    /// claim at join.
    quarantined: usize,
}

impl CubeQueue {
    fn new(cubes: Vec<Cube>) -> CubeQueue {
        CubeQueue {
            state: Mutex::new(QueueState {
                cubes: cubes.into(),
                in_flight: 0,
                aborted: false,
                quarantined: 0,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Blocks until a cube is available, every cube is finished, or the
    /// solve is aborted. `None` means "no more work".
    fn next(&self) -> Option<Cube> {
        let mut s = self.lock();
        loop {
            if s.aborted {
                return None;
            }
            if let Some(cube) = s.cubes.pop_front() {
                s.in_flight += 1;
                return Some(cube);
            }
            if s.in_flight == 0 {
                return None;
            }
            // An in-flight sibling may still abort; wait for its verdict.
            s = self.ready.wait(s).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Enqueues re-split arms, waking idle workers. The pushing worker
    /// still holds its own (deepened) cube in flight, so the queue
    /// cannot have decided "all work done" concurrently — the frontier
    /// only ever grows while someone is searching.
    fn push(&self, cubes: Vec<Cube>) {
        if cubes.is_empty() {
            return;
        }
        failpoint!("sched.push");
        let mut s = self.lock();
        s.cubes.extend(cubes);
        drop(s);
        self.ready.notify_all();
    }

    /// `true` when fewer cubes are queued than there are *idle* workers
    /// — the re-split trigger in racing mode. `cubes.len() < threads`
    /// would be true almost always in steady state (workers hold their
    /// cubes in flight, the queue drains to near-empty), causing
    /// wasteful frontier shredding; counting only workers without a cube
    /// restricts re-splitting to the idle tail it is meant to fix.
    fn starving(&self, threads: usize) -> bool {
        let s = self.lock();
        s.cubes.len() < threads.saturating_sub(s.in_flight)
    }

    /// Reports a finished cube; `abort` abandons the remaining frontier.
    fn done(&self, abort: bool) {
        let mut s = self.lock();
        s.in_flight -= 1;
        if abort {
            s.aborted = true;
        }
        if s.aborted || (s.cubes.is_empty() && s.in_flight == 0) {
            self.ready.notify_all();
        }
    }

    /// Reports a cube abandoned by a dying worker: it leaves flight
    /// without closing, the rest of the frontier stays live for the
    /// surviving workers, and the count taints the final status (no
    /// exhaustion claim over a partition with a hole in it).
    fn quarantine(&self) {
        let mut s = self.lock();
        s.in_flight -= 1;
        s.quarantined += 1;
        if s.aborted || (s.cubes.is_empty() && s.in_flight == 0) {
            self.ready.notify_all();
        }
    }

    /// Aborts the solve from outside a cube (cooperative cancellation):
    /// waiters drain and every `next` returns `None`.
    fn abort(&self) {
        let mut s = self.lock();
        s.aborted = true;
        drop(s);
        self.ready.notify_all();
    }

    fn quarantined_count(&self) -> u64 {
        self.lock().quarantined as u64
    }

    fn was_aborted(&self) -> bool {
        self.lock().aborted
    }
}

/// Append-only cube storage behind the work-stealing deques: the rings
/// carry plain `usize` ids, the slab owns the cubes. Slots are written
/// exactly once (a `fetch_add` claims a unique index, `OnceLock::set`
/// fills it) and never freed — a solve hands out at most a few thousand
/// cubes, each a short literal vector. A full slab is not an error:
/// `insert` hands the cube back and the scheduler routes it through the
/// injector's overflow lane instead.
struct CubeSlab {
    slots: Vec<OnceLock<Cube>>,
    next: AtomicUsize,
}

impl CubeSlab {
    fn new(capacity: usize) -> CubeSlab {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, OnceLock::new);
        CubeSlab { slots, next: AtomicUsize::new(0) }
    }

    fn insert(&self, cube: Cube) -> Result<usize, Cube> {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if id >= self.slots.len() {
            return Err(cube);
        }
        // The claimed index is unique, so the slot is necessarily empty.
        let set = self.slots[id].set(cube);
        debug_assert!(set.is_ok(), "slab index claimed twice");
        Ok(id)
    }

    /// Only called with ids returned by [`CubeSlab::insert`] and
    /// published through a deque or the injector, so the slot is always
    /// initialized (`OnceLock` carries the release/acquire pairing).
    fn get(&self, id: usize) -> &Cube {
        self.slots[id].get().expect("cube id published before initialization")
    }
}

/// One worker's bounded Chase–Lev-style deque of cube ids: the owner
/// pushes and pops LIFO at `bottom` (no lock, no CAS except for the
/// last-element race), thieves steal FIFO at `top` with a CAS. The ring
/// stores raw ids into the [`CubeSlab`]; `top` only ever grows, so a
/// stale ring read is harmless — the value is used only if the `top`
/// CAS proves no thief (and no wrap-around push) intervened. Orderings
/// follow the C11 Chase–Lev formulation (Lê et al.), which is what
/// keeps the owner's steady-state path lock-free in safe Rust.
struct StealDeque {
    top: AtomicI64,
    bottom: AtomicI64,
    ring: Vec<AtomicUsize>,
    mask: i64,
}

impl StealDeque {
    fn new(capacity: usize) -> StealDeque {
        let cap = capacity.next_power_of_two().max(2);
        StealDeque {
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
            ring: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap as i64 - 1,
        }
    }

    /// Owner-only. `Err` hands the id back when the ring is full (the
    /// caller spills it to the injector's overflow lane).
    fn push(&self, id: usize) -> Result<(), usize> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.ring.len() as i64 {
            return Err(id);
        }
        self.ring[(b & self.mask) as usize].store(id, Ordering::Relaxed);
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only LIFO pop: newest first, so a re-splitting worker
    /// drains its own (cache-hot, deepest) arms before anything else.
    fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let id = self.ring[(b & self.mask) as usize].load(Ordering::Relaxed);
        if t == b {
            // Last element: race the thieves for it via `top`.
            let won =
                self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(id);
        }
        Some(id)
    }

    /// Thief-side FIFO steal: oldest (shallowest, hence largest) subtree
    /// first. Retries while losing CAS races to other thieves; returns
    /// `None` once the deque looks empty.
    fn steal(&self) -> Option<usize> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            std::sync::atomic::fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            let id = self.ring[(t & self.mask) as usize].load(Ordering::Relaxed);
            if self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok() {
                return Some(id);
            }
            // Lost to another thief; re-read a fresh `top`.
        }
    }
}

/// Where a worker's next cube came from (drives the `Steal` trace event
/// and the `steals` counter; `Queue` is the mutex-deque baseline).
enum CubeSource {
    /// The worker's own deque (LIFO re-split arm).
    Own,
    /// The global injector: initial frontier or an overflow spill.
    Inject,
    /// Stolen FIFO from the named worker's deque.
    Steal(usize),
    /// The central mutex deque ([`SchedulerKind::MutexDeque`]).
    Queue,
}

/// The work-stealing cube scheduler (default, see module docs): one
/// [`StealDeque`] per worker over a shared [`CubeSlab`], a lock-free
/// injector cursor over the initial frontier, a mutex-guarded overflow
/// lane for slab/ring saturation (cold by construction), and atomic
/// termination — `pending` counts open cubes (raised *before* arms
/// become takeable, lowered only at close), `aborted` latches budget
/// exhaustion or a worker panic, and `queued`/`in_flight` feed the
/// lock-free [`StealScheduler::starving`] read that gates re-splitting.
struct StealScheduler {
    slab: CubeSlab,
    /// Initial frontier, as slab ids in split order (cube-lexicographic
    /// order under deterministic join).
    frontier: Vec<usize>,
    /// Next un-taken `frontier` index.
    cursor: AtomicUsize,
    deques: Vec<StealDeque>,
    /// Cold lane: arms that missed the slab or a full ring, and every
    /// arm under deterministic join (a shared FIFO keeps det-mode load
    /// balancing equivalent to the old central queue).
    overflow: Mutex<VecDeque<Cube>>,
    /// Lock-free emptiness check for `overflow`.
    overflow_len: AtomicUsize,
    /// Open cubes: frontier + arms − closed. Zero means every leaf of
    /// the (grown) frontier partition was closed — the termination
    /// condition.
    pending: AtomicI64,
    /// Takeable cubes (not yet handed to a worker). Transiently stale by
    /// design; only the starving heuristic reads it.
    queued: AtomicI64,
    /// Cubes currently held by workers. Same caveat as `queued`.
    in_flight: AtomicI64,
    /// Cubes abandoned by dying workers: out of flight and out of
    /// `pending`, but never closed — a positive count means part of the
    /// frontier partition went unexplored, so the join must not claim
    /// exhaustion.
    quarantined: AtomicI64,
    aborted: AtomicBool,
    /// Cleared under deterministic join: every arm then goes through the
    /// shared overflow FIFO and no Steal event can ever fire.
    stealing: bool,
    /// Idle parking. A worker whose full acquire sweep (own deque,
    /// injector, steals) came up empty blocks here instead of spinning:
    /// on machines with fewer cores than workers, a spinning thread
    /// competes with the workers still searching for the CPU and
    /// lengthens the very drain it is waiting out (measured as a 100x
    /// `queue_wait_total` blowup vs the condvar baseline on one core).
    /// The lock is touched only by parked workers and by publishers that
    /// observe `parked > 0`, so steady-state take/push stays lock-free.
    park_lock: Mutex<()>,
    park_cv: Condvar,
    /// Workers currently inside the park protocol (SeqCst; Dekker-pairs
    /// with the `queued`/`pending` updates of `push`/`close`, so either
    /// a parker sees new work or the publisher sees the parker).
    parked: AtomicUsize,
}

impl StealScheduler {
    fn new(threads: usize, mut cubes: Vec<Cube>, det: bool) -> StealScheduler {
        if det {
            // A scheduling-independent hand-out order (the per-cube
            // trajectories are already private; this pins the injector
            // order itself).
            cubes.sort_by(|a, b| a.lits.cmp(&b.lits));
        }
        let n = cubes.len();
        let slab = CubeSlab::new(n.saturating_mul(4).saturating_add(SLAB_SLACK));
        let frontier: Vec<usize> = cubes
            .into_iter()
            .map(|c| slab.insert(c).unwrap_or_else(|_| panic!("slab sized for the frontier")))
            .collect();
        StealScheduler {
            slab,
            frontier,
            cursor: AtomicUsize::new(0),
            deques: (0..threads.max(1)).map(|_| StealDeque::new(RING_CAP)).collect(),
            overflow: Mutex::new(VecDeque::new()),
            overflow_len: AtomicUsize::new(0),
            pending: AtomicI64::new(n as i64),
            queued: AtomicI64::new(n as i64),
            in_flight: AtomicI64::new(0),
            quarantined: AtomicI64::new(0),
            aborted: AtomicBool::new(false),
            stealing: !det,
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
            parked: AtomicUsize::new(0),
        }
    }

    fn take(&self, cube: Cube, source: CubeSource) -> (Cube, CubeSource) {
        // in_flight up *before* queued down: a termination probe between
        // the two sees the cube somewhere, never nowhere.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.queued.fetch_sub(1, Ordering::SeqCst);
        (cube, source)
    }

    fn pop_frontier(&self) -> Option<usize> {
        loop {
            let i = self.cursor.load(Ordering::Relaxed);
            if i >= self.frontier.len() {
                return None;
            }
            if self
                .cursor
                .compare_exchange_weak(i, i + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(self.frontier[i]);
            }
        }
    }

    fn pop_overflow(&self) -> Option<Cube> {
        if self.overflow_len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.overflow.lock().unwrap_or_else(|p| p.into_inner());
        let cube = q.pop_front();
        if cube.is_some() {
            self.overflow_len.fetch_sub(1, Ordering::Release);
        }
        cube
    }

    fn spill(&self, cube: Cube) {
        let mut q = self.overflow.lock().unwrap_or_else(|p| p.into_inner());
        q.push_back(cube);
        self.overflow_len.fetch_add(1, Ordering::Release);
    }

    /// The worker-side acquire loop: own deque (LIFO), injector
    /// (frontier cursor, then overflow), then stealing sweeps over the
    /// other deques — spinning with escalating backoff until work
    /// appears, every open cube is closed (`None`), or the solve aborts
    /// (`None`). The whole loop is what `queue_wait_total` times.
    fn next(&self, worker: usize) -> Option<(Cube, CubeSource)> {
        let mut spins = 0u32;
        loop {
            if self.aborted.load(Ordering::Acquire) {
                return None;
            }
            if let Some(id) = self.deques[worker].pop() {
                return Some(self.take(self.slab.get(id).clone(), CubeSource::Own));
            }
            if let Some(id) = self.pop_frontier() {
                return Some(self.take(self.slab.get(id).clone(), CubeSource::Inject));
            }
            if let Some(cube) = self.pop_overflow() {
                return Some(self.take(cube, CubeSource::Inject));
            }
            if self.stealing {
                // Probe placed before any deque is touched: a panic here
                // kills a worker that holds *no* cube, so nothing needs
                // quarantining and the counters stay exact.
                failpoint!("sched.steal");
                for off in 1..self.deques.len() {
                    let victim = (worker + off) % self.deques.len();
                    if let Some(id) = self.deques[victim].steal() {
                        return Some(
                            self.take(self.slab.get(id).clone(), CubeSource::Steal(victim)),
                        );
                    }
                }
            }
            if self.pending.load(Ordering::SeqCst) == 0 {
                return None;
            }
            // The frontier is momentarily dry but some cube is still
            // open (its owner may yet re-split): spin briefly for the
            // racy case, then park until a publisher wakes us. The
            // park re-check runs *after* raising `parked` (SeqCst), and
            // `push`/`close` read `parked` *after* their `queued`/
            // `pending` updates, so by the usual Dekker argument either
            // we see the new work here or the publisher sees us and
            // notifies under the lock we wait on; the timeout is a
            // belt-and-braces backstop, not a correctness requirement.
            spins += 1;
            if spins < 8 {
                std::hint::spin_loop();
            } else if spins < 12 {
                std::thread::yield_now();
            } else {
                // Before `parked` rises: a panic here never leaves the
                // parked count elevated for `wake_parked` to chase.
                failpoint!("sched.park");
                self.parked.fetch_add(1, Ordering::SeqCst);
                let guard = self.park_lock.lock().unwrap_or_else(|p| p.into_inner());
                if !self.aborted.load(Ordering::Acquire)
                    && self.pending.load(Ordering::SeqCst) != 0
                    && self.queued.load(Ordering::SeqCst) <= 0
                {
                    // The timeout is deliberately long: a parked worker
                    // that re-sweeps on a tight timer competes with the
                    // workers still searching for the one core and
                    // lengthens the drain it is waiting out. Wakes come
                    // from `push`/`close`, not from here.
                    let _ = self
                        .park_cv
                        .wait_timeout(guard, Duration::from_millis(50))
                        .unwrap_or_else(|p| p.into_inner());
                }
                self.parked.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Wakes parked workers after publishing work or deciding the solve
    /// is over. Lock-free when nobody is parked (the common case).
    fn wake_parked(&self) {
        if self.parked.load(Ordering::SeqCst) > 0 {
            // The lock orders this notify against the parkers' re-check:
            // any parker past its check is already inside `wait_timeout`.
            let _guard = self.park_lock.lock().unwrap_or_else(|p| p.into_inner());
            self.park_cv.notify_all();
        }
    }

    /// Publishes re-split arms. `pending` rises before any arm becomes
    /// takeable, so a concurrent termination probe can never miss them
    /// (the pusher's own cube is also still pending). Returns how many
    /// arms went through the injector's overflow lane rather than the
    /// worker's own deque (the `Inject` tally).
    fn push(&self, worker: usize, arms: Vec<Cube>) -> u64 {
        if arms.is_empty() {
            return 0;
        }
        // Probe fires before `pending` rises: a worker dying here loses
        // the arms *and* its deepened cube together, which is exactly
        // the parent cube its guard then quarantines — one pending unit,
        // one quarantine, partition accounting exact.
        failpoint!("sched.push");
        let n = arms.len() as i64;
        self.pending.fetch_add(n, Ordering::SeqCst);
        let mut spilled = 0u64;
        for cube in arms {
            if !self.stealing {
                // Deterministic join: the shared FIFO, like the old
                // central queue, so siblings can still pick arms up.
                self.spill(cube);
                spilled += 1;
                continue;
            }
            match self.slab.insert(cube) {
                Ok(id) => {
                    if let Err(id) = self.deques[worker].push(id) {
                        self.spill(self.slab.get(id).clone());
                        spilled += 1;
                    }
                }
                Err(cube) => {
                    self.spill(cube);
                    spilled += 1;
                }
            }
        }
        self.queued.fetch_add(n, Ordering::SeqCst);
        self.wake_parked();
        spilled
    }

    /// Lock-free starving probe (the re-split trigger): fewer takeable
    /// cubes than idle workers. Two relaxed loads; transient staleness
    /// only perturbs a heuristic.
    fn starving(&self, threads: usize) -> bool {
        let queued = self.queued.load(Ordering::Relaxed);
        let idle = threads as i64 - self.in_flight.load(Ordering::Relaxed);
        queued < idle
    }

    fn close(&self, abort: bool) {
        if abort {
            self.aborted.store(true, Ordering::Release);
        }
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        // The last close (or an abort) must rouse everyone so the
        // termination probe in `next` can observe `pending == 0`.
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 || abort {
            self.wake_parked();
        }
    }

    /// Removes a dying worker's cube from the books without closing it:
    /// `pending` drops (the survivors' termination probe must not wait
    /// for a verdict that will never come) and the quarantine count
    /// rises (the join must not read the drained frontier as a complete
    /// proof). The solve is *not* aborted — that is the point.
    fn quarantine(&self) {
        self.quarantined.fetch_add(1, Ordering::SeqCst);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.wake_parked();
        }
    }

    /// Aborts the solve from outside a cube (cooperative cancellation).
    fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        self.wake_parked();
    }

    fn quarantined_count(&self) -> u64 {
        self.quarantined.load(Ordering::SeqCst).max(0) as u64
    }

    fn was_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }
}

/// Scheduler dispatch: the work-stealing default and the PR-5/6 mutex
/// deque kept as an in-process A/B baseline (`queue_contention` bench,
/// [`SchedulerKind`]).
enum Scheduler {
    Stealing(StealScheduler),
    Mutex(CubeQueue),
}

impl Scheduler {
    /// Builds the scheduler over the initial frontier. The second value
    /// is the frontier size *when it counts as injector traffic* — the
    /// work-stealing racing path — for the driver's `Inject` event and
    /// `injections` counter; zero for the mutex baseline and under
    /// deterministic join (whose counters must stay
    /// scheduling-independent, i.e. zero).
    fn new(kind: SchedulerKind, threads: usize, cubes: Vec<Cube>, det: bool) -> (Scheduler, u64) {
        match kind {
            SchedulerKind::WorkStealing => {
                let injected = if det { 0 } else { cubes.len() as u64 };
                (Scheduler::Stealing(StealScheduler::new(threads, cubes, det)), injected)
            }
            SchedulerKind::MutexDeque => (Scheduler::Mutex(CubeQueue::new(cubes)), 0),
        }
    }

    fn next(&self, worker: usize) -> Option<(Cube, CubeSource)> {
        match self {
            Scheduler::Stealing(s) => s.next(worker),
            Scheduler::Mutex(q) => q.next().map(|c| (c, CubeSource::Queue)),
        }
    }

    fn push(&self, worker: usize, arms: Vec<Cube>) -> u64 {
        match self {
            Scheduler::Stealing(s) => s.push(worker, arms),
            Scheduler::Mutex(q) => {
                q.push(arms);
                0
            }
        }
    }

    fn starving(&self, threads: usize) -> bool {
        match self {
            Scheduler::Stealing(s) => s.starving(threads),
            Scheduler::Mutex(q) => q.starving(threads),
        }
    }

    fn close(&self, abort: bool) {
        match self {
            Scheduler::Stealing(s) => s.close(abort),
            Scheduler::Mutex(q) => q.done(abort),
        }
    }

    fn quarantine(&self) {
        match self {
            Scheduler::Stealing(s) => s.quarantine(),
            Scheduler::Mutex(q) => q.quarantine(),
        }
    }

    fn abort(&self) {
        match self {
            Scheduler::Stealing(s) => s.abort(),
            Scheduler::Mutex(q) => q.abort(),
        }
    }

    fn quarantined_count(&self) -> u64 {
        match self {
            Scheduler::Stealing(s) => s.quarantined_count(),
            Scheduler::Mutex(q) => q.quarantined_count(),
        }
    }

    fn was_aborted(&self) -> bool {
        match self {
            Scheduler::Stealing(s) => s.was_aborted(),
            Scheduler::Mutex(q) => q.was_aborted(),
        }
    }
}

/// Unwind guard for an in-flight cube: a panic between
/// [`Scheduler::next`] and [`WorkGuard::finish`] would otherwise leave
/// the cube open forever — sibling workers would spin (or block, on the
/// mutex baseline) for a verdict that never comes, and `thread::scope`
/// would wait on those siblings instead of propagating the panic. On
/// drop (unless defused by a normal [`WorkGuard::finish`]) the guard
/// *quarantines* the cube: it leaves the books without closing, the
/// surviving workers keep draining the rest of the frontier, and the
/// positive quarantine count downgrades the final status — containment,
/// not a solve-wide abort (that was the pre-PR-9 behaviour).
struct WorkGuard<'a> {
    sched: &'a Scheduler,
    armed: bool,
}

impl<'a> WorkGuard<'a> {
    fn new(sched: &'a Scheduler) -> WorkGuard<'a> {
        WorkGuard { sched, armed: true }
    }

    /// The normal completion path (defuses the guard).
    fn finish(mut self, abort: bool) {
        self.armed = false;
        self.sched.close(abort);
    }
}

impl Drop for WorkGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.sched.quarantine();
        }
    }
}

/// Result of one worker's run, merged by the driver at join. The
/// worker's node count is `stats.decisions`.
struct SubtreeResult {
    /// Effort counters summed over every cube this worker solved.
    stats: SolverStats,
    /// Whether every cube this worker took was closed (subtree
    /// exhausted); `false` means a budget ran out mid-cube.
    all_closed: bool,
}

/// Parallel exact branch-and-bound: N cube workers racing over a shared
/// incumbent cell.
///
/// With `threads == 1` this is exactly [`Bsolo`] (delegated, so the
/// sequential trajectory — optimum, node count, every stat — is
/// bit-identical). With more threads the root is split into cubes and
/// solved by a worker pool; the optimum and its proof are unchanged,
/// node counts become timing-dependent.
///
/// # Examples
///
/// ```
/// use pbo_core::InstanceBuilder;
/// use pbo_solver::{BsoloOptions, LbMethod, ParBsolo};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(3);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// b.add_clause([v[1].positive(), v[2].positive()]);
/// b.minimize([(2, v[0].positive()), (3, v[1].positive()), (2, v[2].positive())]);
/// let inst = b.build()?;
///
/// let result = ParBsolo::new(BsoloOptions::with_lb(LbMethod::Mis), 2).solve(&inst);
/// assert!(result.is_optimal());
/// assert_eq!(result.best_cost, Some(3));
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ParBsolo {
    options: BsoloOptions,
    threads: usize,
}

impl ParBsolo {
    /// Creates a parallel solver with `threads` exact workers (clamped
    /// to at least 1).
    pub fn new(options: BsoloOptions, threads: usize) -> ParBsolo {
        ParBsolo { options, threads: threads.max(1) }
    }

    /// The active configuration.
    pub fn options(&self) -> &BsoloOptions {
        &self.options
    }

    /// Number of exact workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Solves `instance` with a private incumbent cell.
    pub fn solve(&self, instance: &Instance) -> SolveResult {
        self.solve_with_cell(instance, None)
    }

    /// Like [`ParBsolo::solve`], but exchanging incumbents through a
    /// caller-owned cell (the portfolio hook). Wall-clock budgets apply
    /// to the whole solve; conflict/decision budgets apply per subtree
    /// task.
    pub fn solve_with_cell(
        &self,
        instance: &Instance,
        cell: Option<&IncumbentCell>,
    ) -> SolveResult {
        if self.threads == 1 {
            let mut result = Bsolo::new(self.options.clone()).solve_with_cell(instance, cell);
            result.stats.nodes_per_worker = vec![result.stats.decisions];
            return result;
        }
        let start = Instant::now();
        // Same deadline inheritance as the sequential driver: a cancel
        // token without its own deadline picks up the wall-clock budget,
        // reaching the LP pivot loops and propagation loops of every
        // worker (the clone each one holds shares this token's state).
        if let Some(cancel) = &self.options.cancel {
            if let (Some(t), None) = (self.options.budget.time, cancel.deadline()) {
                cancel.deadline_in(t);
            }
        }
        // Simplify once; the workers all borrow the simplified instance
        // (and its shared arena). Covering-style simplification preserves
        // the variable space and the exact feasible set, so models and
        // costs transfer 1:1 across the cell.
        let simplified;
        let inst: &Instance = if self.options.simplify {
            simplified = crate::preprocess::simplify(instance);
            &simplified
        } else {
            instance
        };
        let mut worker_options = self.options.clone();
        worker_options.simplify = false;
        let owned_cell;
        let outer_cell: &IncumbentCell = match cell {
            Some(c) => c,
            None => {
                owned_cell = IncumbentCell::new();
                &owned_cell
            }
        };
        // Deterministic-join mode runs the head and every cube task
        // against *private* incumbent cells — seeded once from whatever
        // the outer cell held at solve start — so no timing-dependent
        // incumbent race can steer any subtree; the final best is
        // offered to the outer cell only at the end. See
        // [`BsoloOptions::deterministic_join`].
        let det = worker_options.deterministic_join;
        let det_cell_store;
        let run_cell: &IncumbentCell = if det {
            det_cell_store = IncumbentCell::new();
            if let Some((c, m)) = outer_cell.snapshot() {
                det_cell_store.offer(c, &m);
            }
            &det_cell_store
        } else {
            outer_cell
        };

        let mut stats = SolverStats::default();
        // Driver-lane tracer (lane 0): head-start events, splitter
        // decisions and split-time solutions. Worker lanes are created
        // inside the worker threads (the buffer is worker-owned).
        let driver_tracer =
            if self.options.trace { Tracer::buffered(0, start) } else { Tracer::off() };
        // Head start: one decision-bounded sequential prefix. Finding
        // the *first* incumbent is the one phase cube workers would
        // otherwise duplicate per cube (no upper bound, no cost cuts, no
        // pruning) — running it once at the root and publishing the
        // incumbent lets every worker bound against a real upper from
        // node one; its learned clauses (implied by instance + the
        // published incumbent's cost cut — see `SearchState::init`) seed
        // every worker's clause database, so the workers inherit the
        // head's conflict knowledge instead of each re-deriving it. The
        // head's nodes count into the solve's total, so the
        // sequential-vs-parallel node accounting stays honest.
        // The head's own caps never exceed the caller's budget (a
        // caller-level conflict or decision limit binds the head too).
        let cap = |own: u64, caller: Option<u64>| Some(caller.map_or(own, |c| c.min(own)));
        let head_budget = crate::options::Budget {
            decisions: cap(8 * inst.num_vars() as u64, self.options.budget.decisions),
            conflicts: cap(HEAD_CONFLICTS, self.options.budget.conflicts),
            time: self.options.budget.time.map(|t| t.saturating_sub(start.elapsed())),
        };
        let mut head_options = worker_options.clone();
        head_options.budget = head_budget;
        // The head runs without the shared pool: its learned clauses
        // reach the workers wholesale through the seed set, so pooling
        // them too would only round-trip duplicates.
        let (head_status, head_result, seed) = match SearchState::init(
            inst,
            &head_options,
            Some(run_cell),
            start,
            &mut stats,
            &[],
            &[],
            None,
            driver_tracer.clone(),
        ) {
            Ok(mut search) => {
                let status = search.run(start, &mut stats);
                search.finish_stats(&mut stats);
                let seed = search.export_learnts(HEAD_SEED_MAX_LEN, HEAD_SEED_MAX_COUNT);
                (status, run_cell.snapshot(), seed)
            }
            Err(()) => (SolveStatus::Infeasible, None, Vec::new()),
        };
        if matches!(head_status, SolveStatus::Optimal | SolveStatus::Infeasible) {
            // The head start already finished the proof (small instance
            // or a root-contradictory cost cut): no need to go parallel.
            // One serial line of execution did all the nodes; the other
            // worker slots report zero.
            stats.nodes_per_worker = vec![0; self.threads];
            stats.nodes_per_worker[0] = stats.decisions;
            stats.trace.extend(driver_tracer.drain());
            stats.solve_time = start.elapsed();
            if let Some((at, _)) = run_cell.history_since(start).last() {
                stats.time_to_best = *at;
            }
            let verified =
                head_result.filter(|(cost, model)| verify_solution(inst, model) == Ok(*cost));
            if det {
                if let Some((c, m)) = &verified {
                    outer_cell.offer(*c, m);
                }
            }
            let (best_cost, best_assignment) = match verified {
                Some((c, m)) => (Some(c), Some(m)),
                None => (None, None),
            };
            return SolveResult { status: head_status, best_cost, best_assignment, stats };
        }
        let head_nodes = stats.decisions;
        let target =
            self.options.split_target.unwrap_or(self.threads * CUBES_PER_WORKER).max(self.threads);
        let split = CubeSplitter::split(inst, target);
        stats.decisions = head_nodes + split.decisions;
        stats.split_depth_truncated += split.depth_truncated;
        if split.decisions > 0 {
            // Recorded in bulk so traced decision events still reconcile
            // with `stats.decisions` (the splitter's private engine is
            // never traced per node).
            driver_tracer.emit(TraceEvent::SplitterDecisions { n: split.decisions });
        }
        if split.root_unsat {
            stats.trace.extend(driver_tracer.drain());
            stats.solve_time = start.elapsed();
            stats.nodes_per_worker = vec![0; self.threads];
            return SolveResult {
                status: SolveStatus::Infeasible,
                best_cost: None,
                best_assignment: None,
                stats,
            };
        }
        // Solutions found by propagation during splitting seed the cell.
        for (_, cost, model) in &split.solved {
            if verify_solution(inst, model) == Ok(*cost) && run_cell.offer(*cost, model) {
                stats.solutions_found += 1;
                driver_tracer.emit(TraceEvent::Solution { cost: *cost });
            }
        }
        // Scheduler over the initial frontier. In the work-stealing
        // racing mode the frontier is injector traffic: count it and
        // emit one bulk Inject on the driver lane (reconciled exactly
        // against `stats.injections` by the trace tests).
        let (sched, injected) =
            Scheduler::new(worker_options.scheduler, self.threads, split.open, det);
        if injected > 0 {
            stats.injections += injected;
            driver_tracer.emit(TraceEvent::Inject { n: injected });
        }
        stats.trace.extend(driver_tracer.drain());

        // Cross-worker clause sharing (see [`crate::share`]): racing
        // mode only — deterministic joins must not depend on which
        // worker published first. One pool lane per publisher: lane 0
        // for the driver, lane `w + 1` for worker `w`.
        let pool =
            (worker_options.share_clauses && !det).then(|| ClausePool::new(self.threads + 1));
        // Deterministic join: the seed snapshot is taken *after* the
        // (deterministic) head and split contributed, so every cube task
        // starts from the same incumbent no matter when it is scheduled.
        let det_join = det.then(|| DetJoin {
            seed_incumbent: run_cell.snapshot(),
            records: Mutex::new(Vec::new()),
        });

        let ctx = WorkerCtx {
            instance: inst,
            options: &worker_options,
            cell: run_cell,
            sched: &sched,
            start,
            seed: &seed,
            pool: pool.as_ref(),
            threads: self.threads,
            det: det_join.as_ref(),
        };
        let outcomes: Vec<SubtreeResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|w| {
                    let ctx = &ctx;
                    scope.spawn(move || run_worker(ctx, w))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(o) => o,
                    // A panic that escaped even the in-worker containment
                    // (e.g. inside the scheduler acquire loop, where no
                    // cube is held — the guard has already quarantined
                    // any in-flight cube during the unwind). The worker's
                    // counters are lost; record the death honestly and
                    // let the quarantine accounting below decide whether
                    // coverage was actually lost.
                    Err(_) => SubtreeResult {
                        stats: SolverStats { workers_lost: 1, ..SolverStats::default() },
                        all_closed: true,
                    },
                })
                .collect()
        });

        // Quarantine accounting is the scheduler's, not the workers':
        // it is exact even when a worker died outside its own
        // containment. Any quarantined cube is an unexplored part of the
        // frontier partition — the solve may keep its verified incumbent
        // but must not claim exhaustion.
        let quarantined = sched.quarantined_count();
        stats.cubes_quarantined += quarantined;
        let mut all_closed = !sched.was_aborted() && quarantined == 0;
        if let Some(dj) = det_join {
            // Fixed-order reduction: per-cube records sorted by cube
            // literals (a scheduling-independent key — every cube is a
            // distinct literal prefix), then folded in that order. Status,
            // cost, model and the merged integer counters become a pure
            // function of instance + options; wall-clock durations are
            // excluded from the claim (queue wait is zeroed, it is pure
            // scheduling noise).
            let mut records = dj.records.into_inner().unwrap_or_else(|p| p.into_inner());
            records.sort_by(|a, b| a.cube.cmp(&b.cube));
            // Worker-level robustness flags live outside the per-cube
            // records (a quarantined cube never filed one): fold them in
            // from the join results. Zero on every fault-free run, so
            // the deterministic-join claim is unaffected.
            for o in &outcomes {
                stats.workers_lost += o.stats.workers_lost;
                stats.cancelled |= o.stats.cancelled;
            }
            let mut best = dj.seed_incumbent;
            let mut nodes_per_worker = Vec::with_capacity(records.len());
            for (i, r) in records.iter_mut().enumerate() {
                // Re-lane by cube position: the lane a record's events
                // were emitted on is the (scheduling-dependent) worker
                // index, but the sorted cube position is deterministic —
                // after this rewrite the whole event sequence is a pure
                // function of instance + options, like the counters.
                for ev in &mut r.stats.trace {
                    ev.lane = (i + 1) as u32;
                }
                stats.absorb(&r.stats);
                nodes_per_worker.push(r.stats.decisions);
                all_closed &= r.closed;
                if let (Some(c), Some(m)) = (r.cost, &r.model) {
                    if best.as_ref().is_none_or(|(bc, _)| c < *bc) {
                        best = Some((c, m.clone()));
                    }
                }
            }
            stats.nodes_per_worker = nodes_per_worker;
            stats.queue_wait_total = std::time::Duration::ZERO;
            let best = best.filter(|(cost, model)| verify_solution(inst, model) == Ok(*cost));
            if let Some((c, m)) = &best {
                outer_cell.offer(*c, m);
                stats.time_to_best = start.elapsed();
            }
            let status = match (&best, all_closed) {
                (Some(_), true) => SolveStatus::Optimal,
                (None, true) => SolveStatus::Infeasible,
                (Some(_), false) => SolveStatus::Feasible,
                (None, false) => SolveStatus::Unknown,
            };
            stats.solve_time = start.elapsed();
            let (best_cost, best_assignment) = match best {
                Some((c, m)) => (Some(c), Some(m)),
                None => (None, None),
            };
            return SolveResult { status, best_cost, best_assignment, stats };
        }

        let mut nodes_per_worker = Vec::with_capacity(outcomes.len());
        for o in &outcomes {
            stats.absorb(&o.stats);
            nodes_per_worker.push(o.stats.decisions);
            all_closed &= o.all_closed;
        }
        stats.nodes_per_worker = nodes_per_worker;

        // The global best lives in the cell; re-verify on the way out
        // (producers already verified, but the cell stores — it does not
        // vouch).
        let best =
            run_cell.snapshot().filter(|(cost, model)| verify_solution(inst, model) == Ok(*cost));
        if let Some((at, _)) = run_cell.history_since(start).last() {
            stats.time_to_best = *at;
        }
        let status = match (&best, all_closed) {
            (Some(_), true) => SolveStatus::Optimal,
            (None, true) => SolveStatus::Infeasible,
            (Some(_), false) => SolveStatus::Feasible,
            (None, false) => SolveStatus::Unknown,
        };
        stats.solve_time = start.elapsed();
        let (best_cost, best_assignment) = match best {
            Some((c, m)) => (Some(c), Some(m)),
            None => (None, None),
        };
        SolveResult { status, best_cost, best_assignment, stats }
    }
}

/// Everything a worker needs, threaded as one borrow (the fields are
/// all shared read-only or internally synchronized).
struct WorkerCtx<'a> {
    instance: &'a Instance,
    options: &'a BsoloOptions,
    cell: &'a IncumbentCell,
    sched: &'a Scheduler,
    start: Instant,
    seed: &'a [Vec<Lit>],
    /// Shared-clause pool (`None`: sharing disabled, or deterministic
    /// mode). Each worker publishes on its own lane (`worker + 1`).
    pool: Option<&'a ClausePool>,
    /// Worker count — the scheduler-starvation threshold for
    /// re-splitting.
    threads: usize,
    /// Deterministic-join state (`None` in the default racing mode).
    det: Option<&'a DetJoin>,
}

/// Deterministic-join bookkeeping: the incumbent snapshot every cube
/// task starts from, and the per-cube result records the driver reduces
/// in cube-lexicographic order at join.
struct DetJoin {
    seed_incumbent: Option<(i64, Vec<bool>)>,
    records: Mutex<Vec<CubeRecord>>,
}

/// One cube task's result under deterministic join.
struct CubeRecord {
    /// The cube as taken from the queue (the sort key; re-splits deepen
    /// the task's cube but never this record key).
    cube: Vec<Lit>,
    /// Subtree exhausted (as opposed to a budget abort).
    closed: bool,
    /// Best cost this task holds (its own finds, or the adopted seed).
    cost: Option<i64>,
    /// The matching model.
    model: Option<Vec<bool>>,
    /// The task's private effort counters.
    stats: SolverStats,
}

/// One worker: pull cubes until the frontier drains or the solve
/// aborts, solving each with a private engine + pipeline rooted in the
/// cube.
fn run_worker(ctx: &WorkerCtx<'_>, worker: usize) -> SubtreeResult {
    let mut total = SolverStats::default();
    let mut all_closed = true;
    loop {
        // Cooperative cancellation between cubes: stop taking work and
        // abort the scheduler so parked siblings drain instead of
        // re-parking against a frontier nobody will finish.
        if ctx.options.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            total.cancelled = true;
            all_closed = false;
            ctx.sched.abort();
            break;
        }
        // Wall time of the whole acquire loop — condvar blocks on the
        // mutex baseline; failed pops, steal sweeps and idle backoff on
        // the work-stealing path (see `SolverStats::queue_wait_total`).
        let wait_from = Instant::now();
        let Some((cube, source)) = ctx.sched.next(worker) else { break };
        // Armed before anything else touches the cube: from here to
        // `finish`, any unwind quarantines it instead of leaking it.
        let guard = WorkGuard::new(ctx.sched);
        let wait = wait_from.elapsed();
        total.queue_wait_total += wait;
        let mut stats = SolverStats::default();
        // One tracer (and so one contiguous buffer) per cube task, on
        // lane `worker + 1` (lane 0 is the driver). Per-cube buffers are
        // what lets deterministic join re-lane events by sorted cube
        // position instead of by (scheduling-dependent) thread.
        let tracer = if ctx.options.trace {
            Tracer::buffered(worker as u32 + 1, ctx.start)
        } else {
            Tracer::off()
        };
        if ctx.det.is_none() {
            // Queue-wait spans and steals are pure scheduling noise;
            // deterministic join excludes them (it also zeroes the wait
            // counter, and disables stealing outright).
            tracer.emit(TraceEvent::QueueWait {
                wait_ns: u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX),
            });
            if let CubeSource::Steal(victim) = source {
                stats.steals += 1;
                tracer.emit(TraceEvent::Steal { victim: victim as u32 + 1 });
            }
        }
        let depth = cube.lits.len() as u32;
        let cube_from = tracer.now_ns();
        tracer.emit(TraceEvent::CubeStart { depth });
        // Panic containment (PR 9): a cube task that unwinds — a bug in
        // a bound kernel, an injected failpoint — takes this worker down
        // but not the solve. The guard quarantines the in-flight cube,
        // the partial effort counters are still folded in (no kernel
        // charges its timer before returning, so nothing double-counts),
        // and the surviving N−1 workers keep draining the frontier.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            solve_cube(ctx, worker, &cube, &mut stats, tracer.clone())
        }));
        let (status, best) = match outcome {
            Ok(r) => r,
            Err(_) => {
                total.workers_lost += 1;
                tracer.emit(TraceEvent::CubeQuarantined { depth });
                tracer.emit(TraceEvent::WorkerLost);
                stats.trace.extend(tracer.drain());
                total.absorb(&stats);
                // Drop quarantines the cube; the worker itself retires.
                drop(guard);
                break;
            }
        };
        let closed = matches!(status, SolveStatus::Optimal | SolveStatus::Infeasible);
        tracer.emit(TraceEvent::CubeEnd {
            depth,
            closed,
            dur_ns: tracer.now_ns().saturating_sub(cube_from),
        });
        stats.trace.extend(tracer.drain());
        if let Some(det) = ctx.det {
            let (cost, model) = best;
            let mut records = det.records.lock().unwrap_or_else(|p| p.into_inner());
            records.push(CubeRecord { cube: cube.lits, closed, cost, model, stats: stats.clone() });
        }
        total.absorb(&stats);
        guard.finish(!closed);
        if !closed {
            all_closed = false;
            break;
        }
    }
    SubtreeResult { stats: total, all_closed }
}

/// Solves one subtree task to exhaustion (or budget): the sequential
/// search loop, rooted in `cube` and seeded with the head start's
/// learned clauses, publishing incumbents to (and adopting from) the
/// shared cell — re-splitting its remaining subtree back to the
/// scheduler whenever it outlives its conflict allowance while the
/// scheduler starves. Returns the final status and the task's best
/// (cost, model).
fn solve_cube(
    ctx: &WorkerCtx<'_>,
    worker: usize,
    cube: &Cube,
    stats: &mut SolverStats,
    tracer: Tracer,
) -> (SolveStatus, (Option<i64>, Option<Vec<bool>>)) {
    // The canonical injection point for "a worker dies with a cube in
    // hand": fires before any search state exists, so the quarantine
    // path is exercised with zero partial work to account for.
    failpoint!("par.cube");
    // Deterministic mode: a private incumbent cell per cube task, seeded
    // once — the subtree's trajectory depends only on (instance,
    // options, cube, seed incumbent), never on what sibling workers
    // found first.
    let det_cell;
    let cell: &IncumbentCell = match ctx.det {
        Some(det) => {
            det_cell = IncumbentCell::new();
            if let Some((c, m)) = &det.seed_incumbent {
                det_cell.offer(*c, m);
            }
            &det_cell
        }
        None => ctx.cell,
    };
    match SearchState::init(
        ctx.instance,
        ctx.options,
        Some(cell),
        ctx.start,
        stats,
        &cube.lits,
        ctx.seed,
        ctx.pool.map(|pool| PoolHandle { pool, lane: worker + 1 }),
        tracer,
    ) {
        Ok(mut search) => {
            // Grab a primal bound before proving anything: one greedy
            // cost-avoiding descent per cube task. On one incumbent
            // cell this turns the frontier into `threads` diverse
            // primal probes whose best lands in every worker within the
            // first few milliseconds — without it, proof work done
            // before the first strong incumbent arrives is inflated by
            // a weak (or absent) cost bound and dominates the pool's
            // node count as the worker count grows.
            let dive_refuted = search.primal_dive();
            let status = if let Some(status) = dive_refuted {
                status
            } else {
                loop {
                    // Racing mode shortens the allowance while the scheduler
                    // is starving, so a worker holding the last long cube
                    // hands work to idle peers within a fraction of the
                    // normal re-split period instead of a full one (the
                    // idle-tail killer on small subtrees). Deterministic
                    // mode keeps the fixed schedule — the allowance must not
                    // depend on scheduler timing.
                    let quantum = ctx.options.resplit_conflicts.map(|c| {
                        let c = c.max(1);
                        if ctx.det.is_none() && ctx.sched.starving(ctx.threads) {
                            (c / 8).max(1)
                        } else {
                            c
                        }
                    });
                    let cap = quantum.map(|q| search.conflicts().saturating_add(q));
                    match search.run_capped(ctx.start, stats, cap) {
                        Some(status) => break status,
                        None => {
                            // The conflict allowance is burned on this cube.
                            // Re-split if the scheduler is starving
                            // (deterministic mode re-splits unconditionally —
                            // the schedule must not depend on scheduler
                            // timing); otherwise just raise the cap and keep
                            // searching.
                            if search.cube_depth() >= RESPLIT_MAX_DEPTH {
                                stats.split_depth_truncated += 1;
                                continue;
                            }
                            if ctx.det.is_none() && !ctx.sched.starving(ctx.threads) {
                                continue;
                            }
                            let arms = search.resplit(RESPLIT_ARMS);
                            // A panic between harvesting the arms and
                            // publishing them loses arms + deepened cube
                            // together — exactly the parent cube the
                            // guard quarantines, so the partition stays
                            // account-exact.
                            failpoint!("par.resplit");
                            if !arms.is_empty() {
                                stats.resplits += 1;
                                search
                                    .tracer()
                                    .emit(TraceEvent::Resplit { arms: arms.len() as u32 });
                                let spilled = ctx.sched.push(
                                    worker,
                                    arms.into_iter().map(|lits| Cube { lits }).collect(),
                                );
                                if ctx.det.is_none() && spilled > 0 {
                                    // Arms that overflowed the worker's own
                                    // deque (or the slab) into the injector:
                                    // bulk Inject, reconciled against
                                    // `stats.injections`.
                                    stats.injections += spilled;
                                    search.tracer().emit(TraceEvent::Inject { n: spilled });
                                }
                                // The re-split left the engine at the root:
                                // publish/import with the pool while it is
                                // legal (and cheap) to do so.
                                if let Some(status) = search.sync_share_after_resplit(stats) {
                                    break status;
                                }
                            }
                        }
                    }
                }
            };
            search.finish_stats(stats);
            let (cost, model) = search.best();
            (status, (cost, model.cloned()))
        }
        // The cube is closed by root propagation (possibly through a
        // head-seeded, incumbent-conditional clause — in which case the
        // incumbent justifying it is already in the cell): an exhausted,
        // empty subtree.
        Err(()) => (SolveStatus::Infeasible, (None, None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::options::{Budget, LbMethod};

    use pbo_core::{brute_force, InstanceBuilder};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_instance(rng: &mut ChaCha8Rng, n_max: usize) -> Instance {
        let n = rng.gen_range(3..=n_max);
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(n);
        for _ in 0..rng.gen_range(2..9) {
            let k = rng.gen_range(1..=3.min(n));
            let mut idxs: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                idxs.swap(i, j);
            }
            let terms: Vec<(i64, Lit)> = idxs[..k]
                .iter()
                .map(|&i| (rng.gen_range(1..4), vars[i].lit(rng.gen_bool(0.75))))
                .collect();
            let maxw: i64 = terms.iter().map(|t| t.0).sum();
            b.add_linear(terms, pbo_core::RelOp::Ge, rng.gen_range(1..=maxw));
        }
        if rng.gen_bool(0.9) {
            b.minimize(vars.iter().map(|v| (rng.gen_range(0..6), v.lit(rng.gen_bool(0.85)))));
        }
        b.build().unwrap()
    }

    /// A denser generator for the re-split / sharing tests: enough
    /// constraint structure that a search survives a few dozen conflicts
    /// (the sparse `random_instance` family often closes in one or two,
    /// which never triggers the pause-and-re-split machinery).
    fn dense_instance(rng: &mut ChaCha8Rng, n: usize) -> Instance {
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(n);
        for _ in 0..3 * n {
            let k = rng.gen_range(3..=4.min(n));
            let mut idxs: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                idxs.swap(i, j);
            }
            b.add_at_least(1, idxs[..k].iter().map(|&i| vars[i].positive()));
        }
        b.minimize(vars.iter().map(|v| (rng.gen_range(1..8), v.positive())));
        b.build().unwrap()
    }

    /// A cube matches an assignment when every cube literal is true
    /// under it.
    fn matches(cube: &Cube, assignment: &[bool]) -> bool {
        cube.lits.iter().all(|l| assignment[l.var().index()] == l.is_positive())
    }

    #[test]
    fn cube_split_partitions_the_assignment_space() {
        // The PR-5 soundness property: open cubes, refuted leaves and
        // solved leaves together cover the root exactly — every complete
        // assignment matches exactly one leaf — leaves are pairwise
        // disjoint, refuted leaves contain no feasible assignment, and a
        // solved leaf's only feasible completion is its recorded model.
        let mut rng = ChaCha8Rng::seed_from_u64(0xc0be);
        for round in 0..25 {
            let inst = random_instance(&mut rng, 8);
            let target = [1usize, 2, 5, 8][round % 4];
            let split = CubeSplitter::split_to_depth(&inst, target, 6);
            if split.root_unsat {
                assert_eq!(brute_force(&inst).cost(), None, "round {round}: UNSAT claim");
                continue;
            }
            let mut leaves: Vec<(&Cube, &str)> = Vec::new();
            leaves.extend(split.open.iter().map(|c| (c, "open")));
            leaves.extend(split.refuted.iter().map(|c| (c, "refuted")));
            leaves.extend(split.solved.iter().map(|(c, _, _)| (c, "solved")));
            // Pairwise disjoint: two leaves always disagree on some
            // shared variable (prefix-tree siblings carry complementary
            // literals).
            for (i, (a, _)) in leaves.iter().enumerate() {
                for (b, _) in &leaves[i + 1..] {
                    let disjoint = a.lits.iter().any(|la| b.lits.contains(&!*la));
                    assert!(disjoint, "round {round}: overlapping leaves {a:?} / {b:?}");
                }
            }
            // Exact cover, by enumeration.
            let n = inst.num_vars();
            for bits in 0..(1u32 << n) {
                let assignment: Vec<bool> = (0..n).map(|v| bits & (1 << v) != 0).collect();
                let hits: Vec<&str> = leaves
                    .iter()
                    .filter(|(c, _)| matches(c, &assignment))
                    .map(|&(_, kind)| kind)
                    .collect();
                assert_eq!(hits.len(), 1, "round {round}: assignment {bits:b} in {hits:?}");
                let feasible = inst.is_feasible(&assignment);
                match hits[0] {
                    "refuted" => {
                        assert!(!feasible, "round {round}: feasible assignment in refuted leaf")
                    }
                    "solved" if feasible => {
                        let (_, cost, model) =
                            split.solved.iter().find(|(c, _, _)| matches(c, &assignment)).unwrap();
                        assert_eq!(&assignment, model, "round {round}");
                        assert_eq!(inst.cost_of(&assignment), *cost, "round {round}");
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn split_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let inst = random_instance(&mut rng, 9);
        let a = CubeSplitter::split(&inst, 8);
        let b = CubeSplitter::split(&inst, 8);
        assert_eq!(a.open, b.open);
        assert_eq!(a.refuted, b.refuted);
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn parallel_solver_matches_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x9a8);
        for round in 0..30 {
            let inst = random_instance(&mut rng, 9);
            let expected = brute_force(&inst);
            for threads in [2usize, 4] {
                let got = ParBsolo::new(BsoloOptions::with_lb(LbMethod::Mis), threads).solve(&inst);
                match expected.cost() {
                    Some(opt) => {
                        assert_eq!(
                            got.status,
                            SolveStatus::Optimal,
                            "round {round} x{threads}: expected optimal"
                        );
                        assert_eq!(got.best_cost, Some(opt), "round {round} x{threads}");
                        let model = got.best_assignment.as_ref().expect("model");
                        assert_eq!(verify_solution(&inst, model), Ok(opt));
                    }
                    None => {
                        assert_eq!(
                            got.status,
                            SolveStatus::Infeasible,
                            "round {round} x{threads}: expected infeasible"
                        );
                    }
                }
                assert_eq!(got.stats.nodes_per_worker.len(), threads);
            }
        }
    }

    #[test]
    fn single_thread_is_bit_identical_to_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x1b17);
        for round in 0..20 {
            let inst = random_instance(&mut rng, 9);
            for lb in [LbMethod::Mis, LbMethod::Lpr] {
                let seq = Bsolo::new(BsoloOptions::with_lb(lb)).solve(&inst);
                let par = ParBsolo::new(BsoloOptions::with_lb(lb), 1).solve(&inst);
                let label = format!("{lb:?} round {round}");
                assert_eq!(par.status, seq.status, "{label}: status");
                assert_eq!(par.best_cost, seq.best_cost, "{label}: cost");
                assert_eq!(par.best_assignment, seq.best_assignment, "{label}: model");
                assert_eq!(par.stats.decisions, seq.stats.decisions, "{label}: decisions");
                assert_eq!(par.stats.conflicts, seq.stats.conflicts, "{label}: conflicts");
                assert_eq!(par.stats.propagations, seq.stats.propagations, "{label}: propagations");
                assert_eq!(par.stats.lb_calls, seq.stats.lb_calls, "{label}: lb calls");
                assert_eq!(
                    par.stats.bound_conflicts, seq.stats.bound_conflicts,
                    "{label}: bound conflicts"
                );
                assert_eq!(
                    par.stats.lb_margin_sum, seq.stats.lb_margin_sum,
                    "{label}: bound strength"
                );
                assert_eq!(par.stats.restarts, seq.stats.restarts, "{label}: restarts");
                assert_eq!(
                    par.stats.backjump_levels, seq.stats.backjump_levels,
                    "{label}: backjumps"
                );
                assert_eq!(
                    par.stats.solutions_found, seq.stats.solutions_found,
                    "{label}: solutions"
                );
                assert_eq!(par.stats.nodes_per_worker, vec![seq.stats.decisions], "{label}");
            }
        }
    }

    #[test]
    fn resplit_arms_partition_the_parent_cube() {
        // PR-6 soundness property, PR-5 style: pause a cube search
        // mid-tree, re-split it, and check by enumeration that the
        // returned arms plus the deepened cube cover the parent cube
        // exactly (every assignment in the parent matches exactly one
        // leaf; assignments outside match none).
        let mut rng = ChaCha8Rng::seed_from_u64(0x5e51);
        let mut exercised = 0usize;
        for round in 0..40 {
            let n = rng.gen_range(12..=14);
            let inst = dense_instance(&mut rng, n);
            let mut options = BsoloOptions::with_lb(LbMethod::None);
            options.probing = false;
            options.cardinality_cuts = false;
            let start = Instant::now();
            let mut stats = SolverStats::default();
            let split = CubeSplitter::split_to_depth(&inst, 4, 3);
            let Some(parent) = split.open.first().cloned() else { continue };
            let Ok(mut search) = SearchState::init(
                &inst,
                &options,
                None,
                start,
                &mut stats,
                &parent.lits,
                &[],
                None,
                Tracer::off(),
            ) else {
                continue;
            };
            // Pause after a handful of conflicts so decisions remain on
            // the trail.
            if search.run_capped(start, &mut stats, Some(1 + round as u64 % 8)).is_some() {
                continue;
            }
            let arms = search.resplit(3);
            if arms.is_empty() {
                continue;
            }
            exercised += 1;
            let mut leaves: Vec<Vec<Lit>> = arms;
            leaves.push(search.cube_lits().to_vec());
            let n = inst.num_vars();
            for bits in 0..(1u32 << n) {
                let assignment: Vec<bool> = (0..n).map(|v| bits & (1 << v) != 0).collect();
                let holds = |lits: &[Lit]| {
                    lits.iter().all(|l| assignment[l.var().index()] == l.is_positive())
                };
                let hits = leaves.iter().filter(|lits| holds(lits)).count();
                assert_eq!(
                    hits,
                    usize::from(holds(&parent.lits)),
                    "round {round}: assignment {bits:b} covered {hits} times"
                );
            }
        }
        assert!(exercised >= 5, "only {exercised} rounds exercised a re-split");
    }

    #[test]
    fn worker_panic_mid_resplit_quarantines_not_aborts() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // PR-9 containment semantics: a worker dies between pushing
        // re-split arms and finishing its cube. The WorkGuard drop must
        // *quarantine* the in-flight cube — siblings keep draining the
        // rest of the frontier (including the pushed arm) instead of the
        // whole solve aborting — and the quarantine count must surface
        // so the join cannot claim a complete proof. Both scheduler
        // kinds carry the same guarantee.
        let cube = |i: usize, pos: bool| Cube { lits: vec![Lit::new(i, pos)] };
        for kind in [SchedulerKind::WorkStealing, SchedulerKind::MutexDeque] {
            let (sched, _) = Scheduler::new(kind, 2, vec![cube(0, true), cube(0, false)], false);
            std::thread::scope(|s| {
                let sched = &sched;
                s.spawn(move || {
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        let _cube = sched.next(0).expect("first cube");
                        let _guard = WorkGuard::new(sched);
                        sched.push(
                            0,
                            vec![Cube { lits: vec![Lit::new(1, true), Lit::new(2, true)] }],
                        );
                        panic!("worker dies mid-re-split");
                    }));
                })
                .join()
                .expect("outer thread caught the panic");
            });
            assert!(!sched.was_aborted(), "{kind:?}: a dead worker must not abort the solve");
            assert_eq!(sched.quarantined_count(), 1, "{kind:?}: the held cube is quarantined");
            // The survivor drains the second frontier cube and the
            // pushed arm, then sees a clean end-of-work.
            let mut drained = 0;
            while let Some(_take) = sched.next(1) {
                drained += 1;
                WorkGuard::new(&sched).finish(false);
            }
            assert_eq!(drained, 2, "{kind:?}: surviving frontier stays takeable");
            assert!(!sched.was_aborted(), "{kind:?}: clean drain after the loss");
            assert_eq!(sched.quarantined_count(), 1, "{kind:?}: count stable after drain");
        }
    }

    #[test]
    fn randomized_push_steal_panic_stress_keeps_exact_partition() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::Mutex as StdMutex;
        // N producers × M thieves over the work-stealing scheduler:
        // every worker repeatedly takes a cube and either closes it or
        // splits it (recording `cube ∧ d` closed, pushing `cube ∧ ¬d`),
        // under a seeded per-worker interleaving. After the frontier
        // drains, the closed records must partition the root exactly —
        // checked by enumeration — whatever steal/pop/overflow
        // interleaving the OS produced. A final round repeats the run
        // with one worker panicking mid-split and asserts the abort
        // reaches every sibling.
        const N_VARS: usize = 10;
        let root_frontier = || -> Vec<Cube> {
            // Depth-2 prefix tree over v0, v1: four disjoint cubes
            // covering the root.
            let mut cubes = Vec::new();
            for b0 in [false, true] {
                for b1 in [false, true] {
                    cubes.push(Cube { lits: vec![Lit::new(0, b0), Lit::new(1, b1)] });
                }
            }
            cubes
        };
        for trial in 0..8u64 {
            let threads = 2 + (trial as usize % 3); // 2..=4
            let (sched, _) =
                Scheduler::new(SchedulerKind::WorkStealing, threads, root_frontier(), false);
            let closed: StdMutex<Vec<Vec<Lit>>> = StdMutex::new(Vec::new());
            let steals = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|s| {
                for w in 0..threads {
                    let sched = &sched;
                    let closed = &closed;
                    let steals = &steals;
                    s.spawn(move || {
                        let mut rng = ChaCha8Rng::seed_from_u64(trial * 31 + w as u64);
                        while let Some((cube, source)) = sched.next(w) {
                            if matches!(source, CubeSource::Steal(_)) {
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            let guard = WorkGuard::new(sched);
                            let depth = cube.lits.len();
                            if depth < N_VARS && rng.gen_bool(0.6) {
                                // Split: branch on the next variable,
                                // sometimes several arms deep (stresses
                                // ring growth and overflow spills).
                                let arms = rng.gen_range(1..=3.min(N_VARS - depth));
                                let mut kept = cube.lits.clone();
                                let mut pushed = Vec::new();
                                for a in 0..arms {
                                    let var = depth + a;
                                    let mut arm = kept.clone();
                                    arm.push(Lit::new(var, false));
                                    pushed.push(Cube { lits: arm });
                                    kept.push(Lit::new(var, true));
                                }
                                sched.push(w, pushed);
                                closed.lock().unwrap().push(kept);
                            } else {
                                closed.lock().unwrap().push(cube.lits);
                            }
                            guard.finish(false);
                        }
                    });
                }
            });
            assert!(!sched.was_aborted(), "trial {trial}: clean drain");
            let closed = closed.into_inner().unwrap();
            // Exact partition of the root, by enumeration.
            for bits in 0..(1u32 << N_VARS) {
                let assignment: Vec<bool> = (0..N_VARS).map(|v| bits & (1 << v) != 0).collect();
                let hits = closed
                    .iter()
                    .filter(|lits| {
                        lits.iter().all(|l| assignment[l.var().index()] == l.is_positive())
                    })
                    .count();
                assert_eq!(hits, 1, "trial {trial}: assignment {bits:b} covered {hits} times");
            }
        }
        // Panic round: worker 0 dies mid-split. The siblings must keep
        // draining the surviving frontier to a clean end (no abort, no
        // hang — this scope join is itself the liveness assertion), and
        // exactly the one held cube lands in quarantine.
        let (sched, _) = Scheduler::new(SchedulerKind::WorkStealing, 3, root_frontier(), false);
        let drained = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            let sched = &sched;
            let drained = &drained;
            s.spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let _take = sched.next(0).expect("a cube");
                    let _guard = WorkGuard::new(sched);
                    sched.push(0, vec![Cube { lits: vec![Lit::new(5, true)] }]);
                    panic!("stress worker dies mid-split");
                }));
            });
            for w in 1..3 {
                s.spawn(move || {
                    while let Some((_, _)) = sched.next(w) {
                        let guard = WorkGuard::new(sched);
                        drained.fetch_add(1, Ordering::Relaxed);
                        guard.finish(false);
                    }
                });
            }
        });
        assert!(!sched.was_aborted(), "a lost worker must not abort the stress run");
        assert_eq!(sched.quarantined_count(), 1, "exactly the held cube is quarantined");
        // 4 frontier cubes + 1 pushed arm − 1 quarantined = 4 drained.
        assert_eq!(drained.load(Ordering::Relaxed), 4, "survivors drain the rest");
    }

    #[test]
    fn resplitting_and_sharing_match_brute_force() {
        // Stress the PR-6 machinery end to end: re-split on every
        // conflict, restart (= share clauses) constantly, and check the
        // verified optimum against brute force at 2/4/8 workers.
        let mut rng = ChaCha8Rng::seed_from_u64(0x6a11);
        for round in 0..20 {
            let inst = random_instance(&mut rng, 9);
            let expected = brute_force(&inst);
            let mut options = BsoloOptions::with_lb(LbMethod::Mis);
            options.resplit_conflicts = Some(1);
            options.restart_base = Some(1);
            for threads in [2usize, 4, 8] {
                let got = ParBsolo::new(options.clone(), threads).solve(&inst);
                match expected.cost() {
                    Some(opt) => {
                        assert_eq!(got.status, SolveStatus::Optimal, "round {round} x{threads}");
                        assert_eq!(got.best_cost, Some(opt), "round {round} x{threads}");
                        let model = got.best_assignment.as_ref().expect("model");
                        assert_eq!(verify_solution(&inst, model), Ok(opt));
                    }
                    None => {
                        assert_eq!(got.status, SolveStatus::Infeasible, "round {round} x{threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn published_clauses_are_cube_independent() {
        // Solver-level half of the sharing soundness argument (the
        // engine-level half lives in `pbo-engine`'s randomized test):
        // run cube-rooted searches against one pool and check by
        // enumeration that every published clause is implied by the
        // instance alone (unstamped) or by instance ∧ cost-bound
        // (stamped) — never by the cube it was learned under.
        let mut rng = ChaCha8Rng::seed_from_u64(0x50a9);
        let mut checked = 0usize;
        for _ in 0..12 {
            let n_vars = rng.gen_range(10..=12);
            let inst = dense_instance(&mut rng, n_vars);
            let mut options = BsoloOptions::with_lb(LbMethod::None);
            options.probing = false;
            options.cardinality_cuts = false;
            options.restart_base = Some(1);
            let split = CubeSplitter::split_to_depth(&inst, 3, 2);
            let pool = ClausePool::new(split.open.len() + 1);
            let start = Instant::now();
            // Root search first (empty cube: everything it learns is
            // assumption-free and publishable), then the cube workers —
            // which import the pooled clauses under their cubes, and
            // whose own cube-dependent learnts the taint filter must
            // keep *out* of the pool (the enumeration below would catch
            // a leak as an excluded feasible completion).
            let mut tasks: Vec<Vec<Lit>> = vec![Vec::new()];
            tasks.extend(split.open.iter().map(|c| c.lits.clone()));
            for (lane, cube) in tasks.iter().enumerate() {
                let mut stats = SolverStats::default();
                if let Ok(mut search) = SearchState::init(
                    &inst,
                    &options,
                    None,
                    start,
                    &mut stats,
                    cube,
                    &[],
                    Some(crate::share::PoolHandle { pool: &pool, lane }),
                    Tracer::off(),
                ) {
                    let _ = search.run(start, &mut stats);
                }
            }
            let n = inst.num_vars();
            let mut marks = crate::share::PoolWatermarks::default();
            let Some(clauses) = pool.snapshot_since(&mut marks) else { continue };
            for c in clauses {
                checked += 1;
                for bits in 0..(1u32 << n) {
                    let assignment: Vec<bool> = (0..n).map(|v| bits & (1 << v) != 0).collect();
                    if !inst.is_feasible(&assignment) {
                        continue;
                    }
                    if let Some(u) = c.upper {
                        if inst.cost_of(&assignment) > u - 1 {
                            continue;
                        }
                    }
                    assert!(
                        c.lits.iter().any(|l| assignment[l.var().index()] == l.is_positive()),
                        "shared clause {:?} (upper {:?}) excludes a feasible completion",
                        c.lits,
                        c.upper
                    );
                }
            }
        }
        assert!(checked > 0, "no clauses were ever shared");
    }

    #[test]
    fn deterministic_join_is_reproducible_and_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xde7);
        for round in 0..12 {
            let inst = random_instance(&mut rng, 9);
            let mut options = BsoloOptions::with_lb(LbMethod::Mis);
            options.deterministic_join = true;
            options.resplit_conflicts = Some(2);
            let seq = Bsolo::new(BsoloOptions::with_lb(LbMethod::Mis)).solve(&inst);
            let a = ParBsolo::new(options.clone(), 3).solve(&inst);
            let b = ParBsolo::new(options.clone(), 3).solve(&inst);
            let label = format!("round {round}");
            // Two runs are bit-equal on everything the mode promises:
            // status, cost, model, and the merged integer counters.
            assert_eq!(a.status, b.status, "{label}: status");
            assert_eq!(a.best_cost, b.best_cost, "{label}: cost");
            assert_eq!(a.best_assignment, b.best_assignment, "{label}: model");
            assert_eq!(a.stats.decisions, b.stats.decisions, "{label}: decisions");
            assert_eq!(a.stats.conflicts, b.stats.conflicts, "{label}: conflicts");
            assert_eq!(a.stats.propagations, b.stats.propagations, "{label}: propagations");
            assert_eq!(a.stats.resplits, b.stats.resplits, "{label}: resplits");
            assert_eq!(a.stats.solutions_found, b.stats.solutions_found, "{label}: solutions");
            assert_eq!(a.stats.nodes_per_worker, b.stats.nodes_per_worker, "{label}: nodes");
            assert_eq!(a.stats.queue_wait_total, std::time::Duration::ZERO, "{label}: queue wait");
            // And the answer agrees with the sequential solver.
            assert_eq!(a.status, seq.status, "{label}: vs sequential status");
            assert_eq!(a.best_cost, seq.best_cost, "{label}: vs sequential cost");
            // Sharing is structurally off in this mode, and scheduling
            // artifacts (steals, injector traffic) are excluded from the
            // deterministic claim by construction.
            assert_eq!(a.stats.clauses_shared, 0, "{label}: sharing off");
            assert_eq!(a.stats.clauses_imported, 0, "{label}: imports off");
            assert_eq!(a.stats.steals, 0, "{label}: stealing off under det join");
            assert_eq!(a.stats.injections, 0, "{label}: inject accounting off under det join");
            // The deterministic claim also holds *across* scheduler
            // kinds: per-cube trajectories depend only on (instance,
            // options, cube, seed incumbent), so the mutex baseline must
            // reduce to the identical result.
            let mut mutex_options = options.clone();
            mutex_options.scheduler = SchedulerKind::MutexDeque;
            let m = ParBsolo::new(mutex_options, 3).solve(&inst);
            assert_eq!(a.status, m.status, "{label}: cross-scheduler status");
            assert_eq!(a.best_cost, m.best_cost, "{label}: cross-scheduler cost");
            assert_eq!(a.best_assignment, m.best_assignment, "{label}: cross-scheduler model");
            assert_eq!(a.stats.decisions, m.stats.decisions, "{label}: cross-scheduler decisions");
            assert_eq!(a.stats.conflicts, m.stats.conflicts, "{label}: cross-scheduler conflicts");
            assert_eq!(
                a.stats.nodes_per_worker, m.stats.nodes_per_worker,
                "{label}: cross-scheduler nodes"
            );
        }
    }

    #[test]
    fn scheduler_kinds_agree_on_the_optimum() {
        // Racing-mode parity: the mutex baseline and the work-stealing
        // scheduler must verify the same optimum (node counts are
        // timing-dependent, the answer is not).
        let mut rng = ChaCha8Rng::seed_from_u64(0x57ea1);
        for round in 0..12 {
            let inst = random_instance(&mut rng, 9);
            let expected = brute_force(&inst).cost();
            for kind in [SchedulerKind::WorkStealing, SchedulerKind::MutexDeque] {
                let mut options = BsoloOptions::with_lb(LbMethod::Mis);
                options.scheduler = kind;
                let got = ParBsolo::new(options, 4).solve(&inst);
                match expected {
                    Some(opt) => {
                        assert_eq!(got.status, SolveStatus::Optimal, "round {round} {kind:?}");
                        assert_eq!(got.best_cost, Some(opt), "round {round} {kind:?}");
                    }
                    None => {
                        assert_eq!(got.status, SolveStatus::Infeasible, "round {round} {kind:?}");
                    }
                }
                if kind == SchedulerKind::MutexDeque {
                    // The baseline has no injector and no thieves.
                    assert_eq!(got.stats.steals, 0, "round {round}: baseline steals");
                    assert_eq!(got.stats.injections, 0, "round {round}: baseline injections");
                }
            }
        }
    }

    #[test]
    fn split_depth_truncation_is_reported() {
        // A depth cap of 1 with a large frontier target: the splitter
        // must freeze leaves early and say so.
        let mut rng = ChaCha8Rng::seed_from_u64(0x77);
        let inst = random_instance(&mut rng, 9);
        let split = CubeSplitter::split_to_depth(&inst, 64, 1);
        assert!(split.open.iter().all(|c| c.lits.len() <= 1));
        assert!(split.depth_truncated > 0, "depth-capped split must report truncation");
    }

    #[test]
    fn budget_exhaustion_degrades_not_lies() {
        // A zero-decision budget with several threads: the solve must
        // come back Unknown or Feasible, never a fabricated Optimal.
        let mut rng = ChaCha8Rng::seed_from_u64(0xbadbed);
        let n = 16;
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(n);
        for i in 0..n {
            b.add_clause([
                vars[i].positive(),
                vars[(i + 3) % n].positive(),
                vars[(i + 7) % n].positive(),
            ]);
        }
        b.minimize(vars.iter().map(|v| (rng.gen_range(1..9), v.positive())));
        let inst = b.build().unwrap();
        let options = BsoloOptions::with_lb(LbMethod::Mis)
            .budget(Budget { conflicts: Some(1), ..Budget::default() });
        let got = ParBsolo::new(options, 3).solve(&inst);
        assert!(
            matches!(got.status, SolveStatus::Feasible | SolveStatus::Unknown),
            "budget run must degrade: {:?}",
            got.status
        );
        if let (Some(cost), Some(model)) = (got.best_cost, got.best_assignment.as_ref()) {
            assert_eq!(verify_solution(&inst, model), Ok(cost));
        }
    }

    #[test]
    fn pre_cancelled_token_tears_down_without_a_claim() {
        // Cooperative cancellation end to end: a token cancelled before
        // the solve starts must come back quickly with `cancelled` set
        // and no exhaustion claim — and whatever incumbent it scraped
        // together on the way down must verify.
        let mut rng = ChaCha8Rng::seed_from_u64(0xca9ce1);
        let inst = dense_instance(&mut rng, 12);
        let cancel = pbo_core::CancelToken::new();
        cancel.cancel();
        let mut options = BsoloOptions::with_lb(LbMethod::Mis);
        options.cancel = Some(cancel);
        let got = ParBsolo::new(options, 3).solve(&inst);
        assert!(got.stats.cancelled, "the cancel must be reported");
        assert!(
            matches!(got.status, SolveStatus::Feasible | SolveStatus::Unknown),
            "a cancelled solve cannot claim exhaustion: {:?}",
            got.status
        );
        assert_eq!(got.service_status(), crate::result::ServiceStatus::Cancelled);
        if let (Some(cost), Some(model)) = (got.best_cost, got.best_assignment.as_ref()) {
            assert_eq!(verify_solution(&inst, model), Ok(cost));
        }
    }

    /// PR-9 acceptance criterion: an injected worker panic returns the
    /// pre-panic verified incumbent with a degraded status — never
    /// `Optimal` — and surfaces the loss in `workers_lost` /
    /// `cubes_quarantined` and the trace.
    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_worker_panic_degrades_to_feasible() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xfa171);
        let mut exercised = 0usize;
        for round in 0..6 {
            // Dense set-covering instances big enough that the head
            // start's small conflict budget cannot finish them, so cube
            // workers actually launch and the first one to take a cube
            // dies.
            let inst = dense_instance(&mut rng, 24 + 2 * (round % 3));
            let guard = pbo_fault::install(pbo_fault::FaultPlan::new().panic_on("par.cube", 1));
            let mut options = BsoloOptions::with_lb(LbMethod::None);
            options.probing = false;
            options.cardinality_cuts = false;
            options.trace = true;
            let got = ParBsolo::new(options, 3).solve(&inst);
            if guard.hits("par.cube") == 0 {
                // The head start finished the whole proof; no worker ran.
                assert!(matches!(got.status, SolveStatus::Optimal | SolveStatus::Infeasible));
                continue;
            }
            exercised += 1;
            assert!(got.stats.workers_lost >= 1, "round {round}: loss must be counted");
            assert!(got.stats.cubes_quarantined >= 1, "round {round}: cube must be quarantined");
            assert!(
                matches!(got.status, SolveStatus::Feasible | SolveStatus::Unknown),
                "round {round}: a holed partition cannot claim exhaustion: {:?}",
                got.status
            );
            if got.status == SolveStatus::Feasible {
                assert_eq!(
                    got.service_status(),
                    crate::result::ServiceStatus::FeasibleDegraded,
                    "round {round}"
                );
                let cost = got.best_cost.expect("feasible carries a cost");
                let model = got.best_assignment.as_ref().expect("feasible carries a model");
                assert_eq!(
                    verify_solution(&inst, model),
                    Ok(cost),
                    "round {round}: the surviving incumbent must verify"
                );
            }
            // The loss is visible in the trace, not just the counters.
            let lost =
                got.stats.trace.iter().filter(|e| matches!(e.data, TraceEvent::WorkerLost)).count();
            let quarantined = got
                .stats
                .trace
                .iter()
                .filter(|e| matches!(e.data, TraceEvent::CubeQuarantined { .. }))
                .count();
            assert_eq!(lost as u64, got.stats.workers_lost, "round {round}: trace reconciles");
            assert_eq!(
                quarantined as u64, got.stats.cubes_quarantined,
                "round {round}: trace reconciles"
            );
        }
        assert!(exercised >= 3, "only {exercised} rounds reached the cube workers");
    }

    /// The other harness sites: a fault at the re-split hand-off or the
    /// scheduler push must still yield a sound, verified result with
    /// exact quarantine accounting (the partition loses exactly the
    /// dying worker's parent cube).
    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_resplit_faults_stay_sound() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5711);
        for site in ["par.resplit", "sched.push"] {
            for round in 0..4 {
                let inst = dense_instance(&mut rng, 11);
                let guard = pbo_fault::install(pbo_fault::FaultPlan::new().panic_on(site, 1));
                let mut options = BsoloOptions::with_lb(LbMethod::None);
                options.resplit_conflicts = Some(1);
                let got = ParBsolo::new(options, 3).solve(&inst);
                let fired = guard.hits(site) > 0;
                drop(guard);
                if fired {
                    assert!(
                        !matches!(got.status, SolveStatus::Optimal | SolveStatus::Infeasible)
                            || got.stats.cubes_quarantined == 0,
                        "{site} round {round}: exhaustion claimed over a quarantined cube"
                    );
                    assert!(
                        got.stats.workers_lost >= 1,
                        "{site} round {round}: loss must be counted"
                    );
                } else {
                    // No fault reached: the run must be an ordinary
                    // exact solve.
                    assert_eq!(got.stats.workers_lost, 0, "{site} round {round}");
                    assert_eq!(got.stats.cubes_quarantined, 0, "{site} round {round}");
                }
                if let (Some(cost), Some(model)) = (got.best_cost, got.best_assignment.as_ref()) {
                    assert_eq!(verify_solution(&inst, model), Ok(cost), "{site} round {round}");
                }
            }
        }
    }

    #[test]
    fn satisfaction_instances_solve_in_parallel() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5a7);
        for round in 0..15 {
            let n = rng.gen_range(4..9);
            let mut b = InstanceBuilder::new();
            let vars = b.new_vars(n);
            for _ in 0..rng.gen_range(3..9) {
                let k = rng.gen_range(2..=3.min(n));
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                b.add_at_least(
                    rng.gen_range(1..=k as i64),
                    idxs[..k].iter().map(|&i| vars[i].lit(rng.gen_bool(0.6))),
                );
            }
            let inst = b.build().unwrap();
            let sat = brute_force(&inst).cost().is_some();
            let got = ParBsolo::new(BsoloOptions::with_lb(LbMethod::Lpr), 2).solve(&inst);
            if sat {
                assert_eq!(got.status, SolveStatus::Optimal, "round {round}: expected SAT");
                assert!(inst.is_feasible(got.best_assignment.as_ref().unwrap()));
            } else {
                assert_eq!(got.status, SolveStatus::Infeasible, "round {round}: expected UNSAT");
            }
        }
    }
}
